"""Walk through the paper's figures: build each ELT with the public API,
print it, and verify the verdict the paper states for it.

Run:  python examples/paper_figures.py
"""

from repro.litmus import ALL_FIGURES, format_execution
from repro.models import x86t_elt

#: What the paper says about each figure's candidate execution.
EXPECTED = {
    "fig2b": ("permitted", "sb as an ELT; the outcome remains permitted"),
    "fig2c": ("forbidden", "remap aliases x,y to one PA: coherence violation"),
    "fig3a": ("permitted", "a Read invokes a PT walk"),
    "fig3b": ("permitted", "a Write invokes a walk and a dirty-bit update"),
    "fig4b": ("permitted", "remap chain exercising every pa/va edge"),
    "fig5a": ("permitted", "two Reads share one TLB entry"),
    "fig5b": ("permitted", "an INVLPG forces a re-walk"),
    "fig6d": ("permitted", "the remap disambiguates which Write R6 reads"),
    "fig8": ("forbidden", "mp cycle + extraneous write (NOT minimal)"),
    "fig10a": ("forbidden", "ptwalk2: violates sc_per_loc and invlpg"),
    "fig10b": ("permitted", "dirtybit3: reducible to ptwalk2"),
    "fig11": ("forbidden", "new synthesized ELT: stale mapping after IPI"),
}


def main() -> None:
    model = x86t_elt()
    for name, make in ALL_FIGURES.items():
        example = make()
        verdict = model.check(example.execution)
        expected_status, blurb = EXPECTED[name]
        status = "permitted" if verdict.permitted else "forbidden"
        assert status == expected_status, (name, status, expected_status)
        print(f"\n{'=' * 70}")
        print(f"{name}: {blurb}")
        print("=" * 70)
        print(format_execution(example.execution, show_derived=False))
        print(f"-> {verdict}")
    print("\nAll figure verdicts match the paper.")


if __name__ == "__main__":
    main()

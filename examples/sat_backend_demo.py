"""The Alloy-port pipeline end to end: encode a program's witness space
relationally, compile to CNF, and enumerate candidate executions with the
built-in CDCL solver — the §IV-C architecture (Alloy + Kodkod + MiniSat)
reimplemented from scratch.

Run:  python examples/sat_backend_demo.py
"""

from repro.litmus import format_execution
from repro.litmus.figures import fig10a_ptwalk2
from repro.models import x86t_elt
from repro.synth import enumerate_witnesses
from repro.synth.sat_backend import WitnessProblem


def main() -> None:
    program = fig10a_ptwalk2().execution.program
    model = x86t_elt()

    # Encode: structural relations as exact bounds, witness relations free,
    # every derived Table I relation equated to its defining expression.
    encoded = WitnessProblem(program)
    compilation_stats = encoded.problem
    print("ptwalk2 witness space, relationally encoded")
    print(f"  universe: {len(compilation_stats.atoms)} atoms")

    print("\nall candidate executions (via SAT enumeration):")
    for index, execution in enumerate(encoded.executions(), start=1):
        verdict = model.check(execution)
        print(f"\n--- candidate {index}: {verdict} ---")
        print(format_execution(execution, show_derived=False))

    # Cross-check against the explicit Python enumerator.
    explicit = {
        (frozenset(e._rf), frozenset(e.co))
        for e in enumerate_witnesses(program)
    }
    via_sat = {
        (frozenset(e._rf), frozenset(e.co))
        for e in WitnessProblem(program).executions()
    }
    assert explicit == via_sat
    print(
        f"\nSAT backend and explicit enumerator agree on all "
        f"{len(explicit)} candidate executions."
    )

    # Targeted enumeration: only executions violating the invlpg axiom.
    targeted = WitnessProblem(program)
    targeted.constrain_axiom_violated(model, "invlpg")
    forbidden = list(targeted.executions())
    print(f"executions violating invlpg: {len(forbidden)}")


if __name__ == "__main__":
    main()

"""Validation-direction workflow: explore every outcome of an ELT program,
persist a synthesized suite, reload it, and re-check verdicts — the shape
of a COATCheck-style hardware-validation flow built on this library.

Run:  python examples/explore_outcomes.py
"""

import tempfile
from pathlib import Path

from repro.litmus import EltSuite, suite_from_synthesis
from repro.litmus.figures import fig10a_ptwalk2
from repro.models import x86t_elt
from repro.synth import SynthesisConfig, explore_program, synthesize


def main() -> None:
    model = x86t_elt()

    # ------------------------------------------------------------------
    # 1. Outcome exploration: which behaviors may hardware exhibit for a
    #    given program, and which must never appear?
    # ------------------------------------------------------------------
    program = fig10a_ptwalk2().execution.program
    exploration = explore_program(program, model)
    print("=== ptwalk2 outcome space ===")
    print(exploration.summary())
    assert exploration.can_violate

    # ------------------------------------------------------------------
    # 2. Synthesize a regression suite and persist it.
    # ------------------------------------------------------------------
    result = synthesize(
        SynthesisConfig(bound=5, model=model, target_axiom="invlpg")
    )
    suite = suite_from_synthesis(result, prefix="invlpg5")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "invlpg_bound5.elts"
        suite.save(path)
        print(f"\nsaved {len(suite)} ELTs to {path.name} "
              f"({path.stat().st_size} bytes)")

        # --------------------------------------------------------------
        # 3. Reload and re-validate: every ELT still violates the axiom
        #    it was synthesized for (what a test-runner would assert on
        #    simulator/hardware traces).
        # --------------------------------------------------------------
        reloaded = EltSuite.load(path)
        for entry in reloaded:
            verdict = model.check(entry.execution)
            expected = set(entry.meta["violates"].split(","))
            assert set(verdict.violated) == expected, entry.name
            print(f"  {entry.name}: {verdict}")
    print("\nreloaded suite verdicts all match their metadata.")


if __name__ == "__main__":
    main()

"""Quickstart: build an ELT, check it against x86t_elt, synthesize a suite.

Run:  python examples/quickstart.py
"""

from repro.litmus import format_execution
from repro.models import x86t_elt
from repro.mtm import Execution, ProgramBuilder
from repro.synth import SynthesisConfig, synthesize


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build an enhanced litmus test (ELT) with the fluent builder.
    #    This is Fig 10a of the paper — COATCheck's "ptwalk2": the OS
    #    remaps x and invalidates the TLB entry, yet the following read's
    #    page-table walk still observes the *stale* mapping.
    # ------------------------------------------------------------------
    b = ProgramBuilder()
    b.map("x", "pa_a")  # initially VA x -> PA a
    core0 = b.thread()
    core0.pte_write("x", "pa_b")  # remap x -> PA b (+ INVLPG, auto)
    core0.read("x")  # TLB miss: invokes a page-table walk
    program = b.build()

    # A candidate execution = program + communication witness.  With no
    # rf edge into the walk, the walk reads the initial (stale) mapping.
    stale = Execution(program)
    print("=== ptwalk2 (stale mapping) ===")
    print(format_execution(stale))

    # ------------------------------------------------------------------
    # 2. Check it against the paper's estimated Intel x86 MTM.
    # ------------------------------------------------------------------
    model = x86t_elt()
    verdict = model.check(stale)
    print(f"\nverdict: {verdict}")
    assert verdict.forbidden and "invlpg" in verdict.violated

    # ------------------------------------------------------------------
    # 3. Synthesize the complete bound-5 suite of minimal ELTs whose
    #    outcomes violate the invlpg axiom.
    # ------------------------------------------------------------------
    config = SynthesisConfig(bound=5, model=model, target_axiom="invlpg")
    suite = synthesize(config)
    print(
        f"\n=== synthesized invlpg suite at bound 5: {suite.count} ELTs "
        f"({suite.stats.runtime_s:.2f}s) ==="
    )
    for index, elt in enumerate(suite.elts, start=1):
        print(f"\n--- ELT {index}: violates {', '.join(elt.violated_axioms)} ---")
        print(format_execution(elt.execution, show_derived=False))


if __name__ == "__main__":
    main()

"""Define a custom (buggy) MTM and find the ELTs that expose the bug.

The paper motivates TransForm with an AMD Athlon/Opteron erratum [4]:
INVLPG instructions failed to invalidate the designated TLB entries, so
programs could keep using stale address mappings.  A machine with that
bug implements a *weaker* transistency model — x86t_elt without the
``invlpg`` axiom.

Synthesized ELTs that x86t_elt forbids but the buggy model permits are
exactly the regression tests that would have caught the erratum.

Run:  python examples/custom_mtm.py
"""

from repro.litmus import format_execution
from repro.models import x86t_amd_bug, x86t_elt
from repro.synth import SynthesisConfig, synthesize


def main() -> None:
    correct = x86t_elt()
    buggy = x86t_amd_bug()  # == correct.without("x86t_amd_bug", ["invlpg"])
    print(f"correct model axioms: {', '.join(correct.axiom_names)}")
    print(f"buggy model axioms:   {', '.join(buggy.axiom_names)}")

    # Synthesize the invlpg suite against the *correct* model: every ELT's
    # outcome is forbidden on real x86.
    suite = synthesize(
        SynthesisConfig(bound=6, model=correct, target_axiom="invlpg")
    )
    print(f"\ninvlpg suite at bound 6: {suite.count} ELTs")

    # The bug detectors are those whose forbidden outcome the buggy model
    # would happily permit: observing the outcome on silicon proves the
    # INVLPG is broken.
    detectors = [
        elt for elt in suite.elts if buggy.permits(elt.execution)
    ]
    print(
        f"{len(detectors)} of them are pure INVLPG-bug detectors "
        "(forbidden on correct x86, permitted by the erratum model):"
    )
    for index, elt in enumerate(detectors, start=1):
        print(f"\n--- detector {index} ---")
        print(format_execution(elt.execution, show_derived=False))
        print(f"correct: {correct.check(elt.execution)}")
        print(f"buggy:   {buggy.check(elt.execution)}")

    assert detectors, "expected at least one pure invlpg-bug detector"
    print(
        "\nRunning these ELTs on hardware distinguishes a correct INVLPG "
        "implementation from the AMD erratum."
    )


if __name__ == "__main__":
    main()

"""Reproduce the §VI-B experiment: classify the hand-written COATCheck
suite against a synthesized corpus.

Paper result: of 40 hand-written ELTs, 9 use unsupported IPIs, 9 fail the
spanning-set criteria, and the 22 relevant ones split into 7 category-1
tests (synthesized verbatim, matching 4 distinct programs) and 15
category-2 tests (reducible to synthesized minimal ELTs).

Run:  python examples/coatcheck_compare.py
"""

from repro.reporting import (
    comparison_corpus,
    render_comparison,
    run_coatcheck_comparison,
)


def main() -> None:
    print("synthesizing the comparison corpus (per-axiom suites)...")
    corpus = comparison_corpus()
    print(f"corpus: {len(corpus)} unique synthesized ELT programs\n")
    report = run_coatcheck_comparison(corpus)
    print(render_comparison(report))


if __name__ == "__main__":
    main()

"""Coverage-guided differential fuzzing beyond the enumeration bound.

Exhaustive synthesis (:mod:`repro.synth`) is exact but hard-capped by
the bound.  This package is the complementary regime the ROADMAP's
"Beyond the bound" item calls for: seeded random well-formed VM programs
at bounds 8-12 (:mod:`.generators` — promoted out of
``tests/strategies.py`` so the pipeline owns the generator and the tests
re-export it), judged by the existing pairwise differential oracle
(:mod:`.oracle`, built on :class:`repro.models.PairClassifier` and the
engine's witness streams), guided by a coverage map over observed
behaviors (:mod:`.coverage`), with every discriminating finding shrunk
to a §IV-B-minimal ELT (:mod:`.shrink`) and landed in the same suite
format, store, and reports as enumerated ones (:mod:`.runner`,
:mod:`.corpus`).

Determinism contract: with a fixed seed, the findings suite is
byte-identical across ``--jobs`` — per-program seeds are a pure function
of (run seed, round, attempt index), never of shard assignment; coverage
feedback only crosses rounds through a deterministic merge barrier; and
finding dedup picks class representatives by rank, never by arrival
order.  See ``docs/FUZZING.md``.
"""

from .config import FuzzConfig, FuzzStats, fuzz_identity
from .corpus import ReplayReport, replay_corpus, write_corpus
from .coverage import PROFILES, CoverageMap
from .generators import (
    INITIAL,
    VAS,
    RngChooser,
    build_program,
    build_vm_program,
    derive_seed,
    random_program,
)
from .oracle import ClassSummary, DifferentialOracle, Judgment
from .runner import FuzzFinding, FuzzRunResult, run_fuzz
from .shrink import ShrinkOutcome, shrink
from .worker import FuzzShardResult, FuzzShardTask, run_fuzz_shard

__all__ = [
    "CoverageMap",
    "ClassSummary",
    "DifferentialOracle",
    "FuzzConfig",
    "FuzzFinding",
    "FuzzRunResult",
    "FuzzShardResult",
    "FuzzShardTask",
    "FuzzStats",
    "INITIAL",
    "Judgment",
    "PROFILES",
    "ReplayReport",
    "RngChooser",
    "ShrinkOutcome",
    "VAS",
    "build_program",
    "build_vm_program",
    "derive_seed",
    "fuzz_identity",
    "random_program",
    "replay_corpus",
    "run_fuzz",
    "run_fuzz_shard",
    "shrink",
    "write_corpus",
]

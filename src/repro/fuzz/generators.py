"""Seeded generation of random well-formed transistency programs.

This is the one home of the random-program generator: the fuzzing
pipeline drives it with a :class:`RngChooser` (a pure function of the
derived seed — no global ``random`` state), and the Hypothesis
strategies the property-test suite has always used are thin wrappers
that drive the *same* builder through a draw adapter
(``tests/strategies.py`` re-exports them).

The generator mirrors the legality rules the builder enforces (TLB hits
only on live entries, remap IPI fan-out to every core, one dirty-bit
ghost per write), so every emitted program is well-formed by
construction, and event costs are charged against the ``max_events``
budget up front, so every emitted program fits the requested bound.

Seed derivation (:func:`derive_seed`) is a pure blake2b function of
``(seed, stream, attempt)``; the fuzz pipeline passes the *round index*
as the stream, so a program's bytes depend only on the run seed and its
global attempt index — never on which shard or worker generated it.
That is the whole byte-identical-across-``--jobs`` argument.

Hypothesis is only imported inside the strategy wrappers: the pipeline
path has no test-library dependency.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence

from ..mtm import Event, EventKind, Program, ProgramBuilder

VAS = ("x", "y")
INITIAL = {"x": "pa_x", "y": "pa_y"}

#: Operation tokens the generator understands (subsets apply per mode).
OPS = ("r", "w", "rmw", "inv", "wpte", "fence")


def derive_seed(seed: int, stream: int, attempt: int) -> int:
    """A per-program seed, as a pure function of (seed, stream, attempt).

    blake2b over the canonical rendering — no global ``random`` state,
    no process state, no ordering dependence.  The fuzz pipeline uses
    the round index as ``stream`` (so seeds are independent of shard
    assignment and ``--jobs``); callers partitioning by shard may pass a
    shard index instead.
    """
    payload = f"{seed}:{stream}:{attempt}".encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big")


class RngChooser:
    """Deterministic chooser over a :class:`random.Random` instance
    seeded once — the pipeline's way of driving :func:`build_program`."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def integer(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def choice(self, options: Sequence):
        return options[self._rng.randrange(len(options))]

    def boolean(self) -> bool:
        return self._rng.random() < 0.5


def _event_cost(op: str, hit: bool, num_threads: int, mcm: bool) -> int:
    if op == "r":
        return 1 if (hit or mcm) else 2
    if op == "w":
        return 2 if (hit or mcm) else 3
    if op == "rmw":
        return (3 if not mcm else 2) + (0 if hit else 1 if not mcm else 0)
    if op == "wpte":
        return 1 + num_threads
    return 1  # inv, fence


def build_program(
    chooser,
    max_threads: int = 2,
    max_events: int = 8,
    mcm: bool = False,
    allow_vm: bool = True,
    allow_fences: bool = False,
    op_bias: Sequence[str] = (),
) -> Program:
    """One well-formed transistency program, drawn through ``chooser``.

    ``chooser`` is anything with ``integer(lo, hi)``, ``choice(seq)``,
    and ``boolean()`` — an :class:`RngChooser` on the pipeline path, a
    Hypothesis draw adapter on the property-test path.  ``op_bias``
    extends the operation pool with extra (legal) tokens, raising their
    selection probability — the coverage map's generation-profile hook.
    """
    num_threads = chooser.integer(1, max_threads)
    builder = ProgramBuilder(initial_map=dict(INITIAL), mcm_mode=mcm)
    threads = [builder.thread() for _ in range(num_threads)]
    # Shadow TLB: (thread index, va) -> walk event for hit decisions.
    live: dict[tuple[int, str], Event] = {}
    budget = max_events

    ops = ["r", "w"]
    if allow_fences:
        ops.append("fence")
    if not mcm:
        ops.append("rmw")
        if allow_vm:
            ops.extend(["inv", "wpte"])
    ops.extend(op for op in op_bias if op in ops)

    num_ops = chooser.integer(1, max(5, max_events))
    for _ in range(num_ops):
        tid = chooser.integer(0, num_threads - 1)
        op = chooser.choice(ops)
        va = chooser.choice(VAS)
        want_hit = chooser.boolean()
        hit = want_hit and (tid, va) in live and not mcm
        cost = _event_cost(op, hit, num_threads, mcm)
        if cost > budget:
            continue
        thread = threads[tid]
        if op == "r" or op == "w":
            walk = live[(tid, va)] if hit else None
            event = (
                thread.read(va, walk=walk)
                if op == "r"
                else thread.write(va, walk=walk)
            )
            if not mcm and not hit:
                live[(tid, va)] = builder.walk_of(event)
        elif op == "rmw":
            walk = live[(tid, va)] if hit else None
            read, _write = thread.rmw(va, walk=walk)
            if not mcm and not hit:
                live[(tid, va)] = builder.walk_of(read)
        elif op == "fence":
            thread.fence()
        elif op == "inv":
            # Spurious INVLPG: only useful surrounded by accesses, but
            # structurally legal anywhere.
            thread.invlpg(va)
            live.pop((tid, va), None)
        elif op == "wpte":
            target = chooser.choice(
                ["pa_fresh"] + [INITIAL[v] for v in VAS if v != va]
            )
            wpte = thread.pte_write(va, target)
            live.pop((tid, va), None)
            for other_tid, other in enumerate(threads):
                if other is not thread:
                    other.invlpg_for(wpte)
                    live.pop((other_tid, va), None)
        budget -= cost
        if budget <= 0:
            break
    program = builder.build()
    if program.size == 0:  # pragma: no cover - defensive
        threads[0].read("x")
        program = builder.build()
    return program


def build_vm_program(
    chooser, max_threads: int = 2, max_events: int = 8
) -> Program:
    """A well-formed transistency program guaranteed to exercise the VM
    vocabulary: at least one PTE write (with its remap IPI fan-out) rides
    alongside whatever :func:`build_program` drew.  These are the inputs
    where model differencing is interesting — catalog entries only
    disagree through translation-visible behavior."""
    program = build_program(
        chooser, max_threads=max_threads, max_events=max(2, max_events - 3)
    )
    if any(e.kind is EventKind.PTE_WRITE for e in program.events.values()):
        return program
    # Rebuild with a remap appended to a drawn thread (builders are
    # single-shot, so replay the original threads' user instructions;
    # RMW pairs replay as plain read+write, TLB hits re-walk — both stay
    # well-formed, which is all these inputs promise).
    builder = ProgramBuilder(initial_map=dict(INITIAL))
    threads = [builder.thread() for _ in range(len(program.threads))]
    for thread, eids in zip(threads, program.threads):
        for eid in eids:
            event = program.events[eid]
            if event.kind is EventKind.READ:
                thread.read(event.va)
            elif event.kind is EventKind.WRITE:
                thread.write(event.va)
            elif event.kind is EventKind.INVLPG:
                thread.invlpg(event.va)
            elif event.kind is EventKind.FENCE:
                thread.fence()
    target_thread = threads[chooser.integer(0, len(threads) - 1)]
    wpte = target_thread.pte_write(chooser.choice(VAS), "pa_fresh")
    for other in threads:
        if other is not target_thread:
            other.invlpg_for(wpte)
    return builder.build()


def random_program(
    seed: int,
    stream: int = 0,
    attempt: int = 0,
    **kwargs,
) -> Program:
    """The pipeline entry point: the program at (seed, stream, attempt),
    built through a fresh :class:`RngChooser` over the derived seed."""
    return build_program(RngChooser(derive_seed(seed, stream, attempt)), **kwargs)


# ----------------------------------------------------------------------
# Hypothesis strategies (the property-test surface; lazy import so the
# pipeline never needs the test library)
# ----------------------------------------------------------------------


def _st():
    from hypothesis import strategies as st

    return st


class DrawChooser:
    """Adapter driving :func:`build_program` from a Hypothesis draw."""

    def __init__(self, draw, st) -> None:
        self._draw = draw
        self._st = st

    def integer(self, low: int, high: int) -> int:
        return self._draw(self._st.integers(min_value=low, max_value=high))

    def choice(self, options: Sequence):
        return self._draw(self._st.sampled_from(list(options)))

    def boolean(self) -> bool:
        return self._draw(self._st.booleans())


def programs(
    max_threads: int = 2,
    max_events: int = 8,
    mcm: bool = False,
    allow_vm: bool = True,
    allow_fences: bool = False,
):
    """Whole well-formed transistency ``Program`` s (user accesses, RMWs,
    spurious INVLPGs, PTE writes with remap IPI fan-out, optional
    fences), as a Hypothesis strategy over :func:`build_program`."""
    st = _st()

    @st.composite
    def _programs(draw) -> Program:
        return build_program(
            DrawChooser(draw, st),
            max_threads=max_threads,
            max_events=max_events,
            mcm=mcm,
            allow_vm=allow_vm,
            allow_fences=allow_fences,
        )

    return _programs()


def vm_programs(max_threads: int = 2, max_events: int = 8):
    """Programs guaranteed to exercise the VM vocabulary (at least one
    PTE write) — the interesting inputs for model-differencing
    properties."""
    st = _st()

    @st.composite
    def _vm_programs(draw) -> Program:
        return build_vm_program(
            DrawChooser(draw, st),
            max_threads=max_threads,
            max_events=max_events,
        )

    return _vm_programs()


def catalog_model_names():
    """A model name drawn from the catalog, in catalog order."""
    from ..models import CATALOG

    return _st().sampled_from(list(CATALOG))


def catalog_model_pairs(distinct: bool = True):
    """An ordered (reference, subject) pair of instantiated catalog
    models."""
    from ..models import CATALOG

    st = _st()

    @st.composite
    def _pairs(draw):
        names = list(CATALOG)
        ref = draw(st.sampled_from(names))
        pool = [n for n in names if n != ref] if distinct else names
        sub = draw(st.sampled_from(pool))
        return CATALOG[ref](), CATALOG[sub]()

    return _pairs()


def witness_lists(max_witnesses: int = 40, **program_kwargs):
    """A program plus a prefix of its candidate-execution enumeration —
    the shared input shape for metamorphic comparison properties."""
    st = _st()

    @st.composite
    def _witness_lists(draw):
        from ..synth import enumerate_witnesses

        program = draw(programs(**program_kwargs))
        witnesses = []
        for index, witness in enumerate(enumerate_witnesses(program)):
            witnesses.append(witness)
            if index + 1 >= max_witnesses:
                break
        return program, witnesses

    return _witness_lists()


def executions(**program_kwargs):
    """A random candidate execution: random program, random witness."""
    from ..mtm import Execution

    st = _st()

    @st.composite
    def _executions(draw) -> Execution:
        program, witnesses = draw(witness_lists(**program_kwargs))
        if not witnesses:  # pragma: no cover - every valid program has some
            return Execution(program)
        return draw(st.sampled_from(witnesses))

    return _executions()

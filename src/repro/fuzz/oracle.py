"""The differential oracle: one random program in, verdicts out.

Built entirely from machinery the exact pipeline already trusts:
:class:`~repro.models.PairClassifier` supplies the shared-axiom verdict
pairs, :func:`repro.synth.engine.witness_stream_factory` supplies the
candidate-execution stream (explicit or SAT/witness-session backend,
orbit-pruned and weighted under :mod:`repro.symmetry`), and
:func:`repro.synth.relax.is_minimal` supplies §IV-B minimality.

Two query shapes:

* :meth:`DifferentialOracle.classify` returns a :class:`ClassSummary` —
  agreement counts, behavior signatures, whether a discriminating
  witness exists, and whether a *minimal* one does.  Every field is a
  pure function of the program's orbit-canonical class (verdicts,
  weighted counts, and minimality are isomorphism-invariant), so the
  summary is memoized by canonical key: duplicate orbit members and
  shrink re-queries replay instead of re-enumerating.
* :meth:`DifferentialOracle.judge` additionally selects the
  representative execution — the smallest ``(canonical execution key,
  witness sort key)`` among the program's minimal discriminating
  witnesses, the same total order the enumerated diff pipeline uses —
  which is member-specific and therefore never memoized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..models import Agreement, MemoryModel, PairClassifier
from ..mtm import Execution, Program
from ..obs import current_registry
from ..symmetry import execution_key_via, program_symmetry, witness_sort_key
from ..synth.canon import (
    canonical_execution_key,
    canonical_program_key,
    identity_program_key,
)
from ..synth.engine import witness_stream_factory
from ..synth.relax import cached_is_minimal, is_minimal
from .config import FuzzConfig, FuzzStats


@dataclass(frozen=True)
class ClassSummary:
    """Class-pure verdicts for one orbit-canonical program class."""

    #: (both-permit, both-forbid, only-reference-forbids,
    #: only-subject-forbids) weighted witness counts.
    counts: Tuple[int, int, int, int]
    #: Distinct (agreement value, violated-reference-axiom tuple) pairs.
    signatures: Tuple[Tuple[str, Tuple[str, ...]], ...]
    #: A reference-forbidden, subject-permitted witness exists.
    discriminating: bool
    #: ... and at least one such witness is §IV-B minimal.
    minimal: bool
    #: Abandoned: weighted witness count exceeded ``max_witnesses``
    #: (every other field is zeroed; the class is counted, not judged).
    truncated: bool
    #: Weighted candidate executions (0 when truncated).
    witnesses: int


@dataclass
class Judgment:
    """A full member-level judgment: the class summary plus the
    representative minimal discriminating execution (when one exists)."""

    summary: ClassSummary
    canonical_key: tuple
    identity_rank: tuple
    execution: Optional[Execution] = None
    execution_key: Optional[tuple] = None
    witness_rank: Optional[tuple] = None
    violated_axioms: Tuple[str, ...] = ()


class DifferentialOracle:
    """Judges random programs under one (reference, subject) pair."""

    def __init__(self, config: FuzzConfig, stats: Optional[FuzzStats] = None):
        self.config = config
        self.reference: MemoryModel = config.reference
        self.subject: MemoryModel = config.subject
        self.classifier = PairClassifier(config.reference, config.subject)
        self.stats = stats if stats is not None else FuzzStats()
        self.stage_times: dict = {}
        base = config.base_synthesis_config()
        self._use_symmetry = base.symmetry
        self._use_shared_minimality = base.incremental
        self._stream, self.sat_stats = witness_stream_factory(
            base, stage_times=self.stage_times
        )
        #: canonical program key -> ClassSummary (class-pure replay).
        self._memo: dict = {}
        #: local minimality cache for the --fresh-solver oracle path.
        self._minimal_cache: dict = {}

    # -- keys -----------------------------------------------------------
    def symmetry_of(self, program: Program):
        return program_symmetry(program) if self._use_symmetry else None

    def canonical_key_of(self, program: Program, sym=None) -> tuple:
        if sym is not None:
            return sym.canonical_key
        if self._use_symmetry:
            return program_symmetry(program).canonical_key
        return canonical_program_key(program)

    # -- queries --------------------------------------------------------
    def classify(self, program: Program) -> ClassSummary:
        """The memoized class-pure summary for a program's orbit class."""
        self.stats.oracle_calls += 1
        sym = self.symmetry_of(program)
        key = self.canonical_key_of(program, sym)
        cached = self._memo.get(key)
        if cached is not None:
            self.stats.oracle_memo_hits += 1
            current_registry().inc("fuzz.oracle_memo_hits", informational=True)
            return cached
        current_registry().inc("fuzz.oracle_calls", informational=True)
        summary, _rep = self._evaluate(program, sym, want_representative=False)
        self._memo[key] = summary
        return summary

    def judge(self, program: Program) -> Judgment:
        """A full pass selecting the representative execution (the
        member-specific part a shrunk finding serializes)."""
        self.stats.oracle_calls += 1
        current_registry().inc("fuzz.oracle_calls", informational=True)
        sym = self.symmetry_of(program)
        key = self.canonical_key_of(program, sym)
        summary, rep = self._evaluate(program, sym, want_representative=True)
        self._memo[key] = summary
        identity_rank = (
            sym.identity_key if sym is not None else identity_program_key(program)
        )
        judgment = Judgment(
            summary=summary, canonical_key=key, identity_rank=identity_rank
        )
        if rep is not None:
            execution, execution_key, witness_rank = rep
            judgment.execution = execution
            judgment.execution_key = execution_key
            judgment.witness_rank = witness_rank
            judgment.violated_axioms = self.reference.check(execution).violated
        return judgment

    # -- evaluation -----------------------------------------------------
    def _is_minimal(self, execution: Execution, execution_key: tuple) -> bool:
        if self._use_shared_minimality:
            return cached_is_minimal(execution, self.reference, execution_key)
        verdict = self._minimal_cache.get(execution_key)
        if verdict is None:
            verdict = is_minimal(execution, self.reference)
            self._minimal_cache[execution_key] = verdict
        return verdict

    def _evaluate(self, program: Program, sym, want_representative: bool):
        """One pass over the witness stream.  Returns (summary,
        representative-or-None) where the representative is the smallest
        ``(execution key, witness rank)`` minimal discriminating witness.
        """
        counts = [0, 0, 0, 0]  # bp, bf, orf, osf
        signatures: set = set()
        discriminating: list = []  # (execution_key, witness_rank, execution)
        total = 0
        truncated = False
        limit = self.config.max_witnesses
        verdicts = self.classifier.verdicts
        for execution, weight in self._stream(program, sym):
            total += weight
            if total > limit:
                truncated = True
                break
            ref_permits, sub_permits = verdicts(execution)
            if ref_permits:
                if sub_permits:
                    counts[0] += weight
                    signatures.add((Agreement.BOTH_PERMIT.value, ()))
                else:
                    counts[3] += weight
                    signatures.add((Agreement.ONLY_SUBJECT_FORBIDS.value, ()))
                continue
            violated = self.reference.check(execution).violated
            if not sub_permits:
                counts[1] += weight
                signatures.add((Agreement.BOTH_FORBID.value, violated))
                continue
            counts[2] += weight
            signatures.add((Agreement.ONLY_REFERENCE_FORBIDS.value, violated))
            execution_key = (
                execution_key_via(sym, execution)
                if sym is not None
                else canonical_execution_key(execution)
            )
            witness_rank = witness_sort_key(
                program, execution._rf, execution.co, execution.co_pa
            )
            discriminating.append((execution_key, witness_rank, execution))
        if truncated:
            self.stats.truncated += 1
            current_registry().inc("fuzz.truncated", informational=True)
            return (
                ClassSummary(
                    counts=(0, 0, 0, 0),
                    signatures=(),
                    discriminating=False,
                    minimal=False,
                    truncated=True,
                    witnesses=0,
                ),
                None,
            )
        self.stats.witnesses_classified += total
        current_registry().observe("fuzz.witnesses_per_program", total)
        # The representative is the smallest (canonical execution key,
        # witness sort key) among the *minimal* discriminating witnesses
        # — the same order-free total order the enumerated diff pipeline
        # uses, so isomorphic findings always serialize the same bytes.
        representative = None
        minimal = False
        for execution_key, witness_rank, execution in sorted(
            discriminating, key=lambda item: (item[0], item[1])
        ):
            if self._is_minimal(execution, execution_key):
                minimal = True
                if want_representative:
                    representative = (execution, execution_key, witness_rank)
                break
        summary = ClassSummary(
            counts=tuple(counts),
            signatures=tuple(sorted(signatures)),
            discriminating=bool(discriminating),
            minimal=minimal,
            truncated=False,
            witnesses=total,
        )
        return summary, representative

"""Spawn-safe fuzz shard execution.

The fuzz analogue of :mod:`repro.conformance.worker`: a worker process
receives a pickled :class:`FuzzShardTask` (fuzz config + one round's
profile allocation + shard spec + wall-clock deadline), generates and
judges its residue class of the round's attempts, shrinks every
discriminating program to a §IV-B-minimal ELT, and returns a
:class:`FuzzShardResult` of per-attempt :class:`AttemptRecord`\\ s.

The records carry only class-pure observations (class digest, agreement
counts, behavior signatures) plus the shrunk findings — everything the
runner's merge needs, nothing that depends on which shard did the work.
Program bytes are a pure function of ``(run seed, round, global attempt
index)`` via :func:`repro.fuzz.generators.derive_seed`, and the shard
picks attempts by ``index % skeleton_count == skeleton_index``, so the
union of all shards' records is identical for every ``--jobs``/shard
split — the byte-identical-findings contract.

Everything here is a module-level function/dataclass so it pickles under
the ``spawn`` start method; deadlines travel as wall-clock timestamps
and are converted to each worker's monotonic clock on arrival.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import SolverInterrupted
from ..mtm import Execution, Program
from ..obs import MetricsRegistry, SpanBatch, current_registry
from ..orchestrate.shards import ShardSpec
from ..resilience import FaultPlan, deadline_scope
from ..sat import solver_preferences
from ..conformance.worker import _observed
from .config import FuzzConfig, FuzzStats
from .coverage import PROFILE_KWARGS, class_digest
from .generators import RngChooser, build_program, derive_seed
from .oracle import DifferentialOracle
from .shrink import shrink


@dataclass(frozen=True)
class FuzzShardTask:
    """One round's residue class of fuzz attempts, shipped to a worker."""

    config: FuzzConfig
    round_index: int
    #: Profile name per global attempt index (the round's allocation,
    #: computed by the runner at the previous round barrier).
    allocation: Tuple[str, ...]
    spec: ShardSpec
    #: Absolute wall-clock deadline (``time.time()``), or None.
    wall_deadline: Optional[float] = None
    #: Collect spans/metrics in the worker and ship them on the result.
    observe: bool = False
    #: Which (re)submission this is (stamped by the resilient scheduler).
    attempt: int = 1
    #: Seeded chaos harness; consulted on worker entry when set.
    faults: Optional[FaultPlan] = None


@dataclass(frozen=True)
class ShrunkFinding:
    """A shrunk, §IV-B-minimal discriminating ELT from one attempt."""

    program: Program
    execution: Execution
    canonical_key: tuple
    identity_rank: tuple
    execution_key: tuple
    witness_rank: tuple
    violated_axioms: Tuple[str, ...]
    steps: int


@dataclass(frozen=True)
class AttemptRecord:
    """Class-pure observations for one attempt (plus its finding)."""

    #: Global attempt index within the round (the seed-derivation index).
    index: int
    profile: str
    #: Class digest of the *generated* program's orbit-canonical key.
    digest: str
    counts: Tuple[int, int, int, int]
    signatures: tuple
    truncated: bool
    discriminating: bool
    #: Set when the attempt discriminated AND shrinking reached §IV-B
    #: minimality; None otherwise (counted in ``shrink_failed``).
    finding: Optional[ShrunkFinding] = None


@dataclass
class FuzzShardResult:
    spec: ShardSpec
    round_index: int
    records: list = field(default_factory=list)
    stats: FuzzStats = field(default_factory=FuzzStats)
    runtime_s: float = 0.0
    #: Worker span batch (``task.observe`` only; stripped before store
    #: writes — spans describe one concrete run).
    spans: Optional[SpanBatch] = None
    #: Worker metrics registry (``task.observe`` only; persisted with the
    #: shard so cache hits replay deterministic histograms).
    metrics: Optional[MetricsRegistry] = None

    @property
    def timed_out(self) -> bool:
        return self.stats.timed_out


def _judge_attempt(
    oracle: DifferentialOracle,
    config: FuzzConfig,
    round_index: int,
    index: int,
    profile: str,
) -> AttemptRecord:
    """Generate, classify, and (when discriminating) shrink one attempt."""
    program = build_program(
        RngChooser(derive_seed(config.seed, round_index, index)),
        max_threads=config.max_threads,
        max_events=config.bound,
        **PROFILE_KWARGS[profile],
    )
    oracle.stats.programs_generated += 1
    current_registry().inc("fuzz.programs_generated", informational=True)
    digest = class_digest(oracle.canonical_key_of(program))
    replays_before = oracle.stats.oracle_memo_hits
    summary = oracle.classify(program)
    if oracle.stats.oracle_memo_hits > replays_before:
        oracle.stats.class_replays += 1
    finding = None
    if summary.discriminating:
        oracle.stats.discriminating += 1
        current_registry().inc("fuzz.discriminating", informational=True)
        outcome = shrink(program, oracle)
        if outcome is not None:
            judgment = outcome.judgment
            finding = ShrunkFinding(
                program=outcome.program,
                execution=judgment.execution,
                canonical_key=judgment.canonical_key,
                identity_rank=judgment.identity_rank,
                execution_key=judgment.execution_key,
                witness_rank=judgment.witness_rank,
                violated_axioms=judgment.violated_axioms,
                steps=outcome.steps,
            )
    return AttemptRecord(
        index=index,
        profile=profile,
        digest=digest,
        counts=summary.counts,
        signatures=summary.signatures,
        truncated=summary.truncated,
        discriminating=summary.discriminating,
        finding=finding,
    )


def run_fuzz_shard(task: FuzzShardTask) -> FuzzShardResult:
    """Execute one fuzz shard (in-process or in a worker process)."""
    if task.faults is not None:
        task.faults.apply_worker_fault(task.spec.label, task.attempt)
    started = time.monotonic()
    deadline = None
    if task.wall_deadline is not None:
        deadline = started + max(0.0, task.wall_deadline - time.time())
    tracer, registry, restore = _observed(task.spec, task.observe)
    result = FuzzShardResult(spec=task.spec, round_index=task.round_index)
    oracle = DifferentialOracle(task.config, stats=result.stats)
    spec = task.spec
    try:
        shard_span = (
            tracer.begin("shard", category="fuzz", round=task.round_index)
            if tracer
            else None
        )
        try:
            # Publish the deadline on the cooperative channel so a stuck
            # SAT query inside one witness step can be interrupted
            # mid-solve, and scope the solver knobs for every solver the
            # oracle's witness stream builds.
            with deadline_scope(deadline), solver_preferences(
                core=task.config.solver_core,
                inprocess=task.config.inprocessing,
            ):
                for index in range(len(task.allocation)):
                    if index % spec.skeleton_count != spec.skeleton_index:
                        continue
                    if deadline is not None and time.monotonic() > deadline:
                        result.stats.timed_out = True
                        break
                    span = (
                        tracer.begin("attempt", category="fuzz", index=index)
                        if tracer
                        else None
                    )
                    try:
                        record = _judge_attempt(
                            oracle,
                            task.config,
                            task.round_index,
                            index,
                            task.allocation[index],
                        )
                    except SolverInterrupted:
                        result.stats.timed_out = True
                        break
                    finally:
                        if tracer:
                            tracer.end(span)
                    result.records.append(record)
        finally:
            if tracer:
                tracer.end(shard_span)
    finally:
        restore()
    result.runtime_s = time.monotonic() - started
    result.stats.runtime_s = result.runtime_s
    if tracer is not None:
        result.spans = tracer.batch()
        result.metrics = registry
    return result

"""The coverage map: observed behaviors, novelty, and profile feedback.

Coverage has three dimensions, all derived from machinery the exact
pipeline already trusts:

* **agreement buckets** — the four :class:`~repro.models.Agreement`
  verdict pairs of the differential oracle, counted per witness;
* **axiom signatures** — for reference-forbidden witnesses, the sorted
  tuple of violated reference axioms (the behavior's "why"), combined
  with the subject verdict;
* **program classes** — orbit-canonical program keys
  (:func:`repro.synth.canon.canonical_program_key` digests), so two
  isomorphic programs never count as two behaviors.

Novelty (first sighting of a class or behavior bucket) feeds generation:
each profile in :data:`PROFILES` is a bias over the generator's
operation pool, and the next round's attempts are allocated to profiles
by largest-remainder apportionment over ``1 + novelty`` weights — an
exploration floor of one share keeps every profile alive.  The
allocation is a pure function of the merged map, and the map is merged
at round barriers in global attempt order, so coverage guidance never
depends on shard interleaving (the cross-``--jobs`` determinism
contract).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Sequence, Tuple

#: Generation profiles: (name, build_program kwargs overrides).  The
#: op_bias tokens are appended to the legal operation pool, raising
#: their draw probability; unknown tokens are ignored by the builder.
PROFILES: Tuple[Tuple[str, dict], ...] = (
    ("mixed", {}),
    ("vm_heavy", {"op_bias": ("wpte", "inv", "wpte", "inv")}),
    ("rmw_heavy", {"op_bias": ("rmw", "rmw", "w")}),
    ("racy", {"op_bias": ("w", "r", "w")}),
)

PROFILE_NAMES: Tuple[str, ...] = tuple(name for name, _ in PROFILES)

PROFILE_KWARGS: dict = {name: kwargs for name, kwargs in PROFILES}


def class_digest(canonical_key: tuple) -> str:
    """A short stable digest of an orbit-canonical program key."""
    rendered = repr(canonical_key).encode("utf-8")
    return hashlib.blake2b(rendered, digest_size=8).hexdigest()


def behavior_key(agreement: str, signature: Tuple[str, ...]) -> str:
    """One behavior bucket: agreement value x violated-axiom signature."""
    return f"{agreement}|{'+'.join(signature) if signature else '-'}"


@dataclass
class CoverageMap:
    """Counts per coverage dimension plus per-profile novelty credit."""

    #: agreement bucket value -> weighted witness count.
    agreement: dict = field(default_factory=dict)
    #: behavior bucket (agreement x signature) -> weighted count.
    behaviors: dict = field(default_factory=dict)
    #: orbit-canonical program class digest -> attempt count.
    classes: dict = field(default_factory=dict)
    #: profile name -> novelty credit (new classes + new behaviors it
    #: uncovered, across the whole run).
    novel_by_profile: dict = field(default_factory=dict)
    #: novelty per completed round (new classes + behaviors), appended
    #: at each round barrier — the saturation signal.
    round_novelty: list = field(default_factory=list)

    # -- observation ----------------------------------------------------
    def observe_attempt(
        self,
        profile: str,
        digest: str,
        counts: Tuple[int, int, int, int],
        signatures: Sequence[Tuple[str, Tuple[str, ...]]],
    ) -> int:
        """Fold one attempt's class-pure observations in; returns the
        novelty delta (0, 1 for a new class, +1 per new behavior).

        ``counts`` is (both-permit, both-forbid, only-reference-forbids,
        only-subject-forbids) weighted witness totals; ``signatures`` are
        (agreement value, violated-axiom tuple) pairs with implicit
        weight folded into ``counts`` already.
        """
        from ..models import Agreement

        novelty = 0
        if digest not in self.classes:
            novelty += 1
        self.classes[digest] = self.classes.get(digest, 0) + 1
        for value, count in zip(
            (
                Agreement.BOTH_PERMIT.value,
                Agreement.BOTH_FORBID.value,
                Agreement.ONLY_REFERENCE_FORBIDS.value,
                Agreement.ONLY_SUBJECT_FORBIDS.value,
            ),
            counts,
        ):
            if count:
                self.agreement[value] = self.agreement.get(value, 0) + count
        for agreement_value, signature in signatures:
            key = behavior_key(agreement_value, tuple(signature))
            if key not in self.behaviors:
                novelty += 1
            self.behaviors[key] = self.behaviors.get(key, 0) + 1
        if novelty:
            self.novel_by_profile[profile] = (
                self.novel_by_profile.get(profile, 0) + novelty
            )
        return novelty

    def finish_round(self, novelty: int) -> None:
        self.round_novelty.append(novelty)

    # -- saturation -----------------------------------------------------
    @property
    def class_count(self) -> int:
        return len(self.classes)

    @property
    def behavior_count(self) -> int:
        return len(self.behaviors)

    @property
    def saturated(self) -> bool:
        """No novelty in the most recent completed round."""
        return bool(self.round_novelty) and self.round_novelty[-1] == 0

    def novelty_rate(self) -> float:
        """Novel classes+behaviors per attempt, across the whole run."""
        attempts = sum(self.classes.values())
        if attempts == 0:
            return 0.0
        total = self.class_count + self.behavior_count
        return total / attempts

    # -- generation feedback --------------------------------------------
    def allocate(self, attempts: int) -> Tuple[str, ...]:
        """Assign each of the next round's attempt slots to a profile.

        Largest-remainder apportionment over ``1 + novelty_credit``
        weights (the +1 is the exploration floor), then a deterministic
        block layout in profile order.  A pure function of the merged
        map — identical whatever the shard split that built it.
        """
        weights = [
            1 + self.novel_by_profile.get(name, 0) for name in PROFILE_NAMES
        ]
        total = sum(weights)
        shares = [attempts * weight / total for weight in weights]
        counts = [int(share) for share in shares]
        leftover = attempts - sum(counts)
        remainders = sorted(
            range(len(PROFILE_NAMES)),
            key=lambda i: (-(shares[i] - counts[i]), i),
        )
        for i in remainders[:leftover]:
            counts[i] += 1
        allocation: list = []
        for name, count in zip(PROFILE_NAMES, counts):
            allocation.extend([name] * count)
        return tuple(allocation)

    # -- serialization --------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        return {
            "classes": self.class_count,
            "behaviors": self.behavior_count,
            "agreement": dict(sorted(self.agreement.items())),
            "behavior_counts": dict(sorted(self.behaviors.items())),
            "novel_by_profile": dict(sorted(self.novel_by_profile.items())),
            "round_novelty": list(self.round_novelty),
            "saturated": self.saturated,
            "novelty_rate": round(self.novelty_rate(), 4),
        }

"""Greedy ELT shrinking: reduce a discriminating program to §IV-B form.

A fuzz finding starts as a random bound-8-to-12 program that the oracle
says discriminates (reference forbids a witness the subject permits).
That raw program is a terrible regression test: it carries events the
divergence never needed.  The shrinker walks the same relaxation lattice
§IV-B minimality is defined over — closed removal groups and dropped
RMW pairings from :func:`repro.synth.relax.relaxations` — greedily
accepting any relaxation whose relaxed program *still discriminates*
(one memoized :meth:`~repro.fuzz.oracle.DifferentialOracle.classify`
per candidate), and stops as soon as the current program has a §IV-B
minimal discriminating witness.  The result is judged once more in full
to pick the representative execution — a finding in the exact format
the enumerated suites use.

Every accepted step strictly shrinks ``(|events|, |RMW pairings|)``, so
descent terminates; ``max_steps`` is a defensive cap, not a tuning knob.
A discriminating program that gets stuck before reaching minimality
(every relaxation kills the divergence, yet no current witness is
minimal) is counted in ``shrink_failed`` and dropped — the suite only
ever contains §IV-B-minimal ELTs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..mtm import Program
from ..obs import current_registry
from ..synth.relax import relaxations, relaxed_program, without_rmw_pair
from .oracle import DifferentialOracle, Judgment


@dataclass
class ShrinkOutcome:
    """A shrink that reached §IV-B minimality."""

    program: Program
    judgment: Judgment
    #: Accepted relaxation steps (0 = the input was already minimal).
    steps: int


def shrink(
    program: Program,
    oracle: DifferentialOracle,
    max_steps: int = 64,
) -> Optional[ShrinkOutcome]:
    """Greedy descent from ``program`` to a §IV-B-minimal discriminating
    ELT, or ``None`` when the input does not discriminate (or descent
    gets stuck before minimality).

    The first relaxation (in :func:`relaxations`'s deterministic order)
    that preserves discrimination is accepted each round — a pure
    function of the input program, so isomorphic inputs shrink to
    isomorphic outputs whatever shard processed them.
    """
    summary = oracle.classify(program)
    if not summary.discriminating:
        return None
    steps = 0
    while steps <= max_steps:
        if summary.minimal:
            judgment = oracle.judge(program)
            if judgment.execution is None:  # pragma: no cover - defensive
                break
            current_registry().inc("fuzz.shrunk", informational=True)
            return ShrinkOutcome(program=program, judgment=judgment, steps=steps)
        progressed = False
        for group, dropped in relaxations(program):
            candidate = (
                without_rmw_pair(program, dropped)
                if dropped is not None
                else relaxed_program(program, group)
            )
            if candidate.size == 0:
                continue
            candidate_summary = oracle.classify(candidate)
            if candidate_summary.discriminating:
                program, summary = candidate, candidate_summary
                steps += 1
                oracle.stats.shrink_steps += 1
                current_registry().inc("fuzz.shrink_steps", informational=True)
                progressed = True
                break
        if not progressed:
            break
    oracle.stats.shrink_failed += 1
    current_registry().inc("fuzz.shrink_failed", informational=True)
    return None

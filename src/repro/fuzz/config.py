"""Fuzz run configuration, counters, and store identity.

:class:`FuzzConfig` is the fuzz analogue of
:class:`~repro.synth.SynthesisConfig`: everything that shapes a run.
Fields that change *what* the run finds participate in the store
identity (:func:`fuzz_identity`); the execution-strategy knobs the rest
of the pipeline treats as output-invariant (``witness_backend``'s
session/symmetry/core companions) are excluded exactly like
:func:`repro.orchestrate.store.config_identity` excludes them.

:class:`FuzzStats` is the run's deterministic counter block.  Counters
marked *serial-deterministic* reproduce exactly for a fixed seed at
``--jobs 1`` (the bench gate); per-shard oracle memo hits vary with the
shard split, so only the findings bytes — never the counters — are the
cross-``--jobs`` contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..models import MemoryModel, x86t_elt
from ..models.catalog import CATALOG
from ..synth import SynthesisConfig


def _default_reference() -> MemoryModel:
    return x86t_elt()


def _default_subject() -> MemoryModel:
    return CATALOG["x86t_amd_bug"]()


@dataclass
class FuzzConfig:
    """One coverage-guided differential fuzz run."""

    #: Run seed: the only entropy source.  Per-program seeds derive from
    #: (seed, round, attempt) via :func:`repro.fuzz.generators.derive_seed`.
    seed: int = 0
    #: Generation bound: max events per random program (8-12 is the
    #: beyond-the-enumeration regime; the enumerator caps out at 6-8).
    bound: int = 8
    #: The spec model — forbids the discriminating findings; also drives
    #: minimality, exactly like ``DiffConfig.base.model``.
    reference: MemoryModel = field(default_factory=_default_reference)
    #: The model under comparison — permits the findings.
    subject: MemoryModel = field(default_factory=_default_subject)
    #: Coverage-feedback rounds.  Generation profiles adapt only at
    #: round barriers (deterministic merge), never mid-round.
    rounds: int = 2
    #: Programs generated per round (partitioned across shards).
    attempts_per_round: int = 64
    max_threads: int = 2
    #: Abandon a program whose candidate-execution count exceeds this
    #: (counted, never classified — the verdict stays class-pure).
    max_witnesses: int = 20000
    #: Wall-clock budget for the whole run (None = unbounded).
    time_budget_s: Optional[float] = None
    # Execution-strategy knobs (output-invariant, excluded from identity).
    witness_backend: str = "explicit"
    incremental: bool = True
    symmetry: bool = True
    solver_core: str = "auto"
    inprocessing: bool = True

    def base_synthesis_config(self) -> SynthesisConfig:
        """The enumeration-shaping config the oracle's witness stream and
        minimality checks run under (model = reference)."""
        return SynthesisConfig(
            bound=self.bound,
            model=self.reference,
            target_axiom=None,
            max_threads=self.max_threads,
            witness_backend=self.witness_backend,
            incremental=self.incremental,
            symmetry=self.symmetry,
            solver_core=self.solver_core,
            inprocessing=self.inprocessing,
        )


@dataclass
class FuzzStats:
    """Deterministic fuzz counters (merged across shards by summation)."""

    #: Programs generated (= attempts executed).
    programs_generated: int = 0
    #: Oracle classification/judgment requests (including shrink
    #: re-queries; serial-deterministic).
    oracle_calls: int = 0
    #: Requests answered by the per-shard orbit-class memo (varies with
    #: the shard split — reported, never gated across ``--jobs``).
    oracle_memo_hits: int = 0
    #: Weighted candidate executions classified.
    witnesses_classified: int = 0
    #: Attempts whose program had a discriminating witness.
    discriminating: int = 0
    #: Accepted shrink steps across all findings.
    shrink_steps: int = 0
    #: Discriminating attempts the greedy shrinker could not reduce to a
    #: §IV-B-minimal ELT (dropped from the suite, kept honest here).
    shrink_failed: int = 0
    #: Programs abandoned for exceeding ``max_witnesses``.
    truncated: int = 0
    #: Attempts judged entirely from the orbit-class memo.
    class_replays: int = 0
    #: Distinct orbit-canonical program classes observed (set at merge).
    novel_classes: int = 0
    #: Distinct (agreement x axiom-signature) behavior buckets observed.
    novel_behaviors: int = 0
    #: Findings surviving dedup (set at merge).
    findings: int = 0
    timed_out: bool = False
    degraded: bool = False
    runtime_s: float = 0.0

    SUMMED_FIELDS = (
        "programs_generated",
        "oracle_calls",
        "oracle_memo_hits",
        "witnesses_classified",
        "discriminating",
        "shrink_steps",
        "shrink_failed",
        "truncated",
        "class_replays",
    )

    def absorb(self, other: "FuzzStats") -> None:
        for name in self.SUMMED_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.timed_out = self.timed_out or other.timed_out
        self.degraded = self.degraded or other.degraded

    def to_json(self) -> dict[str, Any]:
        payload = {name: getattr(self, name) for name in self.SUMMED_FIELDS}
        payload.update(
            novel_classes=self.novel_classes,
            novel_behaviors=self.novel_behaviors,
            findings=self.findings,
            timed_out=self.timed_out,
            degraded=self.degraded,
            runtime_s=round(self.runtime_s, 3),
        )
        return payload


def fuzz_identity(config: FuzzConfig) -> dict[str, Any]:
    """The JSON-safe identity of a fuzz configuration (the store key
    base for fuzz-kind entries; see :mod:`repro.orchestrate.store`)."""
    from ..orchestrate.store import SCHEMA_VERSION

    return {
        "schema": SCHEMA_VERSION,
        "seed": config.seed,
        "bound": config.bound,
        "reference": config.reference.name,
        "reference_axioms": list(config.reference.axiom_names),
        "subject": config.subject.name,
        "subject_axioms": list(config.subject.axiom_names),
        "rounds": config.rounds,
        "attempts_per_round": config.attempts_per_round,
        "max_threads": config.max_threads,
        "max_witnesses": config.max_witnesses,
        "time_budget_s": config.time_budget_s,
        "witness_backend": config.witness_backend,
    }

"""The regression corpus: shrunk findings on disk, deterministically.

Each finding is written as a *single-test* ``.elts`` suite file named by
its orbit-class digest, so the corpus directory is content-addressed:
re-running the same seeded campaign rewrites byte-identical files, a new
divergence adds exactly one new file, and version control diffs stay
readable.  The test format is the standard portable suite format
(:mod:`repro.litmus.suitefile`) with the fuzz provenance in the meta
line — any consumer of enumerated suites can consume the corpus.

Replay (:func:`replay_corpus`) is the regression check: every corpus
entry is re-parsed and re-judged from scratch against the catalog models
named in its own metadata — the reference must still forbid it, the
subject must still permit it, it must still be §IV-B minimal, and the
recorded violated-axiom list must still match.  No fuzzing, no seeds:
pure oracle replay, cheap enough for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Tuple, Union

from ..litmus.suitefile import EltSuite
from ..models.catalog import CATALOG
from ..synth.relax import is_minimal


def write_corpus(result, directory: Union[str, Path]) -> List[Path]:
    """Write one single-test ``.elts`` file per finding (named by class
    digest) into ``directory``; returns the written paths in finding
    rank order."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for finding in result.findings:
        suite = EltSuite()
        suite.add(
            f"fuzz_{finding.digest}",
            finding.execution,
            meta={
                "reference": result.reference,
                "subject": result.subject,
                "violates": ",".join(finding.violated_axioms),
                "bound": str(finding.program.size),
                "agreement": "only-reference-forbids",
                "seed": str(result.seed),
                "shrink_steps": str(finding.shrink_steps),
                "class": finding.digest,
            },
        )
        paths.append(suite.save(directory / f"{finding.digest}.elts"))
    return paths


@dataclass
class ReplayReport:
    """The outcome of re-judging every corpus entry from scratch."""

    directory: str
    entries: int = 0
    #: (file name, test name, reason) per failed check.
    failures: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json(self) -> dict:
        return {
            "directory": self.directory,
            "entries": self.entries,
            "ok": self.ok,
            "failures": [
                {"file": file, "test": test, "reason": reason}
                for file, test, reason in self.failures
            ],
        }


def _replay_entry(entry) -> List[str]:
    """Every broken promise of one corpus entry (empty = still green)."""
    problems: List[str] = []
    reference_name = entry.meta.get("reference", "")
    subject_name = entry.meta.get("subject", "")
    for role, name in (("reference", reference_name), ("subject", subject_name)):
        if name not in CATALOG:
            problems.append(f"unknown {role} model {name!r}")
    if problems:
        return problems
    reference = CATALOG[reference_name]()
    subject = CATALOG[subject_name]()
    verdict = reference.check(entry.execution)
    if verdict.permitted:
        problems.append(f"reference {reference_name} now permits the ELT")
    elif "violates" in entry.meta:
        recorded = tuple(v for v in entry.meta["violates"].split(",") if v)
        if tuple(verdict.violated) != recorded:
            problems.append(
                "violated axioms drifted: recorded "
                f"{','.join(recorded)}, got {','.join(verdict.violated)}"
            )
    if not subject.check(entry.execution).permitted:
        problems.append(f"subject {subject_name} now forbids the ELT")
    if not problems and not is_minimal(entry.execution, reference):
        problems.append("no longer §IV-B minimal under the reference")
    return problems


def replay_corpus(directory: Union[str, Path]) -> ReplayReport:
    """Re-judge every ``.elts`` file under ``directory`` (sorted by
    name, so reports are deterministic)."""
    directory = Path(directory)
    report = ReplayReport(directory=str(directory))
    for path in sorted(directory.glob("*.elts")):
        suite = EltSuite.load(path)
        for entry in suite:
            report.entries += 1
            for reason in _replay_entry(entry):
                report.failures.append((path.name, entry.name, reason))
    return report

"""The fuzz orchestrator: coverage-guided rounds over sharded workers.

``run_fuzz`` scales a coverage-guided differential fuzz run across cores
with the exact machinery :func:`repro.conformance.run_diff` uses —
deterministic shard plan (:func:`repro.orchestrate.plan_shards`), the
shared resilient executor
(:func:`repro.conformance.execute_shard_tasks`: spawn pool, retries,
quarantine), and suite-store reuse of finished (round, shard) slices and
whole runs under the new fuzz store kinds.

The determinism contract, end to end:

1. program bytes are a pure function of ``(seed, round, global attempt
   index)`` — never of the shard that generated them;
2. workers report only class-pure observations plus shrunk findings;
3. the runner folds observations into the coverage map in global
   attempt order at each round barrier, so the next round's profile
   allocation is a pure function of the merged map;
4. findings are deduplicated by shrunk orbit-canonical class, the
   winner chosen by the smallest ``(identity rank, execution key,
   witness rank)`` — an order-free rule.

Hence the findings (and the suite/corpus bytes serialized from them)
are byte-identical for every ``--jobs`` and shard split; only
scheduling-flavored counters (memo hits, runtimes) may differ.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..errors import SynthesisError
from ..mtm import Execution, Program
from ..obs import ProgressReporter, current_registry, current_tracer
from ..orchestrate.shards import ShardSpec, plan_shards
from ..orchestrate.store import (
    KIND_FUZZ_RUN,
    KIND_FUZZ_SHARD,
    SuiteStore,
    identity_key,
)
from ..conformance.runner import execute_shard_tasks
from ..resilience import (
    FailureRecord,
    FaultPlan,
    ResilienceStats,
    RetryPolicy,
)
from .config import FuzzConfig, FuzzStats, fuzz_identity
from .coverage import CoverageMap, class_digest
from .worker import FuzzShardResult, FuzzShardTask, run_fuzz_shard


def fuzz_entry_key(
    config: FuzzConfig,
    kind: str,
    spec: Optional[ShardSpec] = None,
    round_index: Optional[int] = None,
) -> str:
    """The store key for a fuzz run or one of its (round, shard) slices."""
    identity = fuzz_identity(config)
    identity["kind"] = kind
    if round_index is not None:
        identity["round"] = round_index
    if spec is not None:
        identity["shard"] = asdict(spec)
    return identity_key(identity)


@dataclass
class FuzzFinding:
    """One deduplicated, shrunk, §IV-B-minimal discriminating ELT."""

    #: The shrunk program and its representative witness (reference
    #: forbids it, subject permits it, every relaxation is permitted).
    program: Program
    execution: Execution
    #: Orbit-canonical key of the shrunk program (the dedup identity).
    canonical_key: tuple
    #: Short digest of ``canonical_key`` (the corpus file name stem).
    digest: str
    identity_rank: tuple
    execution_key: tuple
    witness_rank: tuple
    violated_axioms: Tuple[str, ...]
    #: Accepted shrink steps for the winning member.
    shrink_steps: int
    #: (round, global attempt index) of the winning member.
    source: Tuple[int, int]
    #: Distinct attempts whose shrink landed in this class.
    occurrences: int = 1


@dataclass
class FuzzRunResult:
    """Merged findings, coverage, and counters for one fuzz run."""

    findings: List[FuzzFinding] = field(default_factory=list)
    coverage: CoverageMap = field(default_factory=CoverageMap)
    stats: FuzzStats = field(default_factory=FuzzStats)
    #: Pair and schedule echo (lets a result serialize standalone).
    reference: str = ""
    subject: str = ""
    seed: int = 0
    bound: int = 0
    jobs: int = 1
    rounds_run: int = 0
    run_cache_hit: bool = False
    shard_cache_hits: int = 0
    shard_cache_misses: int = 0
    #: (round, shard) tasks quarantined after exhausting retries.
    failures: List[FailureRecord] = field(default_factory=list)
    resilience: ResilienceStats = field(default_factory=ResilienceStats)

    @property
    def degraded(self) -> bool:
        return bool(self.failures)


def _merge_round(
    coverage: CoverageMap,
    findings_by_key: Dict[tuple, FuzzFinding],
    round_index: int,
    shards: List[FuzzShardResult],
) -> int:
    """Fold one round's shard results into the coverage map and the
    finding table, in global attempt order (shard-split-invariant).
    Returns the round's novelty."""
    records = sorted(
        (record for shard in shards for record in shard.records),
        key=lambda record: record.index,
    )
    novelty = 0
    for record in records:
        novelty += coverage.observe_attempt(
            record.profile, record.digest, record.counts, record.signatures
        )
        shrunk = record.finding
        if shrunk is None:
            continue
        rank = (shrunk.identity_rank, shrunk.execution_key, shrunk.witness_rank)
        incumbent = findings_by_key.get(shrunk.canonical_key)
        if incumbent is None:
            findings_by_key[shrunk.canonical_key] = FuzzFinding(
                program=shrunk.program,
                execution=shrunk.execution,
                canonical_key=shrunk.canonical_key,
                digest=class_digest(shrunk.canonical_key),
                identity_rank=shrunk.identity_rank,
                execution_key=shrunk.execution_key,
                witness_rank=shrunk.witness_rank,
                violated_axioms=shrunk.violated_axioms,
                shrink_steps=shrunk.steps,
                source=(round_index, record.index),
            )
            continue
        incumbent.occurrences += 1
        incumbent_rank = (
            incumbent.identity_rank,
            incumbent.execution_key,
            incumbent.witness_rank,
        )
        # Records arrive in (round, attempt) order, so on rank ties the
        # earliest attempt keeps the finding — min over an order-free
        # total order either way.
        if rank < incumbent_rank:
            incumbent.program = shrunk.program
            incumbent.execution = shrunk.execution
            incumbent.identity_rank = shrunk.identity_rank
            incumbent.execution_key = shrunk.execution_key
            incumbent.witness_rank = shrunk.witness_rank
            incumbent.violated_axioms = shrunk.violated_axioms
            incumbent.shrink_steps = shrunk.steps
            incumbent.source = (round_index, record.index)
    return novelty


def run_fuzz(
    config: FuzzConfig,
    jobs: int = 1,
    shard_count: Optional[int] = None,
    store: Optional[SuiteStore] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
) -> FuzzRunResult:
    """Run one coverage-guided fuzz campaign across ``jobs`` workers."""
    if jobs < 1:
        raise SynthesisError(f"jobs must be positive, got {jobs}")
    started = time.monotonic()

    if store is not None:
        cached = store.get(fuzz_entry_key(config, KIND_FUZZ_RUN))
        if cached is not None:
            cached.run_cache_hit = True
            cached.jobs = jobs
            return cached

    specs = plan_shards(jobs, shard_count=shard_count)
    wall_deadline = (
        None
        if config.time_budget_s is None
        else time.time() + config.time_budget_s
    )
    # (round, shard) slices carry their own deadline and cache under the
    # budget-free identity, like diff shards.
    shard_config = replace(config, time_budget_s=None)

    observe = bool(current_tracer()) or bool(current_registry())
    result = FuzzRunResult(
        reference=config.reference.name,
        subject=config.subject.name,
        seed=config.seed,
        bound=config.bound,
        jobs=jobs,
    )
    coverage = result.coverage
    stats = result.stats
    findings_by_key: Dict[tuple, FuzzFinding] = {}

    for round_index in range(config.rounds):
        allocation = coverage.allocate(config.attempts_per_round)
        round_shards: List[Optional[FuzzShardResult]] = [None] * len(specs)
        pending: List[Tuple[int, FuzzShardTask]] = []
        for index, spec in enumerate(specs):
            cached_shard = (
                store.get(
                    fuzz_entry_key(
                        shard_config, KIND_FUZZ_SHARD, spec, round_index
                    )
                )
                if store is not None
                else None
            )
            if cached_shard is not None:
                round_shards[index] = cached_shard
                result.shard_cache_hits += 1
            else:
                if store is not None:
                    result.shard_cache_misses += 1
                pending.append(
                    (
                        index,
                        FuzzShardTask(
                            config=shard_config,
                            round_index=round_index,
                            allocation=allocation,
                            spec=spec,
                            wall_deadline=wall_deadline,
                            observe=observe,
                            faults=faults,
                        ),
                    )
                )

        progress = ProgressReporter(f"fuzz r{round_index}", len(specs))
        progress.done = len(specs) - len(pending)
        executed, failures, resilience = execute_shard_tasks(
            [task for _index, task in pending],
            jobs,
            worker=run_fuzz_shard,
            progress=progress,
            retry=retry,
        )
        result.resilience = resilience
        result.failures.extend(failures)
        for (index, _task), shard in zip(pending, executed):
            round_shards[index] = shard

        if observe:
            # Reassemble worker observability in deterministic shard order.
            tracer = current_tracer()
            registry = current_registry()
            for shard in round_shards:
                if shard is None:
                    continue
                tracer.adopt(getattr(shard, "spans", None))
                registry.absorb(getattr(shard, "metrics", None))
        if store is not None:
            for index, _task in pending:
                shard = round_shards[index]
                if shard is None or shard.stats.timed_out:
                    continue
                # Spans describe one concrete run and must not replay
                # from cache; the metrics registry is kept.
                payload = (
                    replace(shard, spans=None)
                    if shard.spans is not None
                    else shard
                )
                store.put(
                    fuzz_entry_key(
                        shard_config, KIND_FUZZ_SHARD, shard.spec, round_index
                    ),
                    payload,
                    {
                        "kind": KIND_FUZZ_SHARD,
                        "identity": fuzz_identity(shard_config),
                        "round": round_index,
                        "shard": asdict(shard.spec),
                        "records": len(shard.records),
                        "runtime_s": shard.runtime_s,
                    },
                )

        completed = [shard for shard in round_shards if shard is not None]
        for shard in completed:
            stats.absorb(shard.stats)
        novelty = _merge_round(
            coverage, findings_by_key, round_index, completed
        )
        coverage.finish_round(novelty)
        result.rounds_run = round_index + 1
        if any(shard.stats.timed_out for shard in completed):
            stats.timed_out = True
            break

    stats.degraded = stats.degraded or result.degraded
    result.findings = sorted(
        findings_by_key.values(),
        key=lambda finding: (
            finding.identity_rank,
            finding.execution_key,
            finding.witness_rank,
        ),
    )
    stats.findings = len(result.findings)
    stats.novel_classes = coverage.class_count
    stats.novel_behaviors = coverage.behavior_count
    stats.runtime_s = time.monotonic() - started
    current_registry().inc(
        "fuzz.findings", stats.findings, informational=True
    )

    if store is not None and not (stats.timed_out or stats.degraded):
        store.put(
            fuzz_entry_key(config, KIND_FUZZ_RUN),
            result,
            {
                "kind": KIND_FUZZ_RUN,
                "identity": fuzz_identity(config),
                "findings": stats.findings,
                "classes": coverage.class_count,
                "behaviors": coverage.behavior_count,
                "runtime_s": stats.runtime_s,
            },
        )
    return result

"""Symmetry-aware enumeration: groups, orbits, and SAT-level breaking.

TransForm's search space is riddled with symmetries — permutations of
structurally identical threads, virtual/physical address renamings, and
interchangeable ghost slots — and the cheapest place to break them is
*before* work happens, not after decoding (cf. Akgün, Hoffmann & Sarkar,
"Memory Consistency Models using Constraints").  This package is the one
home for that machinery, layered bottom-up:

* :func:`program_symmetry` (:mod:`.groups`) computes a program's
  symmetry facts in one pass over thread permutations: its canonical
  class key, its identity-arrangement rank (the deterministic
  representative order used by orbit-level dedup), and its automorphism
  group as concrete event bijections;
* :func:`witness_sort_key`, :func:`witness_orbit` and
  :func:`prune_weighted` (:mod:`.witnesses`) quotient a program's
  candidate-execution stream by its automorphism group: one
  deterministic representative per orbit, tagged with the orbit size so
  weighted counters reproduce the full enumeration's numbers exactly;
* :func:`witness_relation_permutation` (:mod:`.lex`) turns an
  automorphism into the tuple permutation
  :meth:`repro.relational.Problem.add_symmetry` compiles into static
  lex-leader clauses — so the CDCL enumeration never *visits* the
  pruned orbit members in the first place.

The synthesis engine (:func:`repro.synth.run_pipeline`) and the
differential pipeline (:func:`repro.conformance.run_multi_diff_pipeline`)
consume all three layers behind ``SynthesisConfig.symmetry`` (default
on); ``--no-symmetry`` is the differential oracle that runs the same
pipelines unpruned.  Canonical suite bytes and conformance matrices are
identical either way — the representative tie-breaks are defined in
terms of :func:`witness_sort_key`, the same total order the lex-leader
clauses enforce.
"""

from .groups import ProgramSymmetry, execution_key_via, program_symmetry
from .lex import witness_relation_permutation
from .witnesses import (
    apply_automorphism,
    prune_weighted,
    witness_orbit,
    witness_sort_key,
)

__all__ = [
    "ProgramSymmetry",
    "apply_automorphism",
    "execution_key_via",
    "program_symmetry",
    "prune_weighted",
    "witness_orbit",
    "witness_relation_permutation",
    "witness_sort_key",
]

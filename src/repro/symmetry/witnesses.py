"""Witness orbits: deterministic representatives and exact weights.

For a program with automorphism group *G*, the candidate executions fall
into *G*-orbits of isomorphic witnesses.  This module quotients a witness
stream by those orbits:

* :func:`witness_sort_key` is the one concrete total order everything
  agrees on — the witness's edge sets split and sorted in SAT variable
  allocation order (``rf_pte``, ``rf_data``, ``co``, ``co_pa``).  The
  orbit representative is the key-minimal member; the lex-leader clauses
  of :meth:`repro.relational.Problem.add_symmetry` keep exactly that
  member in-solver, and the pipelines' representative tie-breaks reuse
  the same order so pruning can never change which bytes are emitted.
* :func:`prune_weighted` filters a stream of executions down to orbit
  representatives, each tagged with its orbit size.  Weighted counters
  therefore reproduce the unpruned enumeration's numbers exactly —
  the invariance the ``--no-symmetry`` differential oracle checks.

The weights are exact because the automorphism list is the full group
minus the identity (:func:`repro.symmetry.program_symmetry` tests every
thread permutation), so the image set *is* the orbit: |orbit| = |G| /
|stabilizer| falls out of plain set construction.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from ..mtm import EventKind, Execution, Program

Edge = Tuple[str, str]
WitnessKey = tuple


def witness_sort_key(
    program: Program,
    rf: Iterable[Edge],
    co: Iterable[Edge],
    co_pa: Iterable[Edge],
) -> WitnessKey:
    """The canonical concrete order on one program's witnesses.

    ``rf`` is split back into its PTE part (edges into page-table walks)
    and its data part (edges into reads) because that is how the SAT
    encoding declares — and therefore allocates variables for — the
    witness relations; within each block, tuples sort ascending, matching
    variable allocation order.  Comparing two witnesses by this key is
    exactly comparing their characteristic vectors laid out in allocation
    order with the *first difference deciding and presence winning* —
    the order the lex-leader clauses enforce in-solver.
    """
    events = program.events
    rf_pte: list[Edge] = []
    rf_data: list[Edge] = []
    for edge in rf:
        if events[edge[1]].kind is EventKind.PT_WALK:
            rf_pte.append(edge)
        else:
            rf_data.append(edge)
    return (
        tuple(sorted(rf_pte)),
        tuple(sorted(rf_data)),
        tuple(sorted(co)),
        tuple(sorted(co_pa)),
    )


def apply_automorphism(
    auto: dict, rf: frozenset, co: frozenset, co_pa: frozenset
) -> tuple[frozenset, frozenset, frozenset]:
    """Map a witness's edge sets through one event bijection."""
    return (
        frozenset((auto[a], auto[b]) for a, b in rf),
        frozenset((auto[a], auto[b]) for a, b in co),
        frozenset((auto[a], auto[b]) for a, b in co_pa),
    )


def witness_orbit(
    program: Program,
    automorphisms: Iterable[dict],
    rf: frozenset,
    co: frozenset,
    co_pa: frozenset,
) -> tuple[int, bool]:
    """(orbit size, is this member the orbit's representative?).

    The representative is the member with the smallest
    :func:`witness_sort_key`.  Exactness relies on ``automorphisms``
    being the full group minus the identity.
    """
    own_key = witness_sort_key(program, rf, co, co_pa)
    images = {own_key}
    minimal = True
    for auto in automorphisms:
        image = apply_automorphism(auto, rf, co, co_pa)
        key = witness_sort_key(program, *image)
        images.add(key)
        if key < own_key:
            minimal = False
    return len(images), minimal


def prune_weighted(
    program: Program,
    automorphisms: tuple,
    executions: Iterable[Execution],
) -> Iterator[tuple[Execution, int]]:
    """Quotient an execution stream by the automorphism group.

    Yields ``(execution, weight)`` pairs: one representative per orbit
    (the :func:`witness_sort_key`-minimal member), weighted by orbit
    size.  With an empty group this is the identity stream at weight 1.
    The stream must be orbit-closed — true for the SAT enumeration (the
    solution space is automorphism-invariant) and for the explicit
    enumerator on ``co_pa``-trivial programs (the only ones
    :attr:`~repro.symmetry.ProgramSymmetry.prunable` admits).

    Idempotent over already-pruned streams: a lex-leader-constrained SAT
    enumeration yields only representatives, which this filter passes
    through while attaching their exact weights — so in-solver breaking
    is purely an optimization, never a correctness dependency.
    """
    if not automorphisms:
        for execution in executions:
            yield execution, 1
        return
    for execution in executions:
        size, minimal = witness_orbit(
            program,
            automorphisms,
            execution._rf,
            execution.co,
            execution.co_pa,
        )
        if minimal:
            yield execution, size

"""Bridging automorphisms to SAT-level lex-leader breaking.

:func:`witness_relation_permutation` turns one program automorphism (a
concrete event bijection) into the relation-tuple permutation that
:meth:`repro.relational.Problem.add_symmetry` compiles into static
lex-leader clauses.  Only the *free* witness relations participate —
``rf_pte``, ``rf_data``, ``co``, ``co_pa`` — because the fixed structural
relations are constants the automorphism maps onto themselves by
definition (that is what makes it an automorphism).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

Edge = Tuple[str, str]


def witness_relation_permutation(
    auto: dict, uppers: Dict[str, Iterable[Edge]]
) -> Dict[str, Dict[Edge, Edge]]:
    """The tuple permutation one automorphism induces on the free witness
    relations.

    ``uppers`` maps each free relation name to its upper-bound edge list;
    every edge maps to its image under the event bijection.  A genuine
    automorphism permutes each upper bound onto itself, which
    :meth:`~repro.relational.Problem.add_symmetry` re-checks at
    registration time.
    """
    out: Dict[str, Dict[Edge, Edge]] = {}
    for name, edges in uppers.items():
        mapping = {(a, b): (auto[a], auto[b]) for a, b in edges}
        if mapping:
            out[name] = mapping
    return out

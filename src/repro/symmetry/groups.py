"""Program symmetry groups: automorphisms and canonical ranks.

A thread-permutation *automorphism* of an ELT program is a bijection of
its events that maps thread ``k`` onto thread ``π(k)`` slot by slot while
preserving every piece of structure the witness space can see: event
kinds, program order, ghost attachment, remap/rmw pairing, VA equality
classes, and PA equality classes (including the initial mapping).  Two
candidate executions related by an automorphism are isomorphic — same
canonical key, same verdict under every memory model — so enumerating
both is pure waste.

:func:`program_symmetry` derives everything from the canonicalization
machinery in :mod:`repro.synth.canon`: serializing the program under a
thread permutation produces the same token stream as the identity
serialization *iff* that permutation induces an automorphism, and the
two serializations' event-index maps compose into the concrete event
bijection.  The same pass yields the canonical class key (minimum over
all permutations) and the identity-arrangement key, which doubles as the
deterministic *rank* orbit-level dedup uses to pick one representative
program per isomorphism class no matter which class members a
configuration happens to enumerate.

``co_pa`` caveat: witness-orbit pruning (and the lex-leader clauses built
from these automorphisms) additionally requires the program's ``co_pa``
space to be trivial — no two PTE writes sharing a target PA — because the
explicit backend enumerates only a canonical ``co_pa`` completion, which
is not automorphism-closed.  :attr:`ProgramSymmetry.prunable` folds that
check in; programs failing it still get orbit-level (program) dedup, just
not witness-level pruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Optional

from ..mtm import EventKind, Program
from ..synth.canon import ProgramKey, _serialize


@dataclass(frozen=True)
class ProgramSymmetry:
    """One program's symmetry facts, computed in a single pass."""

    #: Serialization under the identity thread order — the deterministic
    #: rank used to pick one representative per isomorphism class (the
    #: generation-time canonical arrangement is exactly the generable
    #: member with the smallest identity key).
    identity_key: ProgramKey
    #: Minimum serialization over all thread permutations — the class
    #: key, equal to :func:`repro.synth.canon.canonical_program_key`.
    canonical_key: ProgramKey
    #: Non-identity automorphisms as concrete eid bijections.  Because
    #: every thread permutation is tested, this is the full group minus
    #: the identity (closed under composition by construction).
    automorphisms: tuple[dict, ...]
    #: The eid→scan-index maps of exactly the permutations whose
    #: serialization achieves ``canonical_key`` (one per member of the
    #: automorphism group).  Canonical *execution* keys lexicographically
    #: lead with the program key, so only these permutations can realize
    #: the minimum — :func:`execution_key_via` exploits that to
    #: canonicalize each witness with |G| index lookups instead of n!
    #: fresh serializations.
    canonical_index_maps: tuple[dict, ...] = ()
    #: False when the program's ``co_pa`` space is non-trivial (two PTE
    #: writes share a target PA) — witness-orbit pruning must stand down
    #: there; see the module docstring.
    co_pa_trivial: bool = True
    #: Whether the identity arrangement is the canonical one *among the
    #: arrangements the generator can emit* (exactly
    #: :func:`repro.synth.canon.is_canonical_thread_order`) — the
    #: generation-time pruning verdict, extracted from the same
    #: serialization pass so the generator and the engine split one
    #: computation.
    arrangement_canonical: bool = True

    @property
    def prunable(self) -> bool:
        """Whether witness-orbit pruning (and lex-leader breaking) may be
        applied to this program's candidate enumeration."""
        return bool(self.automorphisms) and self.co_pa_trivial


def execution_key_via(symmetry: ProgramSymmetry, execution) -> tuple:
    """:func:`repro.synth.canon.canonical_execution_key`, computed from a
    precomputed :class:`ProgramSymmetry` instead of fresh serializations.

    The canonical execution key is the minimum over thread permutations
    of ``(program serialization, witness edge indices)``; the first
    component dominates the lexicographic comparison, so only the
    permutations achieving the canonical *program* key — whose index
    maps ``program_symmetry`` already extracted — can realize the
    minimum.  For the typical asymmetric program that is a single map,
    turning per-witness canonicalization from O(n! · serialize) into one
    pass over the witness edges.  Exactly equal to the from-scratch key
    by construction.
    """
    best = None
    for index in symmetry.canonical_index_maps:
        witness = (
            tuple(sorted((index[a], index[b]) for a, b in execution._rf)),
            tuple(sorted((index[a], index[b]) for a, b in execution.co)),
            tuple(sorted((index[a], index[b]) for a, b in execution.co_pa)),
        )
        if best is None or witness < best:
            best = witness
    return (symmetry.canonical_key, best)


def _co_pa_trivial(program: Program) -> bool:
    seen: set[Optional[str]] = set()
    for event in program.events.values():
        if event.kind is EventKind.PTE_WRITE:
            if event.pa in seen:
                return False
            seen.add(event.pa)
    return True


def program_symmetry(program: Program) -> ProgramSymmetry:
    """Compute :class:`ProgramSymmetry` for one program (memoized on the
    program object — generation-time pruning and the engine pipelines
    both need it, and one serialization pass serves both).

    Cost is one canonical serialization per thread permutation — the
    same work :func:`~repro.synth.canon.canonical_program_key` already
    performs, reused here to also extract the automorphism group: when
    ``serialize(P, π) == serialize(P, identity)``, the event at identity
    scan position ``i`` maps to the event at ``π``-scan position ``i``,
    and that bijection preserves all structure (the serialization is
    faithful up to isomorphism — the property the canonical-key tests
    pin down).
    """
    cached = program.__dict__.get("_symmetry_memo")
    if cached is not None:
        return cached
    cores = range(program.num_cores)
    identity = tuple(cores)
    identity_key, identity_index, _ = _serialize(program, identity)
    canonical_key = identity_key
    arrangement_canonical = True
    autos: list[dict] = []
    serialized = [(identity_key, identity_index)]
    for perm in permutations(cores):
        if perm == identity:
            continue
        key, index, backward = _serialize(program, perm)
        serialized.append((key, index))
        if key < canonical_key:
            canonical_key = key
        if backward and key < identity_key:
            # A generable arrangement serializes smaller: the identity
            # arrangement is not the generation-time canonical member.
            arrangement_canonical = False
        if key == identity_key:
            by_position = {i: eid for eid, i in index.items()}
            autos.append(
                {eid: by_position[i] for eid, i in identity_index.items()}
            )
    symmetry = ProgramSymmetry(
        identity_key=identity_key,
        canonical_key=canonical_key,
        automorphisms=tuple(autos),
        canonical_index_maps=tuple(
            index for key, index in serialized if key == canonical_key
        ),
        co_pa_trivial=_co_pa_trivial(program),
        arrangement_canonical=arrangement_canonical,
    )
    object.__setattr__(program, "_symmetry_memo", symmetry)
    return symmetry

"""Canonical forms for ELT programs and executions (§IV-C deduplication).

Two ELT programs are duplicates when one maps onto the other under

* a permutation of threads (cores are interchangeable),
* a renaming of virtual addresses,
* a renaming of physical addresses (consistent with the initial mapping),
* a renaming of event ids preserving all structure.

The canonical key serializes a program under every thread permutation with
first-use VA/PA naming and keeps the lexicographically smallest form; the
engine uses the same machinery both for *output* dedup and as generation-
time symmetry reduction (the optimization the paper credits with making
10+-instruction bounds practical, Fig 9b discussion).

Three consumers share the serialization core:

* :func:`canonical_program_key` / :func:`canonical_execution_key` — the
  class keys the pipelines deduplicate on;
* :func:`identity_program_key` — the fixed-arrangement serialization,
  used as the deterministic *rank* that picks one representative program
  per isomorphism class (generation-time pruning keeps exactly the
  generable member with the smallest identity key, and the orbit-level
  dedup in :func:`repro.synth.run_pipeline` re-derives that choice when
  pruning is ablated);
* :func:`repro.symmetry.program_symmetry` — reuses ``_serialize``'s
  per-permutation index maps to extract automorphism groups alongside
  both keys in one pass.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Optional

from ..mtm import EventKind, Execution, Program

Token = tuple
ProgramKey = tuple
ExecutionKey = tuple

# Stable kind order for ghosts within one parent.
_GHOST_ORDER = {EventKind.DIRTY_BIT_WRITE: 0, EventKind.PT_WALK: 1}


def _scan_order(program: Program, perm: tuple[int, ...]) -> list[str]:
    """Canonical event order: threads in ``perm`` order, slots in order,
    each parent immediately followed by its ghosts (Wdb before walk)."""
    order: list[str] = []
    for core in perm:
        for eid in program.threads[core]:
            order.append(eid)
            ghosts = sorted(
                program.ghosts.get(eid, ()),
                key=lambda g: _GHOST_ORDER[program.events[g].kind],
            )
            order.extend(ghosts)
    return order


def _serialize(
    program: Program, perm: tuple[int, ...]
) -> tuple[ProgramKey, dict[str, int], bool]:
    """Serialize under one thread permutation.

    Returns (key, eid->index, backward_aliases): the flag is False when
    some WPTE alias-target VA is referenced before its first appearance in
    this scan order — an arrangement the skeleton generator never emits
    (it only aliases already-introduced VAs), which the generation-time
    symmetry filter must therefore not compare against.
    """
    events = program.events
    reverse_init = {pa: va for va, pa in program.initial_map.items()}
    va_index: dict[str, int] = {}
    fresh_index: dict[str, int] = {}
    # VAs introduced by generator *specs* (user accesses, WPTE's own VA,
    # spurious INVLPGs) in this scan order.  Remote IPI INVLPGs are
    # inserted by the generator, not generated as specs, so they do not
    # count — the backward-alias flag must mirror the generator exactly.
    spec_introduced: set[str] = set()
    backward = True

    def va_token(va: str) -> int:
        if va not in va_index:
            va_index[va] = len(va_index)
        return va_index[va]

    def pa_token(pa: str) -> Token:
        nonlocal backward
        owner = reverse_init.get(pa)
        if owner is not None:
            if owner not in spec_introduced:
                backward = False
            return ("alias", va_token(owner))
        if pa not in fresh_index:
            fresh_index[pa] = len(fresh_index)
        return ("fresh", fresh_index[pa])

    # Pass 1: global orders for cross-references.
    scan = _scan_order(program, perm)
    eid_to_index = {eid: i for i, eid in enumerate(scan)}
    wpte_order = [
        eid for eid in scan if events[eid].kind is EventKind.PTE_WRITE
    ]
    wpte_index = {eid: i for i, eid in enumerate(wpte_order)}
    remap_of_invlpg = {inv: pte for pte, inv in program.remap}
    rmw_reads = {r for r, _w in program.rmw}
    rmw_writes = {w for _r, w in program.rmw}

    threads_out: list[tuple[Token, ...]] = []
    for core in perm:
        tokens: list[Token] = []
        for eid in program.threads[core]:
            event = events[eid]
            misses = any(
                events[g].kind is EventKind.PT_WALK
                for g in program.ghosts.get(eid, ())
            )
            if event.kind is EventKind.READ:
                spec_introduced.add(event.va)
                tokens.append(
                    ("R", va_token(event.va), misses, eid in rmw_reads)
                )
            elif event.kind is EventKind.WRITE:
                spec_introduced.add(event.va)
                tokens.append(
                    ("W", va_token(event.va), misses, eid in rmw_writes)
                )
            elif event.kind is EventKind.PTE_WRITE:
                spec_introduced.add(event.va)
                tokens.append(
                    ("WPTE", va_token(event.va), pa_token(event.pa))
                )
            elif event.kind is EventKind.INVLPG:
                source = remap_of_invlpg.get(eid)
                # Spurious INVLPGs encode ref -1 (ints keep every key
                # comparable; None would break lexicographic minimization).
                ref = -1 if source is None else wpte_index[source]
                if source is None:
                    spec_introduced.add(event.va)
                tokens.append(("INV", va_token(event.va), ref))
            elif event.kind is EventKind.FENCE:
                tokens.append(("F",))
            elif event.kind is EventKind.TLB_FLUSH:
                tokens.append(("FLUSH",))
            else:  # pragma: no cover - ghosts are not in threads
                raise AssertionError(f"ghost {eid} in thread")
        threads_out.append(tuple(tokens))
    # Empty threads carry no behavior: a reduced 2-core test must match the
    # 1-core synthesized program it collapses to.
    key: ProgramKey = (
        program.mcm_mode,
        tuple(t for t in threads_out if t),
    )
    return key, eid_to_index, backward


def _perms(program: Program) -> Iterable[tuple[int, ...]]:
    return permutations(range(program.num_cores))


def canonical_program_key(program: Program) -> ProgramKey:
    """Lexicographically-least serialization over thread permutations."""
    return min(_serialize(program, perm)[0] for perm in _perms(program))


def identity_program_key(program: Program) -> ProgramKey:
    """Serialization under the identity thread order — a faithful,
    comparable fingerprint of the *concrete* program (two generated
    programs share it iff they are the same program), used to rank class
    members when selecting representatives."""
    return _serialize(program, tuple(range(program.num_cores)))[0]


def canonical_execution_key(execution: Execution) -> ExecutionKey:
    """Canonical key for a candidate execution: program form + witness edges
    under the same renaming (minimized jointly)."""
    program = execution.program
    best: Optional[ExecutionKey] = None
    for perm in _perms(program):
        program_key, index, _backward = _serialize(program, perm)
        witness = (
            tuple(
                sorted((index[a], index[b]) for a, b in execution._rf)
            ),
            tuple(sorted((index[a], index[b]) for a, b in execution.co)),
            tuple(sorted((index[a], index[b]) for a, b in execution.co_pa)),
        )
        key: ExecutionKey = (program_key, witness)
        if best is None or key < best:
            best = key
    assert best is not None
    return best


def is_canonical_thread_order(program: Program) -> bool:
    """Generation-time symmetry filter: keep a program only if the identity
    permutation yields the minimal serialization *among arrangements the
    generator can emit* (backward alias references only).  Comparing
    against non-generable arrangements would drop whole program classes:
    the identity form would lose to a permutation no other generated
    duplicate corresponds to."""
    identity = tuple(range(program.num_cores))
    identity_key = _serialize(program, identity)[0]
    for perm in _perms(program):
        if perm == identity:
            continue
        key, _index, backward = _serialize(program, perm)
        if backward and key < identity_key:
            return False
    return True

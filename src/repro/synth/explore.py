"""Program exploration: every candidate execution of one ELT program,
bucketed by verdict.

This is the checking-direction workflow TransForm enables (§II-B2): given
a program (e.g. parsed from a hand-written .elt file), enumerate its
outcomes under an MTM, so a validation flow knows which outcomes hardware
may exhibit and which must never appear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..models import MemoryModel, Verdict
from ..mtm import Execution, Program
from .witnesses import enumerate_witnesses


@dataclass
class Outcome:
    execution: Execution
    verdict: Verdict


@dataclass
class ProgramExploration:
    """All outcomes of one program under one model."""

    program: Program
    model_name: str
    outcomes: list[Outcome] = field(default_factory=list)
    truncated: bool = False

    @property
    def permitted(self) -> list[Outcome]:
        return [o for o in self.outcomes if o.verdict.permitted]

    @property
    def forbidden(self) -> list[Outcome]:
        return [o for o in self.outcomes if o.verdict.forbidden]

    @property
    def can_violate(self) -> bool:
        """Spanning-set criterion 2 (§IV-B): some outcome is forbidden."""
        return bool(self.forbidden)

    def violated_axiom_histogram(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.forbidden:
            for axiom in outcome.verdict.violated:
                counts[axiom] = counts.get(axiom, 0) + 1
        return counts

    def summary(self) -> str:
        lines = [
            f"{len(self.outcomes)} candidate executions"
            f"{' (truncated)' if self.truncated else ''} under "
            f"{self.model_name}:",
            f"  permitted: {len(self.permitted)}",
            f"  forbidden: {len(self.forbidden)}",
        ]
        for axiom, count in sorted(self.violated_axiom_histogram().items()):
            lines.append(f"    violating {axiom}: {count}")
        return "\n".join(lines)


def explore_program(
    program: Program,
    model: MemoryModel,
    limit: Optional[int] = None,
) -> ProgramExploration:
    """Enumerate and classify every candidate execution of ``program``."""
    exploration = ProgramExploration(program, model.name)
    for index, execution in enumerate(enumerate_witnesses(program)):
        if limit is not None and index >= limit:
            exploration.truncated = True
            break
        exploration.outcomes.append(
            Outcome(execution, model.check(execution))
        )
    return exploration

"""Relaxations and the minimality criterion (§IV-B).

A synthesized ELT execution must be forbidden *and minimal*: under every
possible isolated relaxation the execution must become permitted by the
full transistency predicate.  Relaxations are:

* removal of a **closed event group** — removing a single event drags
  along whatever the placement rules force (§IV-B):

  - a user-facing event takes its ghost instructions with it;
  - a removed walk strands its rf_ptw users, which are removed too
    (recursively) — an access without a translation is not a legal ELT;
  - a PTE write and its remap INVLPGs are removed together (either
    direction); spurious INVLPGs are removable in isolation;

* removal of an **rmw dependency** (footnote 4: the only dependency kind
  evaluated), splitting an atomic RMW into a plain Read and Write.

The relaxed execution keeps every surviving witness edge; reads whose
source vanished read the initial value; coherence orders are re-completed
when the value flow changed (see witnesses.enumerate_witnesses_constrained)
and the relaxation counts as "became permitted" if *some* completion is.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

from ..models import MemoryModel
from ..mtm import EventKind, Execution, Program
from ..mtm.execution import derive_rf_ptw
from .witnesses import enumerate_witnesses_constrained

Pair = tuple[str, str]


def removal_groups(program: Program) -> list[frozenset[str]]:
    """All distinct closed removal groups, seeded at each non-ghost event."""
    rf_ptw = derive_rf_ptw(program)
    users_of_walk: dict[str, set[str]] = {}
    for walk, user in rf_ptw:
        users_of_walk.setdefault(walk, set()).add(user)
    remap_of_pte: dict[str, set[str]] = {}
    pte_of_invlpg: dict[str, str] = {}
    for pte, inv in program.remap:
        remap_of_pte.setdefault(pte, set()).add(inv)
        pte_of_invlpg[inv] = pte

    def close(seed: str) -> frozenset[str]:
        group: set[str] = set()
        queue = [seed]
        while queue:
            eid = queue.pop()
            if eid in group:
                continue
            group.add(eid)
            event = program.events[eid]
            if event.is_user and event.is_memory_event:
                for ghost in program.ghosts.get(eid, ()):
                    queue.append(ghost)
            if event.kind is EventKind.PT_WALK:
                queue.extend(users_of_walk.get(eid, ()))
            if event.kind is EventKind.PTE_WRITE:
                queue.extend(remap_of_pte.get(eid, ()))
            if event.kind is EventKind.INVLPG and eid in pte_of_invlpg:
                queue.append(pte_of_invlpg[eid])
        return frozenset(group)

    groups: set[frozenset[str]] = set()
    for eid, event in program.events.items():
        if event.is_ghost:
            continue  # ghosts are not removable in isolation (§IV-B)
        groups.add(close(eid))
    return sorted(groups, key=lambda g: (len(g), sorted(g)))


def relaxed_program(program: Program, removed: frozenset[str]) -> Program:
    """The program with a closed group removed (threads keep their cores)."""
    surviving = {
        eid: ev for eid, ev in program.events.items() if eid not in removed
    }
    return Program(
        events=surviving,
        threads=tuple(
            tuple(eid for eid in thread if eid not in removed)
            for thread in program.threads
        ),
        ghosts={
            parent: tuple(g for g in ghosts if g not in removed)
            for parent, ghosts in program.ghosts.items()
            if parent not in removed
        },
        remap=frozenset(
            (p, i) for p, i in program.remap if p not in removed and i not in removed
        ),
        rmw=frozenset(
            (r, w) for r, w in program.rmw if r not in removed and w not in removed
        ),
        initial_map=program.initial_map,
        mcm_mode=program.mcm_mode,
    )


def without_rmw_pair(program: Program, pair: Pair) -> Program:
    return Program(
        events=dict(program.events),
        threads=program.threads,
        ghosts=dict(program.ghosts),
        remap=program.remap,
        rmw=frozenset(p for p in program.rmw if p != pair),
        initial_map=program.initial_map,
        mcm_mode=program.mcm_mode,
    )


def _surviving_witness(
    execution: Execution, removed: frozenset[str]
) -> tuple[dict[str, Optional[str]], set[Pair], set[Pair], set[Pair]]:
    """Project the witness onto surviving events.

    Returns (walk_sources, data_rf, co_pairs, co_pa_pairs) where
    walk_sources pins every surviving walk to its surviving source (or the
    initial value if the source was removed).
    """
    program = execution.program
    walk_sources: dict[str, Optional[str]] = {}
    for eid, event in program.events.items():
        if event.kind is EventKind.PT_WALK and eid not in removed:
            source = execution._walk_source.get(eid)
            walk_sources[eid] = source if source not in removed else None
    data_rf = {
        (a, b)
        for a, b in execution._rf
        if a not in removed
        and b not in removed
        and program.events[b].kind is EventKind.READ
    }
    co = {
        (a, b) for a, b in execution.co if a not in removed and b not in removed
    }
    co_pa = {
        (a, b)
        for a, b in execution.co_pa
        if a not in removed and b not in removed
    }
    return walk_sources, data_rf, co, co_pa


def relaxation_becomes_permitted(
    execution: Execution,
    model: MemoryModel,
    removed: frozenset[str] = frozenset(),
    dropped_rmw: Optional[Pair] = None,
) -> bool:
    """Apply one relaxation and check the §IV-B condition: some completion
    of the surviving outcome is permitted by the full predicate."""
    program = execution.program
    if dropped_rmw is not None:
        target = without_rmw_pair(program, dropped_rmw)
    else:
        target = relaxed_program(program, removed)
    if not target.events:
        return True  # the empty execution is trivially permitted
    walk_sources, data_rf, co, co_pa = _surviving_witness(execution, removed)
    for candidate in enumerate_witnesses_constrained(
        target,
        walk_sources=walk_sources,
        data_rf=data_rf,
        co_must=co,
        co_pa_must=co_pa,
    ):
        if model.permits(candidate):
            return True
    return False


def relaxations(program: Program) -> Iterator[tuple[frozenset[str], Optional[Pair]]]:
    """All relaxations of a program as (removed_group, dropped_rmw) pairs
    (exactly one of the two is active per item)."""
    for group in removal_groups(program):
        yield group, None
    for pair in sorted(program.rmw):
        yield frozenset(), pair


def is_minimal(execution: Execution, model: MemoryModel) -> bool:
    """§IV-B minimality: every relaxation yields a permitted execution."""
    for group, dropped in relaxations(execution.program):
        if not relaxation_becomes_permitted(
            execution, model, removed=group, dropped_rmw=dropped
        ):
            return False
    return True


# ----------------------------------------------------------------------
# Cross-run minimality cache (the incremental-session companion)
# ----------------------------------------------------------------------
#: Capacity of the process-level minimality cache (entries are booleans
#: keyed by (model fingerprint, canonical execution key)).
MINIMALITY_CACHE_SIZE = 1 << 16

_MINIMALITY_CACHE: "OrderedDict[tuple, bool]" = OrderedDict()


def model_fingerprint(model: MemoryModel) -> tuple:
    """Semantic identity of a model for process-level caches: its name
    plus each axiom's (name, predicate-function) pair.  Catalog models
    are built from shared module-level :class:`~repro.models.Axiom`
    constants, so re-instantiating one yields the same fingerprint.  The
    predicate *objects* (not their ids) are the keys, so a cache holding
    a fingerprint pins them and a recycled function id can never alias
    two different models."""
    return (
        model.name,
        tuple((a.name, a.predicate) for a in model.axioms),
    )


def cached_is_minimal(
    execution: Execution, model: MemoryModel, execution_key
) -> bool:
    """:func:`is_minimal` through the process-level cache.

    Minimality is invariant under program/witness isomorphism, so the
    verdict is a pure function of (canonical execution key, model) — the
    caller supplies the key it already computed for deduplication.  The
    cache spans runs: per-axiom suites at one bound, sweep points, and
    diff pairs sharing a reference model all hit the same entries.  Used
    by the pipelines only when ``SynthesisConfig.incremental`` is on, so
    the fresh path stays a cache-free differential oracle.
    """
    key = (model_fingerprint(model), execution_key)
    cached = _MINIMALITY_CACHE.get(key)
    if cached is None:
        cached = is_minimal(execution, model)
        _MINIMALITY_CACHE[key] = cached
        while len(_MINIMALITY_CACHE) > MINIMALITY_CACHE_SIZE:
            _MINIMALITY_CACHE.popitem(last=False)
    else:
        _MINIMALITY_CACHE.move_to_end(key)
    return cached


def clear_minimality_cache() -> None:
    _MINIMALITY_CACHE.clear()

"""SAT-backed candidate-execution enumeration — the Alloy-model port.

The paper implements TransForm in Alloy 4.2: the MTM vocabulary and
placement rules are relational constraints, Kodkod compiles them to SAT,
and MiniSat enumerates candidate executions (§IV-C).  This module is that
encoding, expressed in :mod:`repro.relational` and solved by
:mod:`repro.sat`, for a *fixed program*:

* structural relations (po, apo, ghost, remap, rmw, rf_ptw, ptw_source,
  kind sets, initial mappings) are exact bounds;
* witness relations (``rf`` split into PTE/data parts, ``co``, ``co_pa``)
  are free within type-correct bounds, constrained by the placement rules
  (lone sources, per-location total orders, acyclic PTE value flow);
* every derived Table I relation (``fr``, ``sloc``, ``po_loc``, ``rfe``,
  ``com``, ``rf_pa``, ``fr_va``, ``fr_pa``, effective physical addresses)
  is a *defined* relation (:meth:`~repro.relational.Problem.define`): the
  translator substitutes its defining expression's boolean matrix at
  every use instead of allocating tuple variables plus an equality
  constraint, so a memory model's
  :meth:`~repro.models.MemoryModel.formula` applies unchanged while the
  encoding stays a fraction of its former size.

The test suite checks this enumerator agrees exactly with the explicit
Python enumerator (:mod:`repro.synth.witnesses`) — the reproduction's
deepest cross-validation.

Incremental witness sessions
----------------------------

The synthesis and conformance pipelines ask many closely related
questions about the *same* program — "enumerate its candidate
executions", "is any permitted under x86t?", "does any violate axiom A?",
"is any forbidden by the reference but permitted by the subject?".  A
:class:`WitnessSession` answers all of them from **one** relational
translation:

* the placement constraints compile once, into a shared
  :class:`~repro.relational.ProblemSession`;
* every model/axiom constraint is registered as a *constraint group* and
  compiled (lazily, into the same live CNF) under a fresh **activation
  literal** ``a`` via the implication ``¬a ∨ root``; a query is then one
  ``solve(assumptions)`` against the session's persistent CDCL solver,
  asserting ``a`` for each selected group and ``¬a`` for the rest, so
  learned clauses, VSIDS scores, and watch lists carry over between
  queries;
* assumption-scoped enumerations allocate a per-run *tag* assumption;
  their in-place blocking clauses carry ``¬tag`` (assumptions sit on
  decision levels, and blocking negates the decision literals), so
  retiring the tag with the unit ``¬tag`` afterwards **retracts** every
  blocking clause of that run — the retraction rule that keeps the
  persistent solver reusable;
* the one *full* witness enumeration each pipeline needs is served by a
  cold solver over the shared compilation's base-CNF prefix
  (:meth:`~repro.relational.ProblemSession.iter_base_instances`), so its
  execution stream — and therefore every synthesized suite's bytes — is
  bit-identical to the fresh-solver path, and its result is cached on
  the session for replay by later suites and model pairs.

:class:`WitnessSessionCache` shares sessions per program across
``synthesize`` axiom suites, ``sweep`` runs, and ``diff`` pairs within a
process; ``SynthesisConfig.incremental`` (default on) routes the engine
through it, with the fresh path kept as the differential oracle.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Iterator, Optional

from ..errors import SynthesisError
from ..models import MemoryModel
from ..obs import current_registry, current_tracer
from ..sat import SolverStats
from ..symmetry import (
    ProgramSymmetry,
    witness_orbit,
    witness_relation_permutation,
)
from .relax import model_fingerprint
from ..mtm import EventKind, Execution, Program, names
from ..mtm.execution import derive_rf_ptw
from ..relational import (
    Iden,
    Literal,
    Not,
    Problem,
    TupleSet,
    Univ,
    acyclic,
    conj,
    forall,
    no,
    subset,
)
from ..relational.ast import Expr, Rel
from ..relational.instance import Instance

Pair = tuple[str, str]


def _kind_set(program: Program, *kinds: EventKind) -> list[tuple[str]]:
    return [
        (eid,)
        for eid, e in program.events.items()
        if e.kind in kinds
    ]


def _pa_atom(pa: str) -> str:
    return f"PA${pa}"


class WitnessProblem:
    """The relational encoding of a program's witness space.

    ``symmetry`` (a :class:`~repro.symmetry.ProgramSymmetry`, optional)
    registers each program automorphism as a static lex-leader symmetry
    on the free witness relations via
    :meth:`~repro.relational.Problem.add_symmetry` — the CDCL enumeration
    then only visits one witness per automorphism orbit (the
    :func:`~repro.symmetry.witness_sort_key`-minimal member).  Only
    :attr:`~repro.symmetry.ProgramSymmetry.prunable` symmetries are
    applied; callers weighting counters by orbit size should filter the
    decoded stream through :func:`~repro.symmetry.prune_weighted`, which
    doubles as the exactness backstop.
    """

    def __init__(
        self, program: Program, symmetry: Optional[ProgramSymmetry] = None
    ) -> None:
        self.program = program
        self.symmetry = symmetry if symmetry is not None and symmetry.prunable else None
        self.rf_ptw = derive_rf_ptw(program)
        events = program.events
        eids = list(events)
        pas = [_pa_atom(p) for p in program.pas()]
        self.problem = Problem(eids + pas)
        p = self.problem

        # ---- fixed unary sets -----------------------------------------
        def unary(name: str, members: list[tuple[str]]) -> Rel:
            return p.declare(name, 1, upper=members, lower=members)

        self.Read = unary(names.READ, _kind_set(program, EventKind.READ))
        self.Write = unary(names.WRITE, _kind_set(program, EventKind.WRITE))
        self.PteWrite = unary(
            names.PTE_WRITE, _kind_set(program, EventKind.PTE_WRITE)
        )
        self.PtWalk = unary(names.PT_WALK, _kind_set(program, EventKind.PT_WALK))
        self.DirtyBit = unary(
            names.DIRTY_BIT, _kind_set(program, EventKind.DIRTY_BIT_WRITE)
        )
        self.Invlpg = unary(names.INVLPG, _kind_set(program, EventKind.INVLPG))
        self.FenceSet = unary(names.FENCE, _kind_set(program, EventKind.FENCE))
        unary(names.TLB_FLUSH, _kind_set(program, EventKind.TLB_FLUSH))
        user = [
            (eid,)
            for eid, e in events.items()
            if e.is_user and e.is_memory_event
        ]
        self.User = unary(names.USER, user)
        memory = [(eid,) for eid, e in events.items() if e.is_memory_event]
        self.Memory = unary(names.MEMORY, memory)
        write_like = [(eid,) for eid, e in events.items() if e.is_write_like]
        self.WriteLike = unary(names.WRITE_LIKE, write_like)
        read_like = [(eid,) for eid, e in events.items() if e.is_read_like]
        self.ReadLike = unary(names.READ_LIKE, read_like)
        unary(names.EVENT, [(eid,) for eid in eids])
        self.PaSet = unary("PA", [(a,) for a in pas])

        # ---- fixed binary structure -------------------------------------
        def fixed(name: str, pairs) -> Rel:
            pair_list = [tuple(t) for t in pairs]
            return p.declare(name, 2, upper=pair_list, lower=pair_list)

        po_pairs: set[Pair] = set()
        for thread in program.threads:
            for i in range(len(thread)):
                for j in range(i + 1, len(thread)):
                    po_pairs.add((thread[i], thread[j]))
        self.po = fixed(names.PO, po_pairs)

        apo_pairs: set[Pair] = set()
        for a in eids:
            ca, sa = program.position(a)
            for b in eids:
                if a == b:
                    continue
                cb, sb = program.position(b)
                if ca == cb and sa < sb:
                    apo_pairs.add((a, b))
        self.apo = fixed(names.APO, apo_pairs)

        self.ghost = fixed(
            names.GHOST,
            [
                (parent, g)
                for parent, ghosts in program.ghosts.items()
                for g in ghosts
            ],
        )
        self.remap = fixed(names.REMAP, program.remap)
        self.rmw = fixed(names.RMW, program.rmw)
        self.rf_ptw_rel = fixed(names.RF_PTW, self.rf_ptw)
        ptw_source = [
            (program.walk_invoker(w), u)
            for w, u in self.rf_ptw
            if program.walk_invoker(w) != u
        ]
        self.ptw_source = fixed(names.PTW_SOURCE, ptw_source)

        ext = [
            (a, b)
            for a in eids
            for b in eids
            if a != b and events[a].core != events[b].core
        ]
        self.ext = fixed("ext", ext)

        pte_accessors = [eid for eid in eids if events[eid].accesses_pte]
        same_pte = [
            (a, b)
            for a in pte_accessors
            for b in pte_accessors
            if a != b and events[a].va == events[b].va
        ]
        self.same_pte_loc = fixed("same_pte_loc", same_pte)

        va_pte = [
            (u, w)
            for (u,) in user
            for w in eids
            if events[w].kind is EventKind.PTE_WRITE
            and events[w].va == events[u].va
        ]
        self.va_pte = fixed("va_pte", va_pte)

        init_pa = [
            (eid, _pa_atom(program.initial_pa(events[eid].va)))
            for eid in eids
            if events[eid].kind is EventKind.PT_WALK
        ]
        self.init_pa = fixed("init_pa", init_pa)

        pte_target = [
            (eid, _pa_atom(events[eid].pa))
            for eid in eids
            if events[eid].kind is EventKind.PTE_WRITE
        ]
        self.pte_target = fixed("pte_target", pte_target)

        same_target = [
            (a, b)
            for a in eids
            for b in eids
            if a != b
            and events[a].kind is EventKind.PTE_WRITE
            and events[b].kind is EventKind.PTE_WRITE
            and events[a].pa == events[b].pa
        ]
        self.same_target = fixed("same_target", same_target)

        # ---- free witness relations -------------------------------------
        rf_pte_upper = [
            (s, w)
            for s in eids
            for w in eids
            if events[w].kind is EventKind.PT_WALK
            and events[s].kind
            in (EventKind.PTE_WRITE, EventKind.DIRTY_BIT_WRITE)
            and events[s].va == events[w].va
        ]
        self.rf_pte = p.declare("rf_pte", 2, upper=rf_pte_upper)

        rf_data_upper = [
            (w, r)
            for w in eids
            for r in eids
            if events[w].kind is EventKind.WRITE
            and events[r].kind is EventKind.READ
        ]
        self.rf_data = p.declare("rf_data", 2, upper=rf_data_upper)

        co_upper = [
            (a, b)
            for (a,) in write_like
            for (b,) in write_like
            if a != b
            and (
                (events[a].accesses_pte and events[b].accesses_pte
                 and events[a].va == events[b].va)
                or (not events[a].accesses_pte and not events[b].accesses_pte)
            )
        ]
        self.co = p.declare(names.CO, 2, upper=co_upper)
        self.co_pa = p.declare(names.CO_PA, 2, upper=same_target)

        # ---- symmetry breaking over the free witness relations ----------
        if self.symmetry is not None:
            uppers = {
                "rf_pte": rf_pte_upper,
                "rf_data": rf_data_upper,
                names.CO: co_upper,
                names.CO_PA: same_target,
            }
            for auto in self.symmetry.automorphisms:
                p.add_symmetry(witness_relation_permutation(auto, uppers))

        # ---- derived relations (defined by substitution) ----------------
        self._constrain()

    # ------------------------------------------------------------------
    def _constrain(self) -> None:
        p = self.problem
        events = self.program.events

        rf_pte, rf_data, co, co_pa = self.rf_pte, self.rf_data, self.co, self.co_pa

        # Placement: lone rf source per walk and per read.
        p.constrain(
            forall("w", self.PtWalk, lambda w: rf_pte.dot(w).lone())
        )
        p.constrain(
            forall("r", self.Read, lambda r: rf_data.dot(r).lone())
        )

        # PTE value flow: dep(w2 -> w1) iff w2 reads a dirty-bit write whose
        # parent was translated by w1; must be acyclic.
        rf_from_dirty = rf_pte & self.DirtyBit.product(self.PtWalk)
        dep = rf_from_dirty.t().dot(self.ghost.t()).dot(self.rf_ptw_rel.t())
        p.constrain(acyclic(dep))
        dep_star = dep.plus() + Iden()

        # Every derived Table I relation below is *defined*, not declared:
        # the translator substitutes each defining expression's boolean
        # matrix at every use, so no tuple variables or equality
        # constraints are generated for them (the lean Kodkod-style
        # translation).  A memory model's formula still refers to them by
        # name, unchanged.

        # Effective mapping of each walk / user access.
        sourced_walks = Univ().dot(rf_pte)
        unsourced = self.PtWalk - sourced_walks
        if self.program.mcm_mode:
            # No translation machinery: accesses hit their VA's initial PA.
            fixed_user_pa = TupleSet(
                2,
                [
                    (eid, _pa_atom(self.program.initial_pa(e.va)))
                    for eid, e in events.items()
                    if e.is_user and e.is_memory_event and e.va is not None
                ],
            )
            empty = TupleSet.empty(2)
            self.user_pa = p.define("user_pa", 2, Literal(fixed_user_pa))
            self.walk_pa = p.define("walk_pa", 2, Literal(empty))
            self.orig = p.define("orig", 2, Literal(empty))
        else:
            direct = (rf_pte & self.PteWrite.product(self.PtWalk)).t().dot(
                self.pte_target
            )
            init_part = self.init_pa & unsourced.product(self.PaSet)
            self.walk_pa = p.define(
                "walk_pa", 2, dep_star.dot(direct + init_part)
            )
            self.user_pa = p.define(
                "user_pa", 2, self.rf_ptw_rel.t().dot(self.walk_pa)
            )
            # Mapping origin (the PTE write a walk's value descends from).
            orig_direct = (rf_pte & self.PteWrite.product(self.PtWalk)).t()
            self.orig = p.define("orig", 2, dep_star.dot(orig_direct))

        # Same-location: data events sharing an effective PA, or PTE
        # accessors of the same VA.
        data_sloc = self.user_pa.dot(self.user_pa.t()) - Iden()
        self.sloc = p.define(names.SLOC, 2, data_sloc + self.same_pte_loc)
        self.po_loc = p.define(names.PO_LOC, 2, self.apo & self.sloc)

        # rf and its derived forms.
        self.rf = p.define(names.RF, 2, rf_pte + rf_data)
        p.constrain(subset(rf_data, self.sloc))
        self.rfe = p.define(names.RFE, 2, self.rf & self.ext)
        sourced_reads = Univ().dot(self.rf)
        init_reads = self.ReadLike - sourced_reads
        fr_init = init_reads.product(self.WriteLike) & self.sloc
        self.fr = p.define(names.FR, 2, self.rf.t().dot(co) + fr_init)
        self.com = p.define(names.COM, 2, self.rf + co + self.fr)

        # Coherence: strict per-location total order over write-likes.
        ww = self.WriteLike.product(self.WriteLike)
        p.constrain(subset(co, self.sloc & ww))
        p.constrain(no(co & Iden()))
        p.constrain(subset(co.dot(co), co))
        p.constrain(subset((self.sloc & ww) - Iden(), co + co.t()))

        # co_pa: strict total order per target PA, consistent with co.
        p.constrain(no(co_pa & Iden()))
        p.constrain(subset(co_pa.dot(co_pa), co_pa))
        p.constrain(
            subset(Literal(TupleSet.pairs(self._same_target_pairs())), co_pa + co_pa.t())
        )
        p.constrain(no(co_pa & co.t()))

        # rf_pa / fr_va / fr_pa per their Table I definitions.
        user_walk = self.rf_ptw_rel.t()  # user -> its walk
        user_orig = user_walk.dot(self.orig)
        self.rf_pa = p.define(names.RF_PA, 2, user_orig.t())

        user_source = user_walk.dot(rf_pte.t())  # user -> walk's rf source
        unsourced_users = user_walk.dot(unsourced)
        fr_va_expr = (user_source.dot(co) & self.va_pte) + (
            unsourced_users.product(self.PteWrite) & self.va_pte
        )
        self.fr_va = p.define(names.FR_VA, 2, fr_va_expr)

        pa_target_match = self.user_pa.dot(self.pte_target.t())
        origined = Univ().dot(self.orig.t())  # walks with an origin
        unorigined_users = user_walk.dot(self.PtWalk - origined)
        fr_pa_expr = (user_orig.dot(co_pa) & pa_target_match) + (
            unorigined_users.product(self.PteWrite) & pa_target_match
        )
        self.fr_pa = p.define(names.FR_PA, 2, fr_pa_expr)

    def _same_target_pairs(self) -> list[Pair]:
        events = self.program.events
        return [
            (a, b)
            for a in events
            for b in events
            if a != b
            and events[a].kind is EventKind.PTE_WRITE
            and events[b].kind is EventKind.PTE_WRITE
            and events[a].pa == events[b].pa
        ]

    # ------------------------------------------------------------------
    def constrain_model(self, model: MemoryModel, violated: bool) -> None:
        """Require the model predicate to hold (witnesses permitted) or to
        fail (witnesses forbidden)."""
        formula = model.formula()
        self.problem.constrain(Not(formula) if violated else formula)

    def constrain_axiom_violated(self, model: MemoryModel, axiom: str) -> None:
        self.problem.constrain(Not(model.axiom(axiom).formula()))

    @property
    def solver_stats(self):
        """Live :class:`~repro.sat.SolverStats` of the enumerating solver
        (None before enumeration starts)."""
        return self.problem.last_solver_stats

    def executions(self, limit: Optional[int] = None) -> Iterator[Execution]:
        """Decode SAT instances back into Execution objects.

        Enumeration order is deterministic: the CDCL search is fully
        deterministic, so a given program always yields the same witness
        sequence — which keeps SAT-backed synthesis byte-identical across
        runs and ``--jobs`` settings.
        """
        seen: set[tuple] = set()
        for instance in self.problem.iter_instances():
            witness = self._decode(instance)
            if witness in seen:
                continue
            seen.add(witness)
            rf, co, co_pa = witness
            yield Execution(self.program, rf=rf, co=co, co_pa=co_pa)
            if limit is not None and len(seen) >= limit:
                return

    def _decode(self, instance: Instance) -> tuple:
        rf = frozenset(
            instance.relation("rf_pte").tuples
            | instance.relation("rf_data").tuples
        )
        co = frozenset(instance.relation(names.CO).tuples)
        co_pa = frozenset(instance.relation(names.CO_PA).tuples)
        return (rf, co, co_pa)


def program_identity_key(program: Program) -> tuple:
    """An exact structural identity for a program (NOT the canonical
    class key: isomorphic programs with different event ids have
    different witness streams and must not share sessions)."""
    return (
        tuple(
            sorted(
                (e.eid, e.kind.value, e.core, e.va, e.pa)
                for e in program.events.values()
            )
        ),
        program.threads,
        tuple(sorted(program.ghosts.items())),
        tuple(sorted(program.remap)),
        tuple(sorted(program.rmw)),
        tuple(sorted(program.initial_map.items())),
        program.mcm_mode,
    )


class WitnessSession:
    """One program's witness space, translated once and queried many times.

    See the module docstring for the encoding.  The session serves two
    kinds of work:

    * :meth:`witnesses` — the full candidate-execution list (what the
      pipelines consume), enumerated once on a cold solver over the
      shared compilation (bit-identical to the fresh path) and cached;
    * assumption-scoped queries (:meth:`has_witness`,
      :meth:`query_executions`, :meth:`has_discriminating_witness`) —
      model/axiom constraints as activation-literal groups against the
      persistent solver.

    ``stats`` carries the session-layer counters (`sessions`,
    `translations`, `incremental_solves`, `retained_learned_clauses`);
    ``enum_stats`` snapshots the full enumeration's solver counters for
    cache-warmth-independent reporting.
    """

    def __init__(
        self, program: Program, symmetry: Optional[ProgramSymmetry] = None
    ) -> None:
        self.program = program
        self.symmetry = (
            symmetry if symmetry is not None and symmetry.prunable else None
        )
        started = time.perf_counter()
        with current_tracer().span(
            "translate", category="sat", events=len(program.events)
        ):
            self.problem: Optional[WitnessProblem] = WitnessProblem(
                program, symmetry=self.symmetry
            )
            self._psession = self.problem.problem.session()
        self.translate_s = time.perf_counter() - started
        self.stats = SolverStats()
        self.stats.sessions = 1
        self.stats.translations = 1
        #: Cached ``(execution, orbit weight)`` pairs, in enumeration order.
        self._witnesses: Optional[list[tuple[Execution, int]]] = None
        #: Cached unweighted view of the same list (:meth:`witnesses`).
        self._plain_witnesses: Optional[list[Execution]] = None
        #: model/axiom fingerprint -> registered group name.
        self._groups: dict[tuple, str] = {}
        #: Counter snapshot of the (cold) full-enumeration solver, kept
        #: so replays report the work the enumeration *represents*.
        self.enum_stats: Optional[SolverStats] = None
        self.solve_s = 0.0
        self.decode_s = 0.0

    # -- the full enumeration (pipeline path) ---------------------------
    def weighted_witnesses(self) -> list[tuple[Execution, int]]:
        """The program's deduplicated candidate executions with their
        orbit weights, in the exact order the fresh-solver path yields
        them; enumerated once, then replayed from cache.

        Without symmetry every weight is 1.  With it, the lex-leader
        clauses already keep the enumeration to orbit representatives;
        the decode-side orbit check re-verifies that and attaches each
        representative's exact orbit size, so weighted counters
        reproduce the unpruned enumeration's totals.  ``enum_stats``
        snapshots the enumerating solver's counters — replays re-report
        the same snapshot, so the deterministic counter totals of a run
        are identical whether its witnesses came from live solving or
        from cache."""
        if self._witnesses is None:
            tracer = current_tracer()
            span = tracer.begin("enumerate", category="sat") if tracer else None
            try:
                psession = self._ensure_psession()
                decode = self.problem._decode
                program = self.program
                autos = (
                    self.symmetry.automorphisms
                    if self.symmetry is not None
                    else ()
                )
                seen: set[tuple] = set()
                out: list[tuple[Execution, int]] = []
                iterator = psession.iter_base_instances()
                clock = time.perf_counter
                while True:
                    started = clock()
                    instance = next(iterator, None)
                    self.solve_s += clock() - started
                    if instance is None:
                        break
                    started = clock()
                    witness = decode(instance)
                    if witness not in seen:
                        seen.add(witness)
                        rf, co, co_pa = witness
                        weight = 1
                        keep = True
                        if autos:
                            weight, keep = witness_orbit(
                                program, autos, rf, co, co_pa
                            )
                        if keep:
                            out.append(
                                (
                                    Execution(program, rf=rf, co=co, co_pa=co_pa),
                                    weight,
                                )
                            )
                    self.decode_s += clock() - started
                self._witnesses = out
                self.enum_stats = self.problem.problem.last_solver_stats
                if span is not None:
                    span.args["witnesses"] = len(out)
                    if self.enum_stats is not None:
                        span.args["conflicts"] = self.enum_stats.conflicts
            finally:
                tracer.end(span)
        return self._witnesses

    def witnesses(self) -> list[Execution]:
        """The execution list alone (weights dropped) — the historical
        surface, unchanged for sessions built without symmetry.  The
        list is cached alongside the weighted one, so replays hand back
        the very same object."""
        if self._plain_witnesses is None:
            self._plain_witnesses = [
                execution for execution, _ in self.weighted_witnesses()
            ]
        return self._plain_witnesses

    def release_problem(self) -> None:
        """Drop the translation and solver, keeping the cached witness
        list (the memory-lean state the pipeline cache puts sessions in
        once their enumeration is done).  A later query transparently
        re-translates — and counts the translation."""
        self.problem = None
        self._psession = None
        self._groups = {}

    def _ensure_psession(self):
        if self._psession is None:
            started = time.perf_counter()
            with current_tracer().span(
                "translate", category="sat", retranslation=True
            ):
                self.problem = WitnessProblem(
                    self.program, symmetry=self.symmetry
                )
                self._psession = self.problem.problem.session()
            self.translate_s += time.perf_counter() - started
            self.stats.translations += 1
        return self._psession

    # -- constraint groups ----------------------------------------------
    def _group_for(
        self,
        model: MemoryModel,
        violated_axiom: Optional[str] = None,
        violated: bool = False,
    ) -> str:
        """The group name encoding one model/axiom constraint, registering
        (and lazily compiling) it on first use."""
        psession = self._ensure_psession()
        if violated_axiom is not None:
            key = ("axiom", model_fingerprint(model), violated_axiom)
            formula = Not(model.axiom(violated_axiom).formula())
        elif violated:
            key = ("model-violated", model_fingerprint(model))
            formula = Not(model.formula())
        else:
            key = ("model-holds", model_fingerprint(model))
            formula = model.formula()
        name = self._groups.get(key)
        if name is None:
            name = f"g{len(self._groups)}:{key[0]}:{model.name}" + (
                f":{violated_axiom}" if violated_axiom is not None else ""
            )
            psession.add_group(name, [formula])
            self._groups[key] = name
        return name

    def _note_query(self) -> None:
        psession = self._ensure_psession()
        self.stats.incremental_solves += 1
        solver_stats = psession.solver_stats
        if solver_stats is not None and psession._solver is not None:
            self.stats.retained_learned_clauses += psession._solver.learned_count

    # -- assumption-scoped queries --------------------------------------
    def _selection(
        self,
        model: Optional[MemoryModel],
        violated_axiom: Optional[str],
        violated: bool,
    ) -> list[str]:
        if model is None:
            if violated_axiom is not None or violated:
                raise SynthesisError(
                    "violated_axiom/violated need a model to apply to"
                )
            return []
        return [self._group_for(model, violated_axiom, violated)]

    def has_witness(
        self,
        model: Optional[MemoryModel] = None,
        violated_axiom: Optional[str] = None,
        violated: bool = False,
    ) -> bool:
        """Does any candidate execution satisfy the selection?  (`model`
        alone: permitted by it — or forbidden, with ``violated=True``;
        `model` + `violated_axiom`: violates that axiom.)  One incremental
        solve."""
        groups = self._selection(model, violated_axiom, violated)
        self._note_query()
        return self._ensure_psession().solve(groups=groups) is not None

    def has_discriminating_witness(
        self, reference: MemoryModel, subject: MemoryModel
    ) -> bool:
        """Does any candidate execution witness ``reference`` forbidding
        what ``subject`` permits?  One incremental solve under two
        activation literals."""
        groups = [
            self._group_for(reference, violated=True),
            self._group_for(subject, violated=False),
        ]
        self._note_query()
        return self._ensure_psession().solve(groups=groups) is not None

    def query_executions(
        self,
        model: Optional[MemoryModel] = None,
        violated_axiom: Optional[str] = None,
        violated: bool = False,
        limit: Optional[int] = None,
    ) -> list[Execution]:
        """Decode the executions satisfying the selection, via an
        assumption-scoped enumeration whose blocking clauses retract when
        it finishes (the session stays reusable)."""
        groups = self._selection(model, violated_axiom, violated)
        psession = self._ensure_psession()
        self._note_query()
        decode = self.problem._decode
        seen: set[tuple] = set()
        out: list[Execution] = []
        for instance in psession.iter_instances(groups=groups):
            witness = decode(instance)
            if witness in seen:
                continue
            seen.add(witness)
            rf, co, co_pa = witness
            out.append(Execution(self.program, rf=rf, co=co, co_pa=co_pa))
            if limit is not None and len(out) >= limit:
                break
        return out


#: Default capacity of the process-level session cache (entries are
#: post-enumeration sessions, i.e. a program plus its witness list).
DEFAULT_SESSION_CACHE_SIZE = 4096


class WitnessSessionCache:
    """Process-local LRU of :class:`WitnessSession` per exact program.

    This is what lets one translation serve many suites: consecutive
    per-axiom synthesize runs, sweep points, and diff pairs in the same
    process all map a given program to the same session (and therefore
    the same cached witness list).  With ``keep_problems=False`` (the
    default) a session is shrunk to its witness list once the pipeline's
    full enumeration completes — the compiled CNF and solver of a
    queried-again program are rebuilt transparently.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_SESSION_CACHE_SIZE,
        keep_problems: bool = False,
    ) -> None:
        if max_entries < 1:
            raise SynthesisError(
                f"session cache needs a positive capacity, got {max_entries}"
            )
        self.max_entries = max_entries
        self.keep_problems = keep_problems
        self._entries: "OrderedDict[tuple, WitnessSession]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self,
        program: Program,
        symmetry: Optional[ProgramSymmetry] = None,
    ) -> tuple[WitnessSession, bool]:
        """The session for ``program`` plus whether it was already cached.

        Sessions built with an applied symmetry carry different CNF (the
        lex-leader clauses) and a pruned witness list, so the cache keys
        on the pruning bit alongside the exact program identity."""
        prunable = symmetry is not None and symmetry.prunable
        key = (program_identity_key(program), prunable)
        session = self._entries.get(key)
        if session is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return session, True
        session = WitnessSession(program, symmetry=symmetry)
        self._entries[key] = session
        self.misses += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return session, False

    def weighted_witnesses(
        self,
        program: Program,
        symmetry: Optional[ProgramSymmetry] = None,
        sink: Optional[SolverStats] = None,
        stage_times: Optional[dict] = None,
    ) -> list[tuple[Execution, int]]:
        """The pipeline entry point: cached ``(execution, orbit weight)``
        list for ``program``, with session counters and solver counters
        folded into ``sink``.  The solver counters merged are the
        enumeration's *snapshot* — identical whether this call solved or
        replayed, so a run's deterministic counter totals never depend on
        cache warmth (the translations/avoided counters record the
        actual reuse).  ``stage_times`` receives the translate / solve /
        decode wall-time breakdown of work actually performed by this
        call (replays add nothing)."""
        session = self._serve(program, symmetry, sink, stage_times)
        return session.weighted_witnesses()

    def witnesses(
        self,
        program: Program,
        sink: Optional[SolverStats] = None,
        stage_times: Optional[dict] = None,
    ) -> list[Execution]:
        """Unweighted, symmetry-free variant of
        :meth:`weighted_witnesses` (the historical surface); replays
        hand back the very same list object."""
        session = self._serve(program, None, sink, stage_times)
        return session.witnesses()

    def _serve(
        self,
        program: Program,
        symmetry: Optional[ProgramSymmetry],
        sink: Optional[SolverStats],
        stage_times: Optional[dict],
    ) -> WitnessSession:
        session, cached = self.get(program, symmetry=symmetry)
        if sink is not None:
            if cached:
                sink.translations_avoided += 1
            else:
                sink.sessions += 1
                sink.translations += 1
        fresh = session._witnesses is None
        session.weighted_witnesses()
        if sink is not None and session.enum_stats is not None:
            sink.merge(session.enum_stats)
        registry = current_registry()
        if registry:
            # Histograms follow the snapshot-replay convention the solver
            # counters use: every serve (live or cached) observes the
            # enumeration's snapshot, so the distributions are invariant
            # across --jobs and cache warmth.  The hit/miss counters are
            # the process-shaped remainder — informational by definition.
            registry.inc(
                "cache.session_hits" if cached else "cache.session_misses",
                informational=True,
            )
            snapshot = session.enum_stats
            if snapshot is not None:
                registry.observe("sat.conflicts_per_burst", snapshot.conflicts)
                registry.observe("sat.restarts_per_burst", snapshot.restarts)
                registry.observe(
                    "sat.learned_clauses_per_burst", snapshot.learned_clauses
                )
                registry.observe("sat.decisions_per_burst", snapshot.decisions)
            registry.observe(
                "sat.witnesses_per_session", len(session._witnesses or ())
            )
        if stage_times is not None:
            if not cached:
                stage_times["translate"] = (
                    stage_times.get("translate", 0.0) + session.translate_s
                )
            if fresh:
                stage_times["solve"] = (
                    stage_times.get("solve", 0.0) + session.solve_s
                )
                stage_times["decode"] = (
                    stage_times.get("decode", 0.0) + session.decode_s
                )
        if fresh and not self.keep_problems:
            session.release_problem()
        return session

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_SHARED_SESSION_CACHE: Optional[WitnessSessionCache] = None


def shared_session_cache() -> WitnessSessionCache:
    """The per-process session cache the engine's incremental path uses."""
    global _SHARED_SESSION_CACHE
    if _SHARED_SESSION_CACHE is None:
        _SHARED_SESSION_CACHE = WitnessSessionCache()
    return _SHARED_SESSION_CACHE


def enumerate_witnesses_sat(
    program: Program,
    model: Optional[MemoryModel] = None,
    violated_axiom: Optional[str] = None,
    limit: Optional[int] = None,
    stats=None,
    problem: Optional[WitnessProblem] = None,
    symmetry: Optional[ProgramSymmetry] = None,
) -> Iterator[Execution]:
    """Enumerate a program's candidate executions through the SAT pipeline.

    With ``model`` and ``violated_axiom`` set, only executions violating
    that axiom are produced (the synthesis-interesting subset).

    ``symmetry`` applies static lex-leader breaking (see
    :class:`WitnessProblem`): the stream then contains one witness per
    automorphism orbit; pass it through
    :func:`repro.symmetry.prune_weighted` when orbit weights are needed.
    Ignored when a prebuilt ``problem`` is supplied (its construction
    already decided).

    ``stats``, when given a :class:`~repro.sat.SolverStats`, accumulates
    this enumeration's solver counters into it (merged when the generator
    finishes or is closed) — how the synthesis engine aggregates SAT work
    across every program of a run.

    ``problem`` supplies a prebuilt :class:`WitnessProblem` for the same
    program, for callers that need both the encoding object (bounds
    inspection, solver stats) and its enumeration without translating
    twice.  A reused problem must not have been constrained by a
    previous model query (constraints accumulate on the underlying
    :class:`~repro.relational.Problem`).

    Note the differential pipeline (:mod:`repro.conformance`) does not
    need this hook: it shares the translation between the two models by
    posing a *single* unconstrained query per program and classifying
    the decoded witnesses concretely, so each program is translated and
    solved once — already within its "at most twice" budget.
    """
    translated = problem is None
    encoded = (
        problem
        if problem is not None
        else WitnessProblem(program, symmetry=symmetry)
    )
    if model is not None and violated_axiom is not None:
        encoded.constrain_axiom_violated(model, violated_axiom)
    elif model is not None:
        encoded.constrain_model(model, violated=False)
    try:
        yield from encoded.executions(limit=limit)
    finally:
        if stats is not None:
            if translated:
                stats.translations += 1
            if encoded.solver_stats is not None:
                stats.merge(encoded.solver_stats)

"""Communication-witness enumeration: program -> candidate executions.

For a fixed program, the dynamic degrees of freedom are (§IV-A):

* each PT walk's rf source — the initial PTE value, any same-location PTE
  write, or any same-location dirty-bit write (value forwarding);
* the per-location coherence order over write-like events (PTE locations
  first; data locations after, because walk sources determine effective
  PAs and thus data locations);
* each data read's rf source — a same-PA user Write or the initial value.

``co_pa`` is *not* enumerated: it only feeds ``fr_pa``/``co_pa``, which no
x86t_elt axiom mentions, so executions differing only in alias-creation
order are verdict-equivalent.  A canonical linear extension consistent
with ``co`` is used instead (documented deviation; DESIGN.md).

The constrained variant re-enumerates completions of a *relaxed* witness
for the minimality check (§IV-B): surviving rf edges are kept where still
expressible, dropped reads read the initial value, and partial coherence
orders are completed in every linear extension.

This module is the *explicit* backend of the engine's witness streams
(:func:`repro.synth.engine.witness_stream_factory`); the SAT backend's
incremental witness sessions (:mod:`repro.synth.sat_backend`) enumerate
the same streams through the relational pipeline, translated once per
program and replayed from cache.  Both backends feed the same consumers:
under either one, the fused conformance pipeline
(:func:`repro.conformance.run_multi_diff_pipeline`) iterates a program's
witnesses once for every model pair in flight, and the §IV-B minimality
verdicts computed from :func:`enumerate_witnesses_constrained` are
shared across suites and pairs through the cache in
:mod:`repro.synth.relax`.
"""

from __future__ import annotations

from itertools import permutations, product
from typing import Iterable, Iterator, Mapping, Optional

from ..errors import WellFormednessError
from ..mtm import EventKind, Execution, Program
from ..mtm.execution import derive_rf_ptw, location_of, resolve_pte_values

Pair = tuple[str, str]


def _pte_writers_by_va(program: Program) -> dict[str, list[str]]:
    """PTE-location writers (PTE_WRITE + DIRTY_BIT_WRITE) per VA, in a
    stable program-scan order."""
    out: dict[str, list[str]] = {}
    for eid in _scan(program):
        event = program.events[eid]
        if event.kind in (EventKind.PTE_WRITE, EventKind.DIRTY_BIT_WRITE):
            assert event.va is not None
            out.setdefault(event.va, []).append(eid)
    return out


def _scan(program: Program) -> list[str]:
    order: list[str] = []
    for thread in program.threads:
        for eid in thread:
            order.append(eid)
            order.extend(program.ghosts.get(eid, ()))
    return order


def _walks(program: Program) -> list[str]:
    return [
        eid
        for eid in _scan(program)
        if program.events[eid].kind is EventKind.PT_WALK
    ]


def _linear_extensions(
    items: list[str], base: set[Pair]
) -> Iterator[tuple[str, ...]]:
    """All total orders of ``items`` consistent with ``base`` pairs."""
    for perm in permutations(items):
        index = {eid: i for i, eid in enumerate(perm)}
        if all(index[a] < index[b] for a, b in base if a in index and b in index):
            yield perm


def _order_pairs(sequence: Iterable[str]) -> list[Pair]:
    items = list(sequence)
    return [(items[i], items[i + 1]) for i in range(len(items) - 1)]


def _canonical_co_pa(
    program: Program, co_pairs: set[Pair], must: set[Pair]
) -> Optional[list[Pair]]:
    """One co_pa consistent with co (same-location remaps must agree) and
    with any surviving constraints; None if impossible."""
    by_target: dict[str, list[str]] = {}
    for eid in _scan(program):
        event = program.events[eid]
        if event.kind is EventKind.PTE_WRITE:
            assert event.pa is not None
            by_target.setdefault(event.pa, []).append(eid)
    out: list[Pair] = []
    for _pa, writers in by_target.items():
        if len(writers) < 2:
            continue
        constraints = {
            (a, b)
            for a, b in co_pairs | must
            if a in writers and b in writers
        }
        found = None
        for perm in _linear_extensions(writers, constraints):
            found = perm
            break
        if found is None:
            return None
        out.extend(_order_pairs(found))
    return out


def enumerate_witnesses(program: Program) -> Iterator[Execution]:
    """All candidate executions of a program (up to co_pa equivalence)."""
    yield from enumerate_witnesses_constrained(program)


def enumerate_witnesses_constrained(
    program: Program,
    walk_sources: Optional[Mapping[str, Optional[str]]] = None,
    data_rf: Optional[set[Pair]] = None,
    co_must: Optional[set[Pair]] = None,
    co_pa_must: Optional[set[Pair]] = None,
) -> Iterator[Execution]:
    """Witness enumeration with optional constraints (minimality checks).

    ``walk_sources``: exact source per walk (None value = initial mapping);
    walks not listed default to every choice.
    ``data_rf``: exact surviving data rf edges — edges that are no longer
    same-location are silently dropped (the read takes the initial value).
    ``co_must`` / ``co_pa_must``: pairs every enumerated order must contain.
    """
    co_must = co_must or set()
    co_pa_must = co_pa_must or set()
    rf_ptw = derive_rf_ptw(program)
    pte_writers = _pte_writers_by_va(program)
    walks = _walks(program)

    source_choices: list[list[Optional[str]]] = []
    for walk in walks:
        if walk_sources is not None and walk in walk_sources:
            source_choices.append([walk_sources[walk]])
        else:
            va = program.events[walk].va
            assert va is not None
            source_choices.append([None] + pte_writers.get(va, []))

    for combo in product(*source_choices):
        walk_source = {
            walk: src for walk, src in zip(walks, combo) if src is not None
        }
        try:
            mapping, _origin = resolve_pte_values(program, walk_source, rf_ptw)
        except WellFormednessError:
            continue
        pa_of: dict[str, str] = {}
        if program.mcm_mode:
            for eid, event in program.events.items():
                if event.is_user and event.is_memory_event:
                    assert event.va is not None
                    pa_of[eid] = program.initial_pa(event.va)
        else:
            for walk, user in rf_ptw:
                pa_of[user] = mapping[walk][1]

        # Locations, writers and readers per location.
        writers: dict[tuple[str, str], list[str]] = {}
        readers: dict[str, tuple[str, str]] = {}
        for eid in _scan(program):
            event = program.events[eid]
            loc = location_of(event, pa_of)
            if loc is None:
                continue
            if event.is_write_like:
                writers.setdefault(loc, []).append(eid)
            elif event.kind is EventKind.READ:
                readers[eid] = loc

        pte_rf = [(src, walk) for walk, src in walk_source.items()]

        # Coherence orders: enumerate linear extensions per location.
        # Surviving co constraints whose endpoints no longer share a
        # location (a relaxation changed the value flow) are dropped.
        multi_writer_locs = [
            loc for loc, ws in writers.items() if len(ws) >= 2
        ]
        co_options: list[list[tuple[Pair, ...]]] = []
        for loc in multi_writer_locs:
            constraints = {
                (a, b)
                for a, b in co_must
                if a in writers[loc] and b in writers[loc]
            }
            orders = [
                tuple(_order_pairs(perm))
                for perm in _linear_extensions(writers[loc], constraints)
            ]
            if not orders:
                break
            co_options.append(orders)
        if len(co_options) != len(multi_writer_locs):
            continue  # some co_must constraint is unsatisfiable here

        # Data rf choices per read.
        read_ids = list(readers)
        rf_choices: list[list[Optional[str]]] = []
        if data_rf is not None:
            fixed_source: dict[str, Optional[str]] = {r: None for r in read_ids}
            for src, dst in data_rf:
                if dst in readers and src in writers.get(readers[dst], ()):
                    fixed_source[dst] = src
            rf_choices = [[fixed_source[r]] for r in read_ids]
        else:
            for r in read_ids:
                loc = readers[r]
                user_writers = [
                    w
                    for w in writers.get(loc, ())
                    if program.events[w].kind is EventKind.WRITE
                ]
                rf_choices.append([None] + user_writers)

        for co_combo in product(*co_options):
            co_pairs: set[Pair] = set()
            for pairs in co_combo:
                co_pairs.update(pairs)
            co_pa = _canonical_co_pa(program, co_pairs, set(co_pa_must))
            if co_pa is None:
                continue
            for rf_combo in product(*rf_choices):
                rf = list(pte_rf)
                rf.extend(
                    (src, r)
                    for r, src in zip(read_ids, rf_combo)
                    if src is not None
                )
                try:
                    yield Execution(
                        program, rf=rf, co=co_pairs, co_pa=co_pa
                    )
                except WellFormednessError:
                    continue

"""The TransForm synthesis engine (paper Fig 7 and §IV).

``synthesize`` runs one per-axiom suite at one instruction bound:

1. enumerate well-formed programs (skeletons → remap fan-out → TLB
   choices), with generation-time symmetry reduction;
2. enumerate each program's candidate executions (witnesses);
3. prune to *interesting* executions: at least one write (enforced at the
   program level) that violate the targeted axiom;
4. prune to *minimal* executions (every relaxation becomes permitted);
5. deduplicate into unique ELT programs (canonical forms).

``synthesize_sweep`` reproduces the paper's Fig 9 methodology: for each
axiom, sweep increasing bounds under a time budget (theirs: one week per
run on a server; ours: configurable seconds).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

from ..models import MemoryModel, x86t_elt
from ..mtm import Execution, Program
from .canon import ProgramKey, canonical_execution_key, canonical_program_key
from .config import SynthesisConfig
from .relax import is_minimal
from .skeletons import enumerate_programs
from .witnesses import enumerate_witnesses


@dataclass
class SynthesizedElt:
    """One unique synthesized ELT: a program plus one representative
    forbidden (minimal, interesting) execution."""

    program: Program
    execution: Execution
    key: ProgramKey
    violated_axioms: tuple[str, ...]
    outcome_count: int = 1  # distinct forbidden minimal executions found


@dataclass
class SuiteStats:
    programs_enumerated: int = 0
    executions_enumerated: int = 0
    interesting: int = 0
    minimal: int = 0
    unique_programs: int = 0
    runtime_s: float = 0.0
    timed_out: bool = False


@dataclass
class SuiteResult:
    """Outcome of one per-axiom synthesis run."""

    bound: int
    target_axiom: Optional[str]
    elts: list[SynthesizedElt] = field(default_factory=list)
    stats: SuiteStats = field(default_factory=SuiteStats)

    @property
    def count(self) -> int:
        return len(self.elts)

    def keys(self) -> set[ProgramKey]:
        return {elt.key for elt in self.elts}


def synthesize(config: SynthesisConfig) -> SuiteResult:
    """Run the full Fig 7 pipeline for one (axiom, bound) pair."""
    started = time.monotonic()
    deadline = (
        None
        if config.time_budget_s is None
        else started + config.time_budget_s
    )
    model = config.model
    target = (
        model.axiom(config.target_axiom)
        if config.target_axiom is not None
        else None
    )
    stats = SuiteStats()
    result = SuiteResult(config.bound, config.target_axiom, stats=stats)
    by_key: dict[ProgramKey, SynthesizedElt] = {}
    seen_executions: set = set()

    for program in enumerate_programs(config):
        if deadline is not None and time.monotonic() > deadline:
            stats.timed_out = True
            break
        stats.programs_enumerated += 1
        program_key: Optional[ProgramKey] = None
        for execution in enumerate_witnesses(program):
            stats.executions_enumerated += 1
            if (
                deadline is not None
                and stats.executions_enumerated % 64 == 0
                and time.monotonic() > deadline
            ):
                stats.timed_out = True
                break
            if target is not None:
                if target.holds(execution):
                    continue
            else:
                if model.permits(execution):
                    continue
            stats.interesting += 1
            execution_key = canonical_execution_key(execution)
            if execution_key in seen_executions:
                continue
            seen_executions.add(execution_key)
            if not is_minimal(execution, model):
                continue
            stats.minimal += 1
            if program_key is None:
                program_key = canonical_program_key(program)
            existing = by_key.get(program_key)
            if existing is None:
                verdict = model.check(execution)
                by_key[program_key] = SynthesizedElt(
                    program=program,
                    execution=execution,
                    key=program_key,
                    violated_axioms=verdict.violated,
                )
            else:
                existing.outcome_count += 1
        if deadline is not None and time.monotonic() > deadline:
            stats.timed_out = True
            break

    result.elts = sorted(by_key.values(), key=lambda e: e.key)
    stats.unique_programs = len(result.elts)
    stats.runtime_s = time.monotonic() - started
    return result


@dataclass
class SweepPoint:
    axiom: str
    bound: int
    result: SuiteResult


@dataclass
class SweepResult:
    """A Fig 9-style sweep: per-axiom suites across increasing bounds."""

    points: list[SweepPoint] = field(default_factory=list)

    def counts(self) -> dict[str, dict[int, int]]:
        out: dict[str, dict[int, int]] = {}
        for point in self.points:
            out.setdefault(point.axiom, {})[point.bound] = point.result.count
        return out

    def runtimes(self) -> dict[str, dict[int, float]]:
        out: dict[str, dict[int, float]] = {}
        for point in self.points:
            out.setdefault(point.axiom, {})[point.bound] = (
                point.result.stats.runtime_s
            )
        return out

    def unique_elts(self) -> dict[ProgramKey, SynthesizedElt]:
        """Union of all per-axiom suites, deduplicated (the paper's "140
        unique ELTs across all per-axiom suites")."""
        out: dict[ProgramKey, SynthesizedElt] = {}
        for point in self.points:
            for elt in point.result.elts:
                out.setdefault(elt.key, elt)
        return out


def synthesize_sweep(
    base_config: SynthesisConfig,
    axioms: Optional[list[str]] = None,
    min_bound: int = 4,
    max_bound: Optional[int] = None,
    time_budget_per_run_s: Optional[float] = None,
) -> SweepResult:
    """Per-axiom bound sweep (the §VI methodology).

    For each axiom, bounds increase from ``min_bound``; a run that exceeds
    the time budget marks its suite complete-up-to-timeout and stops the
    sweep for that axiom (mirroring the paper's one-week cutoff).
    """
    model = base_config.model
    if axioms is None:
        axioms = [a.name for a in model.axioms]
    top = max_bound if max_bound is not None else base_config.bound
    sweep = SweepResult()
    for axiom in axioms:
        for bound in range(min_bound, top + 1):
            config = replace(
                base_config,
                bound=bound,
                target_axiom=axiom,
                time_budget_s=time_budget_per_run_s,
            )
            result = synthesize(config)
            sweep.points.append(SweepPoint(axiom, bound, result))
            if result.stats.timed_out:
                break
    return sweep


def default_config(bound: int, **overrides) -> SynthesisConfig:
    """Convenience: an x86t_elt synthesis config at the given bound."""
    return SynthesisConfig(bound=bound, model=x86t_elt(), **overrides)

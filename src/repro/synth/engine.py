"""The TransForm synthesis engine (paper Fig 7 and §IV).

``synthesize`` runs one per-axiom suite at one instruction bound:

1. enumerate well-formed programs (skeletons → remap fan-out → TLB
   choices), with generation-time symmetry reduction;
2. enumerate each program's candidate executions (witnesses) — through
   the backend selected by ``config.witness_backend``: the explicit
   Python enumerator, or the relational SAT pipeline, which under
   ``config.incremental`` (the default) translates each program **once**
   into a process-cached witness session (:mod:`repro.synth.sat_backend`)
   whose execution list is replayed across axiom suites, sweep points,
   and diff pairs;
3. prune to *interesting* executions: at least one write (enforced at the
   program level) that violate the targeted axiom;
4. prune to *minimal* executions (every relaxation becomes permitted);
5. deduplicate into unique ELT programs (canonical forms).

With ``config.symmetry`` (default on), :mod:`repro.symmetry` quotients
the work first: each program's automorphism group prunes its witness
stream to one representative per isomorphism orbit (in-solver, via
lex-leader clauses, on the SAT backend), orbit-size weights keep the
witness-level counters equal to the unpruned enumeration's, and
duplicate isomorphic programs are skipped before translation.  The
``--no-symmetry`` oracle runs the same pipeline unpruned and must
produce byte-identical suites.

``synthesize_sweep`` reproduces the paper's Fig 9 methodology: for each
axiom, sweep increasing bounds under a time budget (theirs: one week per
run on a server; ours: configurable seconds).

The Fig 7 inner loop lives in :func:`run_pipeline`, which consumes an
*ordered* program stream — ``(order_key, program)`` pairs — so that the
serial path and the sharded path (:mod:`repro.orchestrate`) share one
implementation.  Representative selection is order-free: per class the
program with the smallest identity rank wins, and its representative
execution is its (canonical key, witness sort key)-minimal minimal
witness — so suite bytes are invariant across ``--jobs``, witness
backends, ``--fresh-solver``, and ``--no-symmetry``.  Order keys remain
on each entry for reporting and deterministic merges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from ..errors import SolverInterrupted
from ..models import MemoryModel, x86t_elt
from ..mtm import Execution, Program
from ..obs import current_registry, current_tracer
from ..resilience import deadline_scope
from ..sat import resolve_solver_core, solver_preferences
from ..symmetry import (
    execution_key_via,
    program_symmetry,
    prune_weighted,
    witness_sort_key,
)
from .canon import (
    ProgramKey,
    canonical_execution_key,
    canonical_program_key,
    identity_program_key,
)
from .config import SynthesisConfig
from .relax import cached_is_minimal, is_minimal
from .skeletons import enumerate_programs
from .witnesses import enumerate_witnesses


def _uncached_is_minimal(execution, model, execution_key) -> bool:
    """The fresh-path minimality check (same signature as
    :func:`~repro.synth.relax.cached_is_minimal`, no shared state)."""
    return is_minimal(execution, model)

#: Order keys are tuples of ints; comparisons only ever happen between
#: keys produced by the same enumeration scheme.
OrderKey = tuple


@dataclass
class SynthesizedElt:
    """One unique synthesized ELT: a program plus one representative
    forbidden (minimal, interesting) execution.

    The representative is selected order-free: the class member program
    with the smallest identity rank (``rep_rank``), and among its minimal
    forbidden witnesses the one minimizing ``(canonical execution key,
    witness sort key)`` — so the same bytes emerge from any enumeration
    order, shard plan, witness backend, or symmetry setting."""

    program: Program
    execution: Execution
    key: ProgramKey
    violated_axioms: tuple[str, ...]
    outcome_count: int = 1  # distinct forbidden minimal executions found
    #: Canonical key of the representative execution.
    execution_key: tuple = ()
    #: Identity rank of the representative program (class-member tie-break).
    rep_rank: tuple = ()
    #: :func:`repro.symmetry.witness_sort_key` of the representative
    #: execution (witness tie-break within equal canonical keys).
    witness_rank: tuple = ()


@dataclass
class SuiteStats:
    programs_enumerated: int = 0
    executions_enumerated: int = 0
    interesting: int = 0
    minimal: int = 0
    unique_programs: int = 0
    runtime_s: float = 0.0
    timed_out: bool = False
    #: True when shards were quarantined after exhausting retries: the
    #: suite merges everything that completed but is explicitly partial
    #: (never cached; see repro.resilience).  Ored by :meth:`absorb`.
    degraded: bool = False
    # CDCL solver counters, populated when witness_backend == "sat"
    # (summed over every per-program solver; flat ints so shard results
    # pickle and merge trivially).
    sat_decisions: int = 0
    sat_propagations: int = 0
    sat_conflicts: int = 0
    sat_learned_clauses: int = 0
    # Incremental-session counters (witness_backend == "sat" with
    # ``incremental`` on): how many sessions were opened, how many
    # relational-to-CNF translations ran vs were avoided by session
    # reuse, and how much warm-solver state assumption queries reused.
    sat_sessions: int = 0
    sat_translations: int = 0
    sat_translations_avoided: int = 0
    sat_incremental_solves: int = 0
    sat_retained_learned_clauses: int = 0
    # Symmetry counters (``config.symmetry``, :mod:`repro.symmetry`).
    # The witness-level counters above (executions/interesting and the
    # agreement buckets) are orbit-weighted, so they match the unpruned
    # oracle exactly; these record the pruning actually performed.
    #: Programs whose automorphism group admitted witness-orbit pruning.
    symmetric_programs: int = 0
    #: Duplicate isomorphic programs skipped before translation
    #: (orbit-level dedup; non-zero only when generation-time pruning is
    #: ablated or cannot see a duplicate class).
    orbit_replays: int = 0
    #: Witnesses never enumerated/classified because an orbit
    #: representative stood in for them (sum of ``weight - 1``).
    orbit_witnesses_pruned: int = 0
    #: Static lex-leader clauses emitted during relational translation.
    sat_symmetry_clauses: int = 0
    # Inprocessing counters (``config.inprocessing``,
    # :mod:`repro.sat.inprocess`): passes run at solver query boundaries
    # and what they did to the learned databases.
    sat_inprocessings: int = 0
    sat_vivified_clauses: int = 0
    sat_subsumed_clauses: int = 0
    sat_strengthened_clauses: int = 0
    #: Per-stage wall time (seconds) keyed by stage name — translate /
    #: solve / decode / classify / minimality (plus "enumerate" for
    #: witness backends that don't split production stages).  Summed
    #: key-wise across shards; surfaced by ``--profile``.
    stage_times: dict = field(default_factory=dict)
    # Per-pair verdict counters, populated by differential conformance
    # runs (:mod:`repro.conformance`): how many enumerated candidate
    # executions landed in each (reference, subject) agreement bucket.
    # Raw per-witness counts — programs partition across shards, so shard
    # sums equal the serial counts exactly.
    both_permit: int = 0
    both_forbid: int = 0
    only_reference_forbids: int = 0
    only_subject_forbids: int = 0

    #: The additive counters summed by :meth:`absorb` (cross-shard
    #: merging); ``timed_out`` ors, ``unique_programs``/``runtime_s`` are
    #: the merger's responsibility.
    SUMMED_FIELDS = (
        "programs_enumerated",
        "executions_enumerated",
        "interesting",
        "minimal",
        "sat_decisions",
        "sat_propagations",
        "sat_conflicts",
        "sat_learned_clauses",
        "sat_sessions",
        "sat_translations",
        "sat_translations_avoided",
        "sat_incremental_solves",
        "sat_retained_learned_clauses",
        "symmetric_programs",
        "orbit_replays",
        "orbit_witnesses_pruned",
        "sat_symmetry_clauses",
        "sat_inprocessings",
        "sat_vivified_clauses",
        "sat_subsumed_clauses",
        "sat_strengthened_clauses",
        "both_permit",
        "both_forbid",
        "only_reference_forbids",
        "only_subject_forbids",
    )

    def absorb(self, other: "SuiteStats") -> None:
        """Fold another stats record into this one (shard merging)."""
        for name in self.SUMMED_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.timed_out = self.timed_out or other.timed_out
        self.degraded = self.degraded or other.degraded
        for stage, seconds in other.stage_times.items():
            self.stage_times[stage] = self.stage_times.get(stage, 0.0) + seconds

    def absorb_solver(self, solver_stats) -> None:
        """Fold a :class:`~repro.sat.SolverStats` into the suite counters
        (core search counters plus the incremental-session counters the
        session layers maintain on the same object)."""
        self.sat_decisions += solver_stats.decisions
        self.sat_propagations += solver_stats.propagations
        self.sat_conflicts += solver_stats.conflicts
        self.sat_learned_clauses += solver_stats.learned_clauses
        self.sat_sessions += solver_stats.sessions
        self.sat_translations += solver_stats.translations
        self.sat_translations_avoided += solver_stats.translations_avoided
        self.sat_incremental_solves += solver_stats.incremental_solves
        self.sat_retained_learned_clauses += solver_stats.retained_learned_clauses
        self.sat_symmetry_clauses += solver_stats.symmetry_clauses
        self.sat_inprocessings += solver_stats.inprocessings
        self.sat_vivified_clauses += solver_stats.vivified_clauses
        self.sat_subsumed_clauses += solver_stats.subsumed_clauses
        self.sat_strengthened_clauses += solver_stats.strengthened_clauses


@dataclass
class SuiteResult:
    """Outcome of one per-axiom synthesis run."""

    bound: int
    target_axiom: Optional[str]
    elts: list[SynthesizedElt] = field(default_factory=list)
    stats: SuiteStats = field(default_factory=SuiteStats)

    @property
    def count(self) -> int:
        return len(self.elts)

    def keys(self) -> set[ProgramKey]:
        return {elt.key for elt in self.elts}


@dataclass
class PipelineOutcome:
    """Raw product of one :func:`run_pipeline` pass: deduplicated ELTs
    keyed by canonical form, plus the enumeration-order key of the
    representative program behind each entry (for cross-shard merging)."""

    by_key: dict = field(default_factory=dict)
    order: dict = field(default_factory=dict)
    stats: SuiteStats = field(default_factory=SuiteStats)


def witness_stream_factory(config: SynthesisConfig, stage_times=None):
    """The candidate-execution enumerator selected by
    ``config.witness_backend``.

    Returns ``(stream, sat_stats)``: ``stream`` maps a
    :class:`~repro.mtm.Program` — plus its precomputed
    :class:`~repro.symmetry.ProgramSymmetry` (or ``None`` when
    ``config.symmetry`` is off) — to an iterable of ``(execution,
    weight)`` pairs: one representative per automorphism orbit, weighted
    by orbit size (weight 1 everywhere when pruning does not apply).
    ``sat_stats`` is the :class:`~repro.sat.SolverStats` the SAT backend
    accumulates into across every program (``None`` for the explicit
    backend — fold it into a :class:`SuiteStats` via
    :meth:`SuiteStats.absorb_solver` when the run finishes).  Shared by
    the synthesis pipeline and the differential conformance pipeline
    (:mod:`repro.conformance`), so both workloads enumerate candidates
    identically.

    With ``config.incremental`` (the default), the SAT backend routes
    through the process-level :class:`~repro.synth.sat_backend.
    WitnessSessionCache`: each program is translated once into a witness
    session whose (byte-identical) weighted execution list is replayed
    for every later suite or pair that reaches the same program.
    ``stage_times``, when given a dict, receives per-stage wall time
    (translate / solve / decode on the session path; one "enumerate"
    bucket otherwise).
    """
    if config.witness_backend == "sat":
        from ..sat import SolverStats

        sat_stats = SolverStats()
        if config.incremental:
            from .sat_backend import shared_session_cache

            cache = shared_session_cache()

            def witness_stream(program: Program, sym=None):
                return cache.weighted_witnesses(
                    program,
                    symmetry=sym,
                    sink=sat_stats,
                    stage_times=stage_times,
                )

        else:
            from .sat_backend import enumerate_witnesses_sat

            def witness_stream(program: Program, sym=None):
                autos = sym.automorphisms if sym is not None and sym.prunable else ()
                return prune_weighted(
                    program,
                    autos,
                    enumerate_witnesses_sat(
                        program, stats=sat_stats, symmetry=sym
                    ),
                )

        return witness_stream, sat_stats

    def explicit_stream(program: Program, sym=None):
        autos = sym.automorphisms if sym is not None and sym.prunable else ()
        # `enumerate_witnesses` resolved at call time so benchmark
        # monkeypatching of the module global keeps working.
        return prune_weighted(program, autos, enumerate_witnesses(program))

    return explicit_stream, None


def run_pipeline(
    config: SynthesisConfig,
    ordered_programs: Iterable[tuple[OrderKey, Program]],
    deadline: Optional[float] = None,
) -> PipelineOutcome:
    """Stages 2-5 of Fig 7 over an arbitrary ordered program stream.

    With ``config.symmetry``, each program's witness stream arrives
    orbit-pruned and weighted (see :func:`witness_stream_factory`), and
    duplicate isomorphic programs are skipped before translation: the
    orbit cache remembers, per canonical class, the identity rank of the
    member that already did the work this pass plus its weighted witness
    totals, so a later member with a larger rank only replays those
    totals.  A later member with a *smaller* rank still runs in full —
    it must supply the class representative — so suite bytes never
    depend on arrival order.

    ``deadline`` is an absolute ``time.monotonic()`` timestamp; exceeding
    it sets ``stats.timed_out`` and stops cleanly with partial results.
    """
    model = config.model
    target = (
        model.axiom(config.target_axiom)
        if config.target_axiom is not None
        else None
    )
    outcome = PipelineOutcome()
    stats = outcome.stats
    by_key = outcome.by_key
    #: canonical execution key -> minimality verdict (doubles as the
    #: seen-set: a key is present iff its first witness was classified).
    minimal_by_key: dict = {}
    #: canonical program key -> (identity rank, weighted executions,
    #: weighted interesting) of the class member that ran in full.
    orbit_cache: dict = {}
    use_symmetry = config.symmetry
    clock = time.perf_counter
    enumerate_s = classify_s = minimality_s = generate_s = 0.0
    tracer = current_tracer()
    registry = current_registry()

    witness_stream, sat_stats = witness_stream_factory(
        config, stage_times=stats.stage_times
    )
    check_minimal = (
        cached_is_minimal if config.incremental else _uncached_is_minimal
    )

    if registry:
        # Which propagation core serves this run, with "auto" resolved
        # to the concrete core (informational: the cores are
        # lockstep-identical, so nothing deterministic varies).
        registry.inc(
            f"solver.core.{resolve_solver_core(config.solver_core)}",
            informational=True,
        )

    generated = clock()
    # Publish the deadline on the cooperative channel so a stuck SAT
    # query inside one witness step can be interrupted mid-solve
    # (repro.resilience.deadline; the solver polls it on a propagation
    # budget), and scope the solver knobs so every solver built behind
    # the witness stream — sessions, enumeration, minimality checks —
    # picks up the configured core and inprocessing setting.
    with deadline_scope(deadline), solver_preferences(
        core=config.solver_core, inprocess=config.inprocessing
    ):
        for order_key, program in ordered_programs:
            generate_s += clock() - generated
            if deadline is not None and time.monotonic() > deadline:
                stats.timed_out = True
                break
            stats.programs_enumerated += 1
            span = (
                tracer.begin("program", category="pipeline", order=list(order_key))
                if tracer
                else None
            )
            try:
                sym = None
                program_key: Optional[ProgramKey] = None
                if use_symmetry:
                    sym = program_symmetry(program)
                    program_key = sym.canonical_key
                    if sym.prunable:
                        stats.symmetric_programs += 1
                    record = orbit_cache.get(program_key)
                    if record is not None and record[0] < sym.identity_key:
                        # Orbit-level dedup: a class member with a smaller rank
                        # already ran in full this pass; replay its weighted
                        # totals and skip translation/enumeration entirely.
                        stats.orbit_replays += 1
                        stats.executions_enumerated += record[1]
                        stats.interesting += record[2]
                        if span is not None:
                            span.args["orbit_replay"] = True
                        if registry:
                            registry.observe(
                                "pipeline.witnesses_per_program", record[1]
                            )
                        continue
                program_executions = 0
                program_interesting = 0
                new_keys = 0
                witnesses_seen = 0  # unweighted, for the periodic deadline check
                candidate: Optional[tuple] = None  # (exec key, witness rank, execution)
                started = clock()
                iterator = iter(witness_stream(program, sym))
                while True:
                    item = next(iterator, None)
                    enumerate_s += clock() - started
                    if item is None:
                        break
                    execution, weight = item
                    witnesses_seen += 1
                    stats.executions_enumerated += weight
                    program_executions += weight
                    if weight > 1:
                        stats.orbit_witnesses_pruned += weight - 1
                    if (
                        deadline is not None
                        and witnesses_seen % 64 == 0
                        and time.monotonic() > deadline
                    ):
                        stats.timed_out = True
                        break
                    started = clock()
                    if target is not None:
                        interesting = not target.holds(execution)
                    else:
                        interesting = not model.permits(execution)
                    classify_s += clock() - started
                    if not interesting:
                        started = clock()
                        continue
                    stats.interesting += weight
                    program_interesting += weight
                    execution_key = (
                        execution_key_via(sym, execution)
                        if sym is not None
                        else canonical_execution_key(execution)
                    )
                    minimal = minimal_by_key.get(execution_key)
                    if minimal is None:
                        started = clock()
                        minimal = check_minimal(execution, model, execution_key)
                        minimality_s += clock() - started
                        minimal_by_key[execution_key] = minimal
                        if minimal:
                            stats.minimal += 1
                            new_keys += 1
                    if minimal:
                        rank = witness_sort_key(
                            program, execution._rf, execution.co, execution.co_pa
                        )
                        if candidate is None or (execution_key, rank) < candidate[:2]:
                            candidate = (execution_key, rank, execution)
                    started = clock()

                if span is not None:
                    span.args["witnesses"] = program_executions
                    span.args["interesting"] = program_interesting
                if registry:
                    registry.observe(
                        "pipeline.witnesses_per_program", program_executions
                    )
                program_timed_out = (
                    deadline is not None and time.monotonic() > deadline
                )
                if candidate is not None:
                    if program_key is None:
                        program_key = canonical_program_key(program)
                    rep_rank = (
                        sym.identity_key
                        if sym is not None
                        else identity_program_key(program)
                    )
                    execution_key, rank, execution = candidate
                    entry = by_key.get(program_key)
                    if entry is None:
                        by_key[program_key] = SynthesizedElt(
                            program=program,
                            execution=execution,
                            key=program_key,
                            violated_axioms=model.check(execution).violated,
                            outcome_count=new_keys,
                            execution_key=execution_key,
                            rep_rank=rep_rank,
                            witness_rank=rank,
                        )
                        outcome.order[program_key] = order_key
                    else:
                        entry.outcome_count += new_keys
                        if rep_rank < entry.rep_rank:
                            entry.program = program
                            entry.execution = execution
                            entry.violated_axioms = model.check(execution).violated
                            entry.execution_key = execution_key
                            entry.rep_rank = rep_rank
                            entry.witness_rank = rank
                            outcome.order[program_key] = order_key
                if use_symmetry and not program_timed_out and not stats.timed_out:
                    record = orbit_cache.get(program_key)
                    if record is None or sym.identity_key < record[0]:
                        orbit_cache[program_key] = (
                            sym.identity_key,
                            program_executions,
                            program_interesting,
                        )
                if program_timed_out:
                    stats.timed_out = True
                    break
            except SolverInterrupted:
                # The cooperative deadline cut a SAT query short mid-witness;
                # the solver backtracked to level 0 first, so every result up
                # to the previous program stands as a normal partial timeout.
                stats.timed_out = True
                break
            finally:
                tracer.end(span)
                generated = clock()

    if sat_stats is not None:
        stats.absorb_solver(sat_stats)
    times = stats.stage_times
    for stage, seconds in (
        ("generate", generate_s),
        ("enumerate", enumerate_s),
        ("classify", classify_s),
        ("minimality", minimality_s),
    ):
        if seconds:
            times[stage] = times.get(stage, 0.0) + seconds
    return outcome


def finalize_result(
    config: SynthesisConfig, outcome: PipelineOutcome, runtime_s: float
) -> SuiteResult:
    """Package a pipeline outcome as a sorted, counted :class:`SuiteResult`."""
    result = SuiteResult(config.bound, config.target_axiom, stats=outcome.stats)
    result.elts = sorted(outcome.by_key.values(), key=lambda e: e.key)
    outcome.stats.unique_programs = len(result.elts)
    outcome.stats.runtime_s = runtime_s
    return result


def synthesize(config: SynthesisConfig) -> SuiteResult:
    """Run the full Fig 7 pipeline for one (axiom, bound) pair."""
    started = time.monotonic()
    deadline = (
        None
        if config.time_budget_s is None
        else started + config.time_budget_s
    )
    outcome = run_pipeline(
        config,
        (
            ((index,), program)
            for index, program in enumerate(enumerate_programs(config))
        ),
        deadline=deadline,
    )
    return finalize_result(config, outcome, time.monotonic() - started)


@dataclass
class SweepPoint:
    axiom: str
    bound: int
    result: SuiteResult


@dataclass
class SweepResult:
    """A Fig 9-style sweep: per-axiom suites across increasing bounds.

    ``skipped`` records (axiom, bound) pairs the sweep never attempted
    because a lower bound for that axiom exhausted the time budget — the
    partial-coverage report mirroring the paper's one-week cutoff.
    """

    points: list[SweepPoint] = field(default_factory=list)
    skipped: list[tuple[str, int]] = field(default_factory=list)

    def counts(self) -> dict[str, dict[int, int]]:
        out: dict[str, dict[int, int]] = {}
        for point in self.points:
            out.setdefault(point.axiom, {})[point.bound] = point.result.count
        return out

    def runtimes(self) -> dict[str, dict[int, float]]:
        out: dict[str, dict[int, float]] = {}
        for point in self.points:
            out.setdefault(point.axiom, {})[point.bound] = (
                point.result.stats.runtime_s
            )
        return out

    def degraded_points(self) -> list[tuple[str, int]]:
        """(axiom, bound) pairs whose suite lost quarantined shards."""
        return [
            (point.axiom, point.bound)
            for point in self.points
            if point.result.stats.degraded
        ]

    def timed_out_points(self) -> list[tuple[str, int]]:
        """(axiom, bound) pairs whose suite is complete-up-to-timeout."""
        return [
            (point.axiom, point.bound)
            for point in self.points
            if point.result.stats.timed_out
        ]

    def unique_elts(self) -> dict[ProgramKey, SynthesizedElt]:
        """Union of all per-axiom suites, deduplicated (the paper's "140
        unique ELTs across all per-axiom suites")."""
        out: dict[ProgramKey, SynthesizedElt] = {}
        for point in self.points:
            for elt in point.result.elts:
                out.setdefault(elt.key, elt)
        return out


def synthesize_sweep(
    base_config: SynthesisConfig,
    axioms: Optional[list[str]] = None,
    min_bound: int = 4,
    max_bound: Optional[int] = None,
    time_budget_per_run_s: Optional[float] = None,
) -> SweepResult:
    """Per-axiom bound sweep (the §VI methodology).

    For each axiom, bounds increase from ``min_bound``; a run that exceeds
    the time budget marks its suite ``timed_out`` (its partial results stay
    in the sweep) and stops the sweep for that axiom, recording the
    never-attempted bounds in ``SweepResult.skipped`` (mirroring the
    paper's one-week cutoff).  When ``time_budget_per_run_s`` is ``None``
    the budget falls back to ``base_config.time_budget_s`` rather than
    silently removing the base config's budget.
    """
    model = base_config.model
    if axioms is None:
        axioms = [a.name for a in model.axioms]
    if time_budget_per_run_s is None:
        time_budget_per_run_s = base_config.time_budget_s
    top = max_bound if max_bound is not None else base_config.bound
    sweep = SweepResult()
    for axiom in axioms:
        for bound in range(min_bound, top + 1):
            config = replace(
                base_config,
                bound=bound,
                target_axiom=axiom,
                time_budget_s=time_budget_per_run_s,
            )
            result = synthesize(config)
            sweep.points.append(SweepPoint(axiom, bound, result))
            if result.stats.timed_out:
                sweep.skipped.extend(
                    (axiom, later) for later in range(bound + 1, top + 1)
                )
                break
    return sweep


def default_config(bound: int, **overrides) -> SynthesisConfig:
    """Convenience: an x86t_elt synthesis config at the given bound."""
    return SynthesisConfig(bound=bound, model=x86t_elt(), **overrides)

"""The ELT synthesis engine (paper Fig 7, §IV-§V).

Public surface:

* :class:`SynthesisConfig` — knobs (bound, model, target axiom, modes).
* :func:`synthesize` — one per-axiom suite at one bound.
* :func:`synthesize_sweep` — the Fig 9 bound sweep.
* :func:`enumerate_programs` / :func:`enumerate_witnesses` — the stages.
* :func:`is_minimal`, :func:`removal_groups` — §IV-B minimality.
* :func:`canonical_program_key`, :func:`canonical_execution_key` — §IV-C
  deduplication.
"""

from .canon import (
    canonical_execution_key,
    canonical_program_key,
    is_canonical_thread_order,
)
from .config import SynthesisConfig
from .explore import Outcome, ProgramExploration, explore_program
from .engine import (
    PipelineOutcome,
    SuiteResult,
    SuiteStats,
    SweepPoint,
    SweepResult,
    SynthesizedElt,
    default_config,
    finalize_result,
    run_pipeline,
    synthesize,
    synthesize_sweep,
    witness_stream_factory,
)
from .relax import (
    cached_is_minimal,
    clear_minimality_cache,
    is_minimal,
    relaxation_becomes_permitted,
    relaxations,
    relaxed_program,
    removal_groups,
    without_rmw_pair,
)
from .skeletons import (
    enumerate_programs,
    enumerate_programs_with_order,
    enumerate_skeletons,
    program_cost,
)
from .sat_backend import (
    WitnessSession,
    WitnessSessionCache,
    shared_session_cache,
)
from .witnesses import enumerate_witnesses, enumerate_witnesses_constrained

__all__ = [
    "SynthesisConfig",
    "explore_program",
    "ProgramExploration",
    "Outcome",
    "synthesize",
    "synthesize_sweep",
    "default_config",
    "SuiteResult",
    "SuiteStats",
    "SweepPoint",
    "SweepResult",
    "SynthesizedElt",
    "PipelineOutcome",
    "run_pipeline",
    "finalize_result",
    "witness_stream_factory",
    "enumerate_programs",
    "enumerate_programs_with_order",
    "enumerate_skeletons",
    "enumerate_witnesses",
    "enumerate_witnesses_constrained",
    "program_cost",
    "is_minimal",
    "cached_is_minimal",
    "clear_minimality_cache",
    "WitnessSession",
    "WitnessSessionCache",
    "shared_session_cache",
    "relaxations",
    "relaxation_becomes_permitted",
    "relaxed_program",
    "removal_groups",
    "without_rmw_pair",
    "canonical_program_key",
    "canonical_execution_key",
    "is_canonical_thread_order",
]

"""Bounded-exhaustive enumeration of ELT programs (§IV-A).

Programs are generated in three stages:

1. **Base skeletons** — per-thread sequences of user/support instruction
   specs (R, W, RMW, WPTE, spurious INVLPG, MFENCE) with canonical
   first-use VA naming, under an optimistic cost bound.
2. **Remap fan-out** — each PTE write gets its same-core INVLPG immediately
   after it (as in every paper figure) and one IPI INVLPG per remote core,
   inserted at every possible slot (the position matters: Fig 11 vs the
   same program with the INVLPG after the read).
3. **TLB choices** — every user access either hits the live TLB entry or
   misses and invokes a fresh walk; first uses and post-INVLPG accesses
   are forced misses, anything else may capacity-evict (§III-B2 explores
   all three TLB-miss causes).  Dirty-bit ghosts attach to every Write.

Placement rules enforced here (Fig 7 "relation placement rules"):

* spurious INVLPGs appear only between two same-thread accesses of their
  VA (otherwise they cannot affect the thread's execution, §III-B2);
* base threads are non-empty (a core participates by running something);
* the program contains at least one write-like event (spanning-set
  criterion 1, §IV-B).

Cost accounting charges ``config.write_cost`` per user Write (2 normally —
the §III-A2 design choice; 3 under the dirty-bit-as-RMW ablation) plus one
per walk, one per INVLPG/read/fence, and ``1 + num_threads`` per PTE write.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Iterator, Optional

from ..mtm import Event, EventKind, Program
from ..symmetry import program_symmetry
from .canon import is_canonical_thread_order
from .config import SynthesisConfig


@dataclass(frozen=True)
class Spec:
    """One base (pre-ghost) instruction in a skeleton."""

    op: str  # 'R' | 'W' | 'RMW' | 'WPTE' | 'INV' | 'F'
    va: int = 0
    alias: Optional[int] = None  # WPTE target: alias of va index, None=fresh

    def is_user_access(self) -> bool:
        return self.op in ("R", "W", "RMW")


def _spec_cost(spec: Spec, config: SynthesisConfig, num_threads: int) -> int:
    if spec.op == "R":
        return 1
    if spec.op == "W":
        return config.write_cost
    if spec.op == "RMW":
        return 1 + config.write_cost
    if spec.op == "WPTE":
        return 1 + num_threads  # itself + one INVLPG per core
    return 1  # INV, F


def _candidate_specs(
    config: SynthesisConfig, used_vas: int, num_threads: int
) -> list[Spec]:
    """All specs legal at the current point, with canonical VA first-use
    (a new VA must take the next free index)."""
    max_va = min(used_vas, config.max_vas - 1)
    vas = range(max_va + 1)
    out: list[Spec] = []
    for va in vas:
        out.append(Spec("R", va))
        out.append(Spec("W", va))
        if config.enable_rmw:
            out.append(Spec("RMW", va))
        if config.enable_spurious_invlpg:
            out.append(Spec("INV", va))
        if config.enable_pte_writes:
            out.append(Spec("WPTE", va, alias=None))  # fresh PA target
            for target in range(used_vas):
                if target != va:
                    out.append(Spec("WPTE", va, alias=target))
    if config.enable_fences:
        out.append(Spec("F"))
    if config.enable_tlb_flush:
        out.append(Spec("FLUSH"))
    return out


def _min_extra_walks(threads: list[list[Spec]]) -> int:
    """Lower bound on walks: forced TLB misses assuming remap INVLPGs are
    placed as late as possible (they can only add misses)."""
    total = 0
    for thread in threads:
        live: set[int] = set()
        for spec in thread:
            if spec.op == "INV":
                live.discard(spec.va)
            elif spec.op == "FLUSH":
                live.clear()
            elif spec.op == "WPTE":
                # The same-core INVLPG inserted right after evicts va.
                live.discard(spec.va)
            elif spec.is_user_access():
                if spec.va not in live:
                    total += 1
                    live.add(spec.va)
    return total


def _spurious_invlpgs_effective(thread: list[Spec]) -> bool:
    """Placement rule: every spurious INVLPG needs a same-thread user access
    to its VA both before and after it."""
    for index, spec in enumerate(thread):
        if spec.op == "FLUSH":
            # A whole-TLB flush affects the execution only with a cached
            # entry before it and an access after it.
            if not (
                any(s.is_user_access() for s in thread[:index])
                and any(s.is_user_access() for s in thread[index + 1 :])
            ):
                return False
            continue
        if spec.op != "INV":
            continue
        before = any(
            s.is_user_access() and s.va == spec.va for s in thread[:index]
        )
        after = any(
            s.is_user_access() and s.va == spec.va for s in thread[index + 1 :]
        )
        if not (before and after):
            return False
    return True


def _has_write(threads: list[list[Spec]]) -> bool:
    return any(
        spec.op in ("W", "RMW", "WPTE") for thread in threads for spec in thread
    )


def enumerate_skeletons(
    config: SynthesisConfig, num_threads: int
) -> Iterator[tuple[list[Spec], ...]]:
    """Yield base skeletons (per-thread spec sequences) within budget."""

    def extend(
        threads: list[list[Spec]],
        thread_index: int,
        used_vas: int,
        base_cost: int,
    ) -> Iterator[tuple[list[Spec], ...]]:
        walks = 0 if config.mcm_mode else _min_extra_walks(threads)
        if base_cost + walks > config.bound:
            return
        current = threads[thread_index]
        complete_here = bool(current) and _spurious_invlpgs_effective(current)
        if complete_here:
            if thread_index + 1 == num_threads:
                if _has_write(threads):
                    yield tuple(list(t) for t in threads)
            else:
                yield from extend(threads, thread_index + 1, used_vas, base_cost)
        for spec in _candidate_specs(config, used_vas, num_threads):
            cost = _spec_cost(spec, config, num_threads)
            if base_cost + cost + walks > config.bound:
                continue
            current.append(spec)
            new_used = max(used_vas, spec.va + 1)
            yield from extend(threads, thread_index, new_used, base_cost + cost)
            current.pop()

    threads: list[list[Spec]] = [[] for _ in range(num_threads)]
    yield from extend(threads, 0, 0, 0)


# ----------------------------------------------------------------------
# Stage 2 + 3: remap fan-out insertion and TLB (ghost) choices
# ----------------------------------------------------------------------
@dataclass
class _Item:
    """One materialized slot of a thread before ghost attachment."""

    op: str  # 'R' | 'W' | 'INV' | 'WPTE' | 'F'
    va: Optional[int]
    alias: Optional[int] = None
    remap_ref: Optional[int] = None  # index of the WPTE this INVLPG serves
    rmw_start: bool = False  # R of an RMW pair
    rmw_end: bool = False  # W of an RMW pair


def _materialize_base(threads: tuple[list[Spec], ...]) -> tuple[list[list[_Item]], int]:
    """Expand RMW pairs and number the PTE writes; returns items + count."""
    out: list[list[_Item]] = []
    wpte_counter = 0
    for thread in threads:
        items: list[_Item] = []
        for spec in thread:
            if spec.op == "RMW":
                items.append(_Item("R", spec.va, rmw_start=True))
                items.append(_Item("W", spec.va, rmw_end=True))
            elif spec.op == "WPTE":
                items.append(
                    _Item("WPTE", spec.va, alias=spec.alias, remap_ref=wpte_counter)
                )
                # Same-core INVLPG immediately follows (paper figures).
                items.append(_Item("INV", spec.va, remap_ref=wpte_counter))
                wpte_counter += 1
            else:
                items.append(
                    _Item(
                        spec.op,
                        spec.va if spec.op not in ("F", "FLUSH") else None,
                    )
                )
        out.append(items)
    return out, wpte_counter


def _insert_remote_invlpgs(
    base: list[list[_Item]],
) -> Iterator[list[list[_Item]]]:
    """For every PTE write, place its IPI INVLPG at each possible slot of
    every *other* thread (positions matter for the invlpg axiom)."""
    remaps: list[tuple[int, int, int]] = []  # (remap_ref, va, home_thread)
    for core, items in enumerate(base):
        for item in items:
            if item.op == "WPTE":
                assert item.remap_ref is not None and item.va is not None
                remaps.append((item.remap_ref, item.va, core))
    targets: list[tuple[int, int, int]] = []  # (remap_ref, va, remote_core)
    for ref, va, home in remaps:
        for core in range(len(base)):
            if core != home:
                targets.append((ref, va, core))
    if not targets:
        yield [list(items) for items in base]
        return

    def valid_slots(core: int) -> list[int]:
        # An IPI may not land between the Read and Write of an atomic RMW.
        return [
            s
            for s in range(len(base[core]) + 1)
            if not (s > 0 and base[core][s - 1].rmw_start)
        ]

    slot_ranges = [valid_slots(core) for (_r, _v, core) in targets]
    for slots in product(*slot_ranges):
        result = [list(items) for items in base]
        # Insert later slots first so earlier indices stay valid; for equal
        # slots, keep remap_ref order deterministic.
        order = sorted(
            range(len(targets)), key=lambda i: (targets[i][2], -slots[i], targets[i][0])
        )
        for i in order:
            ref, va, core = targets[i]
            result[core].insert(slots[i], _Item("INV", va, remap_ref=ref))
        yield result


def _tlb_choice_vectors(
    threads: list[list[_Item]], budget: int, mcm_mode: bool = False
) -> Iterator[list[list[bool]]]:
    """Per-thread, per-user-access miss flags.  Forced misses are fixed;
    optional ones (capacity evictions) enumerate within the walk budget."""
    if mcm_mode:
        yield [[False] * len(items) for items in threads]
        return
    forced: list[list[Optional[bool]]] = []
    optional_positions: list[tuple[int, int]] = []
    base_walks = 0
    for core, items in enumerate(threads):
        flags: list[Optional[bool]] = []
        live: set[int] = set()
        for index, item in enumerate(items):
            if item.op == "INV":
                assert item.va is not None
                live.discard(item.va)
                flags.append(None)
            elif item.op == "FLUSH":
                live.clear()
                flags.append(None)
            elif item.op in ("R", "W"):
                assert item.va is not None
                if item.rmw_end:
                    flags.append(False)  # RMW write shares the read's entry
                elif item.va not in live:
                    flags.append(True)
                    base_walks += 1
                    live.add(item.va)
                else:
                    flags.append(None)  # optional capacity miss
                    optional_positions.append((core, index))
                    live.add(item.va)
            else:
                flags.append(None)
        forced.append(flags)
    if base_walks > budget:
        return
    spare = budget - base_walks
    for choice in product([False, True], repeat=len(optional_positions)):
        if sum(choice) > spare:
            continue
        result = [
            [bool(f) if f is not None else False for f in flags]
            for flags in forced
        ]
        for (core, index), miss in zip(optional_positions, choice):
            if miss:
                result[core][index] = True
        yield result


def _assemble(
    threads: list[list[_Item]],
    miss_flags: list[list[bool]],
    config: SynthesisConfig,
) -> Program:
    """Build a Program from materialized items + TLB miss choices."""
    events: dict[str, Event] = {}
    thread_eids: list[list[str]] = []
    ghosts: dict[str, tuple[str, ...]] = {}
    remap: list[tuple[str, str]] = []
    rmw: list[tuple[str, str]] = []
    wpte_eid: dict[int, str] = {}
    pending_invlpgs: list[tuple[int, str]] = []  # (remap_ref, invlpg eid)
    counter = 0

    def fresh(prefix: str = "e") -> str:
        nonlocal counter
        eid = f"{prefix}{counter}"
        counter += 1
        return eid

    def va_name(index: int) -> str:
        return f"v{index}"

    initial_map = {
        va_name(i): f"pa{i}" for i in range(config.max_vas)
    }
    fresh_pa_counter = 0

    for core, items in enumerate(threads):
        eids: list[str] = []
        pending_rmw_read: Optional[str] = None
        for index, item in enumerate(items):
            if item.op == "F":
                eid = fresh()
                events[eid] = Event(eid, EventKind.FENCE, core)
                eids.append(eid)
                continue
            if item.op == "FLUSH":
                eid = fresh()
                events[eid] = Event(eid, EventKind.TLB_FLUSH, core)
                eids.append(eid)
                continue
            assert item.va is not None
            va = va_name(item.va)
            if item.op == "INV":
                eid = fresh()
                events[eid] = Event(eid, EventKind.INVLPG, core, va)
                eids.append(eid)
                if item.remap_ref is not None:
                    pending_invlpgs.append((item.remap_ref, eid))
                continue
            if item.op == "WPTE":
                if item.alias is not None:
                    target = f"pa{item.alias}"
                else:
                    target = f"paf{fresh_pa_counter}"
                    fresh_pa_counter += 1
                eid = fresh()
                events[eid] = Event(eid, EventKind.PTE_WRITE, core, va, pa=target)
                eids.append(eid)
                assert item.remap_ref is not None
                wpte_eid[item.remap_ref] = eid
                continue
            # User access (R or W).
            kind = EventKind.READ if item.op == "R" else EventKind.WRITE
            eid = fresh()
            events[eid] = Event(eid, kind, core, va)
            eids.append(eid)
            ghost_list: list[str] = []
            if kind is EventKind.WRITE and not config.mcm_mode:
                dirty = fresh()
                events[dirty] = Event(dirty, EventKind.DIRTY_BIT_WRITE, core, va)
                ghost_list.append(dirty)
            if miss_flags[core][index] and not config.mcm_mode:
                walk = fresh()
                events[walk] = Event(walk, EventKind.PT_WALK, core, va)
                ghost_list.append(walk)
            if ghost_list:
                ghosts[eid] = tuple(ghost_list)
            if item.rmw_start:
                pending_rmw_read = eid
            if item.rmw_end:
                assert pending_rmw_read is not None
                rmw.append((pending_rmw_read, eid))
                pending_rmw_read = None
        thread_eids.append(eids)

    for ref, inv_eid in pending_invlpgs:
        remap.append((wpte_eid[ref], inv_eid))

    # Only keep mappings for VAs the program actually uses.
    used_vas = {
        e.va for e in events.values() if e.va is not None
    }
    return Program(
        events=events,
        threads=tuple(tuple(t) for t in thread_eids),
        ghosts=ghosts,
        remap=frozenset(remap),
        rmw=frozenset(rmw),
        initial_map={va: pa for va, pa in initial_map.items() if va in used_vas},
        mcm_mode=config.mcm_mode,
    )


def program_cost(program: Program, config: SynthesisConfig) -> int:
    """Bound consumption of a program (== event count, except under the
    dirty-bit-as-RMW ablation where each Write charges one extra)."""
    cost = len(program.events)
    if config.dirty_bit_as_rmw and not config.mcm_mode:
        cost += len(program.events_of_kind(EventKind.WRITE))
    return cost


def enumerate_programs_with_order(
    config: SynthesisConfig,
    skeleton_filter: Optional[Callable[[int], bool]] = None,
    fanout_filter: Optional[Callable[[int], bool]] = None,
) -> Iterator[tuple[tuple[int, int], Program]]:
    """All well-formed programs within the bound, each tagged with its
    position ``(skeleton_index, fanout_index)`` in the global enumeration.

    ``skeleton_index`` counts base skeletons across all thread counts;
    ``fanout_index`` counts a skeleton's (remap placement × TLB vector)
    expansions.  Both indices are assigned *before* any filtering, so a
    program carries the same order key no matter which shard enumerates it
    — the invariant :mod:`repro.orchestrate` relies on to merge shard
    results back into serial enumeration order.

    ``skeleton_filter`` / ``fanout_filter`` are index predicates used by
    the shard planner to carve the space into disjoint work units; skipped
    skeletons pay only skeleton-generation cost (the fan-out, assembly and
    symmetry-check work is avoided entirely).
    """
    skeleton_index = -1
    for num_threads in range(1, config.max_threads + 1):
        for skeleton in enumerate_skeletons(config, num_threads):
            skeleton_index += 1
            if skeleton_filter is not None and not skeleton_filter(
                skeleton_index
            ):
                continue
            base, _count = _materialize_base(skeleton)
            base_cost = sum(
                _spec_cost(s, config, num_threads)
                for thread in skeleton
                for s in thread
            )
            walk_budget = config.bound - base_cost
            if walk_budget < 0:
                continue
            fanout_index = -1
            for placed in _insert_remote_invlpgs(base):
                for flags in _tlb_choice_vectors(
                    placed, walk_budget, config.mcm_mode
                ):
                    fanout_index += 1
                    if fanout_filter is not None and not fanout_filter(
                        fanout_index
                    ):
                        continue
                    program = _assemble(placed, flags, config)
                    if program_cost(program, config) > config.bound:
                        continue
                    if config.canonical_pruning:
                        if config.symmetry:
                            # One serialization pass serves both the
                            # arrangement check here and the engine's
                            # orbit machinery (memoized on the program).
                            if not program_symmetry(
                                program
                            ).arrangement_canonical:
                                continue
                        elif not is_canonical_thread_order(program):
                            continue
                    yield (skeleton_index, fanout_index), program


def enumerate_programs(config: SynthesisConfig) -> Iterator[Program]:
    """All well-formed programs within the bound, one per thread-symmetry
    class (when canonical pruning is on)."""
    for _order, program in enumerate_programs_with_order(config):
        yield program

"""Synthesis configuration (the engine's knobs — paper §IV, §V-B).

The instruction ``bound`` counts *all* events including ghosts (DESIGN.md
decision 1).  The paper sweeps bounds of 4..17 under a one-week timeout on
a server; this reproduction exposes the same sweep with a configurable
``time_budget_s`` so benchmarks stay laptop-sized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import SynthesisError
from ..models import MemoryModel, x86t_elt


@dataclass
class SynthesisConfig:
    """Knobs for one synthesis run.

    ``target_axiom``
        The axiom whose violation the synthesized ELTs must exhibit (the
        paper synthesizes one per-axiom suite per axiom, §V-B).  ``None``
        targets the whole predicate (any axiom may be violated).
    ``mcm_mode``
        Ghost-free user-level synthesis (the [30] baseline).
    ``canonical_pruning``
        Symmetry reduction during generation (one thread arrangement per
        isomorphism class); disabling it is the ablation of the Fig 9b
        discussion ("symmetry reduction enables synthesis ... within
        practical runtimes").  Output is identical either way: the
        pipelines select class representatives by canonical rank, and
        the orbit-level dedup of :mod:`repro.symmetry` skips duplicate
        class members before translation when ``symmetry`` is on.
    ``dirty_bit_as_rmw``
        Model dirty-bit updates as an RMW (read + write) instead of a
        single Write — the §III-A2 ablation; costs one extra instruction
        per user-facing Write inside the bound.
    """

    bound: int
    model: MemoryModel = field(default_factory=x86t_elt)
    target_axiom: Optional[str] = None
    max_threads: int = 2
    max_vas: int = 2
    mcm_mode: bool = False
    enable_rmw: bool = True
    enable_fences: bool = False
    enable_pte_writes: bool = True
    enable_spurious_invlpg: bool = True
    #: Explore whole-TLB flushes (the "additional IPI" extension).  Off by
    #: default: like spurious INVLPGs, a flush is removable in isolation,
    #: so it can never be load-bearing for a *minimal* ELT — enabling it
    #: only widens the search space (useful for checking that argument).
    enable_tlb_flush: bool = False
    canonical_pruning: bool = True
    dirty_bit_as_rmw: bool = False
    time_budget_s: Optional[float] = None
    #: How candidate executions are enumerated per program: ``"explicit"``
    #: is the hand-written Python enumerator, ``"sat"`` routes through the
    #: relational (Alloy-port) encoding and the CDCL solver (§IV-C), which
    #: also populates the ``sat_*`` counters on :class:`SuiteStats`.  Both
    #: backends are deterministic and produce the same canonical suites.
    witness_backend: str = "explicit"
    #: Incremental witness sessions (SAT backend): each program is
    #: translated once into a persistent session whose witness list is
    #: shared across axiom suites, sweep points, and diff pairs in the
    #: same process (see :mod:`repro.synth.sat_backend`).  Output is
    #: byte-identical either way — the session's full enumeration runs on
    #: a cold solver over the shared translation — so this knob trades
    #: nothing but serves as the differential oracle switch; it also
    #: enables the cross-run minimality cache.  Off: rebuild everything
    #: per query (the fresh-solver path).
    incremental: bool = True
    #: Symmetry-aware enumeration (:mod:`repro.symmetry`): per-program
    #: automorphism groups quotient the witness stream (one orbit
    #: representative, orbit-size weights), the SAT backend emits static
    #: lex-leader clauses so pruned witnesses are never even visited, and
    #: duplicate isomorphic programs are skipped before translation
    #: (orbit-level dedup).  Canonical suites and conformance matrices
    #: are byte-identical either way — ``--no-symmetry`` (False) is the
    #: differential oracle that runs the same pipelines unpruned.  Like
    #: ``incremental``, this is an output-invariant execution strategy
    #: and is excluded from suite-store cache identity.
    symmetry: bool = True
    #: Clause-storage core of the CDCL solver (:mod:`repro.sat`):
    #: ``"auto"`` resolves to the fastest core available in this
    #: environment (the C-accelerated ``"accel"`` core when the
    #: ``repro.sat._accel`` extension is built, else ``"array"``);
    #: ``"array"`` is the flat-arena pure-Python core (mypyc-compilable,
    #: see ``repro.sat.build_compiled``), ``"accel"`` the same arena
    #: with C inner loops (``repro.sat.build_accel``), ``"object"`` the
    #: original per-clause-object representation.  All run byte-for-byte
    #: the same search with identical counters, so suites are
    #: byte-identical whichever is picked — ``--solver-core object`` is
    #: the differential oracle, exactly like ``--fresh-solver`` and
    #: ``--no-symmetry``.  Excluded from suite-store cache identity.
    solver_core: str = "auto"
    #: Solver inprocessing (:mod:`repro.sat.inprocess`): vivification and
    #: subsumption passes over the learned-clause database at query
    #: boundaries of long-lived solvers.  Model-set preserving, so
    #: suites are byte-identical on or off — ``--no-inprocessing``
    #: (False) is the differential oracle.  Excluded from suite-store
    #: cache identity.
    inprocessing: bool = True

    def __post_init__(self) -> None:
        if self.bound < 1:
            raise SynthesisError(f"bound must be positive, got {self.bound}")
        if self.witness_backend not in ("explicit", "sat"):
            raise SynthesisError(
                f"unknown witness backend: {self.witness_backend!r} "
                "(expected 'explicit' or 'sat')"
            )
        if self.solver_core not in ("auto", "object", "array", "accel"):
            raise SynthesisError(
                f"unknown solver core: {self.solver_core!r} "
                "(expected 'auto', 'object', 'array' or 'accel')"
            )
        if self.solver_core == "accel":
            from ..sat import SOLVER_CORES
            from ..sat.core_accel import BUILD_HINT

            if "accel" not in SOLVER_CORES:
                raise SynthesisError(
                    "solver core 'accel' requires the native "
                    f"repro.sat._accel extension; {BUILD_HINT} or use "
                    "--solver-core array"
                )
        if self.max_threads < 1:
            raise SynthesisError("max_threads must be at least 1")
        if self.max_vas < 1:
            raise SynthesisError("max_vas must be at least 1")
        if self.target_axiom is not None:
            self.model.axiom(self.target_axiom)  # raises if unknown
        if self.mcm_mode and self.enable_pte_writes:
            self.enable_pte_writes = False
        if self.mcm_mode and self.enable_spurious_invlpg:
            self.enable_spurious_invlpg = False
        if self.mcm_mode and self.enable_tlb_flush:
            self.enable_tlb_flush = False

    @property
    def write_cost(self) -> int:
        """Instructions a user-facing Write contributes before its walk:
        W + Wdb normally; W + dirty-Read + dirty-Write under the §III-A2
        RMW ablation; bare W in MCM mode."""
        if self.mcm_mode:
            return 1
        return 3 if self.dirty_bit_as_rmw else 2

"""Hash-consed boolean circuits.

The Kodkod-style translation evaluates relational expressions into boolean
adjacency matrices whose entries are nodes of this circuit language.  The
builder interns nodes structurally so identical subcircuits are shared, and
performs light simplification (constant folding, involution of negation,
flattening of nested conjunctions/disjunctions).

Circuits are converted to CNF with the Tseitin transformation in
:mod:`repro.relational.translate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from ..errors import RelationalError


@dataclass(frozen=True)
class BTrue:
    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class BFalse:
    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True)
class BVar:
    var: int  # positive SAT variable index

    def __repr__(self) -> str:
        return f"v{self.var}"


@dataclass(frozen=True)
class BNot:
    arg: "BoolNode"

    def __repr__(self) -> str:
        return f"!{self.arg!r}"


@dataclass(frozen=True)
class BAnd:
    args: tuple["BoolNode", ...]

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(a) for a in self.args) + ")"


@dataclass(frozen=True)
class BOr:
    args: tuple["BoolNode", ...]

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(a) for a in self.args) + ")"


BoolNode = Union[BTrue, BFalse, BVar, BNot, BAnd, BOr]

TRUE = BTrue()
FALSE = BFalse()


class BoolBuilder:
    """Factory for interned, lightly-simplified boolean nodes."""

    def __init__(self) -> None:
        self._interned: dict[object, BoolNode] = {}

    def _intern(self, node: BoolNode) -> BoolNode:
        found = self._interned.get(node)
        if found is not None:
            return found
        self._interned[node] = node
        return node

    def var(self, var: int) -> BoolNode:
        if var <= 0:
            raise RelationalError(f"boolean variables must be positive: {var}")
        return self._intern(BVar(var))

    def not_(self, arg: BoolNode) -> BoolNode:
        if isinstance(arg, BTrue):
            return FALSE
        if isinstance(arg, BFalse):
            return TRUE
        if isinstance(arg, BNot):
            return arg.arg
        return self._intern(BNot(arg))

    def and_(self, args: Iterable[BoolNode]) -> BoolNode:
        flat: list[BoolNode] = []
        seen: set[BoolNode] = set()
        for arg in args:
            if isinstance(arg, BFalse):
                return FALSE
            if isinstance(arg, BTrue):
                continue
            parts = arg.args if isinstance(arg, BAnd) else (arg,)
            for part in parts:
                complement = part.arg if isinstance(part, BNot) else BNot(part)
                if complement in seen:
                    return FALSE
                if part not in seen:
                    seen.add(part)
                    flat.append(part)
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        return self._intern(BAnd(tuple(flat)))

    def or_(self, args: Iterable[BoolNode]) -> BoolNode:
        flat: list[BoolNode] = []
        seen: set[BoolNode] = set()
        for arg in args:
            if isinstance(arg, BTrue):
                return TRUE
            if isinstance(arg, BFalse):
                continue
            parts = arg.args if isinstance(arg, BOr) else (arg,)
            for part in parts:
                complement = part.arg if isinstance(part, BNot) else BNot(part)
                if complement in seen:
                    return TRUE
                if part not in seen:
                    seen.add(part)
                    flat.append(part)
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        return self._intern(BOr(tuple(flat)))

    def implies(self, a: BoolNode, b: BoolNode) -> BoolNode:
        return self.or_([self.not_(a), b])

    def iff(self, a: BoolNode, b: BoolNode) -> BoolNode:
        return self.and_([self.implies(a, b), self.implies(b, a)])


def evaluate_node(node: BoolNode, assignment: dict[int, bool]) -> bool:
    """Evaluate a circuit under a total SAT assignment (used by tests and by
    instance extraction)."""
    if isinstance(node, BTrue):
        return True
    if isinstance(node, BFalse):
        return False
    if isinstance(node, BVar):
        return assignment[node.var]
    if isinstance(node, BNot):
        return not evaluate_node(node.arg, assignment)
    if isinstance(node, BAnd):
        return all(evaluate_node(arg, assignment) for arg in node.args)
    if isinstance(node, BOr):
        return any(evaluate_node(arg, assignment) for arg in node.args)
    raise RelationalError(f"unknown boolean node: {node!r}")

"""Hash-consed boolean circuits.

The Kodkod-style translation evaluates relational expressions into boolean
adjacency matrices whose entries are nodes of this circuit language.  The
builder interns nodes structurally so identical subcircuits are shared, and
performs light simplification (constant folding, involution of negation,
flattening of nested conjunctions/disjunctions).

Circuits are converted to CNF with the Tseitin transformation in
:mod:`repro.relational.translate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from ..errors import RelationalError


@dataclass(frozen=True)
class BTrue:
    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class BFalse:
    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True)
class BVar:
    var: int  # positive SAT variable index

    def __repr__(self) -> str:
        return f"v{self.var}"


@dataclass(frozen=True)
class BNot:
    arg: "BoolNode"

    def __hash__(self) -> int:
        # Cached: the default dataclass hash recomputes the whole subtree
        # on every dict lookup, turning hash-consing quadratic on deep
        # (e.g. closure) circuits.  Child hashes are themselves cached, so
        # the first call is O(1) amortized over the DAG.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((BNot, self.arg))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        return f"!{self.arg!r}"


@dataclass(frozen=True)
class BAnd:
    args: tuple["BoolNode", ...]

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((BAnd, self.args))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(a) for a in self.args) + ")"


@dataclass(frozen=True)
class BOr:
    args: tuple["BoolNode", ...]

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((BOr, self.args))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(a) for a in self.args) + ")"


BoolNode = Union[BTrue, BFalse, BVar, BNot, BAnd, BOr]

TRUE = BTrue()
FALSE = BFalse()


class BoolBuilder:
    """Factory for interned, lightly-simplified boolean nodes."""

    def __init__(self) -> None:
        self._interned: dict[object, BoolNode] = {}

    def _intern(self, node: BoolNode) -> BoolNode:
        found = self._interned.get(node)
        if found is not None:
            return found
        self._interned[node] = node
        return node

    def var(self, var: int) -> BoolNode:
        if var <= 0:
            raise RelationalError(f"boolean variables must be positive: {var}")
        return self._intern(BVar(var))

    def not_(self, arg: BoolNode) -> BoolNode:
        if isinstance(arg, BTrue):
            return FALSE
        if isinstance(arg, BFalse):
            return TRUE
        if isinstance(arg, BNot):
            return arg.arg
        return self._intern(BNot(arg))

    def and_(self, args: Iterable[BoolNode]) -> BoolNode:
        # Complement detection tracks negated and plain operands in separate
        # sets, so no transient BNot node is built per membership test.
        flat: list[BoolNode] = []
        plain: set[BoolNode] = set()
        negated: set[BoolNode] = set()
        for arg in args:
            if isinstance(arg, BFalse):
                return FALSE
            if isinstance(arg, BTrue):
                continue
            parts = arg.args if isinstance(arg, BAnd) else (arg,)
            for part in parts:
                if isinstance(part, BNot):
                    base = part.arg
                    if base in plain:
                        return FALSE
                    if base not in negated:
                        negated.add(base)
                        flat.append(part)
                else:
                    if part in negated:
                        return FALSE
                    if part not in plain:
                        plain.add(part)
                        flat.append(part)
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        return self._intern(BAnd(tuple(flat)))

    def or_(self, args: Iterable[BoolNode]) -> BoolNode:
        flat: list[BoolNode] = []
        plain: set[BoolNode] = set()
        negated: set[BoolNode] = set()
        for arg in args:
            if isinstance(arg, BTrue):
                return TRUE
            if isinstance(arg, BFalse):
                continue
            parts = arg.args if isinstance(arg, BOr) else (arg,)
            for part in parts:
                if isinstance(part, BNot):
                    base = part.arg
                    if base in plain:
                        return TRUE
                    if base not in negated:
                        negated.add(base)
                        flat.append(part)
                else:
                    if part in negated:
                        return TRUE
                    if part not in plain:
                        plain.add(part)
                        flat.append(part)
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        return self._intern(BOr(tuple(flat)))

    def implies(self, a: BoolNode, b: BoolNode) -> BoolNode:
        return self.or_([self.not_(a), b])

    def iff(self, a: BoolNode, b: BoolNode) -> BoolNode:
        return self.and_([self.implies(a, b), self.implies(b, a)])

    # -- non-flattening binary constructors ----------------------------
    # ``or_``/``and_`` flatten nested nodes of the same kind, which is the
    # right default but turns a chain s_i = or(x_i, s_{i-1}) into n nodes
    # of sizes 1..n — O(n^2) literals once Tseitin-encoded.  The sequential
    # at-most-one encoding in the translator needs genuinely *nested*
    # binary nodes so each link stays constant-size; these constructors
    # provide that while keeping constant folding and interning.

    def or2(self, a: BoolNode, b: BoolNode) -> BoolNode:
        if isinstance(a, BTrue) or isinstance(b, BTrue):
            return TRUE
        if isinstance(a, BFalse):
            return b
        if isinstance(b, BFalse):
            return a
        if a is b or a == b:
            return a
        if (isinstance(a, BNot) and a.arg == b) or (
            isinstance(b, BNot) and b.arg == a
        ):
            return TRUE
        return self._intern(BOr((a, b)))

    def and2(self, a: BoolNode, b: BoolNode) -> BoolNode:
        if isinstance(a, BFalse) or isinstance(b, BFalse):
            return FALSE
        if isinstance(a, BTrue):
            return b
        if isinstance(b, BTrue):
            return a
        if a is b or a == b:
            return a
        if (isinstance(a, BNot) and a.arg == b) or (
            isinstance(b, BNot) and b.arg == a
        ):
            return FALSE
        return self._intern(BAnd((a, b)))


def evaluate_node(node: BoolNode, assignment: dict[int, bool]) -> bool:
    """Evaluate a circuit under a total SAT assignment (used by tests and by
    instance extraction).

    Iterative with per-node memoization: closure circuits form deep shared
    DAGs, where naive recursion both overflows the Python stack and
    re-evaluates shared subcircuits exponentially often.
    """
    values: dict[BoolNode, bool] = {}
    stack: list[BoolNode] = [node]
    while stack:
        current = stack[-1]
        if current in values:
            stack.pop()
            continue
        if isinstance(current, BTrue):
            values[current] = True
            stack.pop()
        elif isinstance(current, BFalse):
            values[current] = False
            stack.pop()
        elif isinstance(current, BVar):
            values[current] = assignment[current.var]
            stack.pop()
        elif isinstance(current, BNot):
            arg_value = values.get(current.arg)
            if arg_value is None:
                stack.append(current.arg)
            else:
                values[current] = not arg_value
                stack.pop()
        elif isinstance(current, (BAnd, BOr)):
            shortcut = isinstance(current, BOr)
            result: bool | None = not shortcut
            pending: BoolNode | None = None
            for arg in current.args:
                arg_value = values.get(arg)
                if arg_value is None:
                    if pending is None:
                        pending = arg
                elif arg_value == shortcut:
                    result = shortcut
                    break
            if result == shortcut or pending is None:
                values[current] = bool(result)
                stack.pop()
            else:
                stack.append(pending)
        else:
            raise RelationalError(f"unknown boolean node: {current!r}")
    return values[node]


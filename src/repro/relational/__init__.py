"""Bounded relational model finding (Alloy 4.2 + Kodkod stand-in).

Public surface:

* :class:`TupleSet` — concrete relations with Alloy-style operators.
* AST constructors from :mod:`repro.relational.ast` (``Rel``, ``forall``,
  ``exists``, ``acyclic``, ``no``, ``some``, ``subset``, ``conj`` ...).
* :class:`Instance` — a concrete model.
* :func:`eval_expr` / :func:`eval_formula` — reference evaluation.
* :class:`Problem` — declare bounds, constrain, solve/enumerate via SAT.
"""

from .ast import (
    And,
    Closure,
    Difference,
    Exists,
    Expr,
    FalseF,
    ForAll,
    Formula,
    Iden,
    Intersect,
    Join,
    Literal,
    Lone,
    No,
    Not,
    One,
    Or,
    Product,
    Rel,
    Some,
    Subset,
    Transpose,
    TrueF,
    Union_,
    Univ,
    VarRef,
    acyclic,
    conj,
    disj,
    exists,
    forall,
    irreflexive,
    no,
    some,
    subset,
)
from .instance import Instance
from .eval import eval_expr, eval_formula
from .translate import Problem, ProblemSession, RelationBound
from .tuples import TupleSet

__all__ = [
    "TupleSet",
    "Instance",
    "Problem",
    "ProblemSession",
    "RelationBound",
    "eval_expr",
    "eval_formula",
    # AST
    "Expr",
    "Formula",
    "Rel",
    "Literal",
    "Iden",
    "Univ",
    "VarRef",
    "Union_",
    "Intersect",
    "Difference",
    "Join",
    "Product",
    "Transpose",
    "Closure",
    "TrueF",
    "FalseF",
    "Subset",
    "Some",
    "No",
    "One",
    "Lone",
    "Not",
    "And",
    "Or",
    "ForAll",
    "Exists",
    "forall",
    "exists",
    "conj",
    "disj",
    "acyclic",
    "irreflexive",
    "no",
    "some",
    "subset",
]

"""Bounded relational model finding: the Kodkod [52] stand-in.

A :class:`Problem` fixes a universe of atoms and declares relations with
lower/upper tuple bounds.  Expressions are evaluated into *boolean
adjacency matrices* (sparse maps from tuples to circuit nodes); formulas
compile to circuits; the Tseitin transformation yields CNF which the
:mod:`repro.sat` CDCL solver searches.  Models are decoded back into
:class:`~repro.relational.instance.Instance` objects.

This is exactly the pipeline TransForm relies on via Alloy 4.2 + Kodkod +
MiniSat (paper §IV-C), re-implemented at the scale this reproduction needs.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional

from ..errors import RelationalError
from ..sat import CdclSolver, Cnf
from . import ast
from .boolean import (
    FALSE,
    TRUE,
    BAnd,
    BFalse,
    BNot,
    BOr,
    BoolBuilder,
    BoolNode,
    BTrue,
    BVar,
)
from .instance import Instance
from .tuples import Atom, Tuple_, TupleSet

Matrix = dict[Tuple_, BoolNode]


class RelationBound:
    """Lower/upper tuple bounds for one declared relation."""

    def __init__(
        self,
        name: str,
        arity: int,
        upper: Iterable[Tuple_],
        lower: Iterable[Tuple_] = (),
    ) -> None:
        self.name = name
        self.arity = arity
        self.upper = frozenset(tuple(t) for t in upper)
        self.lower = frozenset(tuple(t) for t in lower)
        for t in self.upper | self.lower:
            if len(t) != arity:
                raise RelationalError(
                    f"bound tuple {t} of {name!r} has arity {len(t)}, expected {arity}"
                )
        if not self.lower <= self.upper:
            raise RelationalError(
                f"lower bound of {name!r} is not contained in its upper bound"
            )


class Problem:
    """A bounded relational satisfaction problem."""

    def __init__(self, atoms: Iterable[Atom]) -> None:
        self.atoms: tuple[Atom, ...] = tuple(dict.fromkeys(atoms))
        if not self.atoms:
            raise RelationalError("universe must contain at least one atom")
        self._bounds: dict[str, RelationBound] = {}
        self._constraints: list[ast.Formula] = []

    # ------------------------------------------------------------------
    # Declaration API
    # ------------------------------------------------------------------
    def declare(
        self,
        name: str,
        arity: int,
        upper: Optional[Iterable[Tuple_]] = None,
        lower: Iterable[Tuple_] = (),
    ) -> ast.Rel:
        """Declare a relation; ``upper`` defaults to all tuples of the given
        arity over the universe."""
        if name in self._bounds:
            raise RelationalError(f"relation {name!r} already declared")
        if upper is None:
            upper = _all_tuples(self.atoms, arity)
        bound = RelationBound(name, arity, upper, lower)
        stray = {a for t in bound.upper for a in t} - set(self.atoms)
        if stray:
            raise RelationalError(
                f"bounds of {name!r} mention unknown atoms: {sorted(stray)}"
            )
        self._bounds[name] = bound
        return ast.Rel(name, arity)

    def constrain(self, formula: ast.Formula) -> None:
        self._constraints.append(formula)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self) -> Optional[Instance]:
        """Return one satisfying instance, or None."""
        for instance in self.iter_instances(limit=1):
            return instance
        return None

    def iter_instances(self, limit: Optional[int] = None) -> Iterator[Instance]:
        """Enumerate satisfying instances, distinct on declared relations."""
        compiled = _Compilation(self)
        solver = CdclSolver(compiled.cnf)
        count = 0
        while limit is None or count < limit:
            result = solver.solve()
            if not result.satisfiable:
                return
            model = result.model
            assert model is not None
            yield compiled.decode(model)
            count += 1
            blocking = [
                (-var if model.get(var, False) else var)
                for var in compiled.tuple_vars
            ]
            if not blocking:
                return
            if not solver.add_clause(blocking):
                return


def _all_tuples(atoms: tuple[Atom, ...], arity: int) -> list[Tuple_]:
    out: list[Tuple_] = [()]
    for _ in range(arity):
        out = [t + (a,) for t in out for a in atoms]
    return out


class _Compilation:
    """Compiled form of a Problem: CNF + decoding tables."""

    def __init__(self, problem: Problem) -> None:
        self.problem = problem
        self.builder = BoolBuilder()
        self.cnf = Cnf()
        self._rel_matrices: dict[str, Matrix] = {}
        self._var_to_entry: dict[int, tuple[str, Tuple_]] = {}
        self.tuple_vars: list[int] = []
        self._tseitin_cache: dict[BoolNode, int] = {}

        for name, bound in problem._bounds.items():
            matrix: Matrix = {}
            for t in sorted(bound.upper):
                if t in bound.lower:
                    matrix[t] = TRUE
                else:
                    var = self.cnf.new_var()
                    matrix[t] = self.builder.var(var)
                    self._var_to_entry[var] = (name, t)
                    self.tuple_vars.append(var)
            self._rel_matrices[name] = matrix

        root_nodes = [
            self._formula(constraint, {}) for constraint in problem._constraints
        ]
        root = self.builder.and_(root_nodes)
        root_lit = self._tseitin(root)
        self.cnf.add_clause([root_lit])

    # ------------------------------------------------------------------
    # Expression -> matrix
    # ------------------------------------------------------------------
    def _expr(self, expr: ast.Expr, env: dict[str, Atom]) -> Matrix:
        builder = self.builder
        if isinstance(expr, ast.Rel):
            if expr.name not in self._rel_matrices:
                raise RelationalError(f"relation {expr.name!r} was never declared")
            return self._rel_matrices[expr.name]
        if isinstance(expr, ast.Literal):
            return {t: TRUE for t in expr.value.tuples}
        if isinstance(expr, ast.Iden):
            return {(a, a): TRUE for a in self.problem.atoms}
        if isinstance(expr, ast.Univ):
            return {(a,): TRUE for a in self.problem.atoms}
        if isinstance(expr, ast.VarRef):
            if expr.name not in env:
                raise RelationalError(f"unbound variable: {expr.name}")
            return {(env[expr.name],): TRUE}
        if isinstance(expr, ast.Union_):
            left = self._expr(expr.left, env)
            right = self._expr(expr.right, env)
            out: Matrix = dict(left)
            for t, node in right.items():
                out[t] = builder.or_([out.get(t, FALSE), node])
            return out
        if isinstance(expr, ast.Intersect):
            left = self._expr(expr.left, env)
            right = self._expr(expr.right, env)
            return {
                t: builder.and_([left[t], right[t]])
                for t in left.keys() & right.keys()
            }
        if isinstance(expr, ast.Difference):
            left = self._expr(expr.left, env)
            right = self._expr(expr.right, env)
            return {
                t: builder.and_([node, builder.not_(right.get(t, FALSE))])
                for t, node in left.items()
            }
        if isinstance(expr, ast.Join):
            return self._join(self._expr(expr.left, env), self._expr(expr.right, env))
        if isinstance(expr, ast.Product):
            left = self._expr(expr.left, env)
            right = self._expr(expr.right, env)
            return {
                a + b: builder.and_([na, nb])
                for a, na in left.items()
                for b, nb in right.items()
            }
        if isinstance(expr, ast.Transpose):
            return {(b, a): node for (a, b), node in self._expr(expr.arg, env).items()}
        if isinstance(expr, ast.Closure):
            return self._closure(self._expr(expr.arg, env))
        raise RelationalError(f"unknown expression node: {expr!r}")

    def _join(self, left: Matrix, right: Matrix) -> Matrix:
        builder = self.builder
        by_head: dict[Atom, list[tuple[Tuple_, BoolNode]]] = {}
        for t, node in right.items():
            by_head.setdefault(t[0], []).append((t[1:], node))
        combined: dict[Tuple_, list[BoolNode]] = {}
        for t, node in left.items():
            for rest, rnode in by_head.get(t[-1], ()):
                key = t[:-1] + rest
                if not key:
                    raise RelationalError("join of two unary relations has arity 0")
                combined.setdefault(key, []).append(builder.and_([node, rnode]))
        return {t: builder.or_(nodes) for t, nodes in combined.items()}

    def _closure(self, matrix: Matrix) -> Matrix:
        result = dict(matrix)
        steps = max(1, math.ceil(math.log2(max(2, len(self.problem.atoms)))))
        for _ in range(steps):
            squared = self._join(result, result)
            merged = dict(result)
            for t, node in squared.items():
                merged[t] = self.builder.or_([merged.get(t, FALSE), node])
            result = merged
        return result

    # ------------------------------------------------------------------
    # Formula -> circuit
    # ------------------------------------------------------------------
    def _formula(self, formula: ast.Formula, env: dict[str, Atom]) -> BoolNode:
        builder = self.builder
        if isinstance(formula, ast.TrueF):
            return TRUE
        if isinstance(formula, ast.FalseF):
            return FALSE
        if isinstance(formula, ast.Subset):
            left = self._expr(formula.left, env)
            right = self._expr(formula.right, env)
            return builder.and_(
                [builder.implies(node, right.get(t, FALSE)) for t, node in left.items()]
            )
        if isinstance(formula, ast.Some):
            return builder.or_(self._expr(formula.arg, env).values())
        if isinstance(formula, ast.No):
            return builder.not_(builder.or_(self._expr(formula.arg, env).values()))
        if isinstance(formula, ast.One):
            return self._exactly_one(list(self._expr(formula.arg, env).values()))
        if isinstance(formula, ast.Lone):
            return self._at_most_one(list(self._expr(formula.arg, env).values()))
        if isinstance(formula, ast.Not):
            return builder.not_(self._formula(formula.arg, env))
        if isinstance(formula, ast.And):
            return builder.and_(
                [self._formula(formula.left, env), self._formula(formula.right, env)]
            )
        if isinstance(formula, ast.Or):
            return builder.or_(
                [self._formula(formula.left, env), self._formula(formula.right, env)]
            )
        if isinstance(formula, (ast.ForAll, ast.Exists)):
            domain = self._expr(formula.domain, env)
            for t in domain:
                if len(t) != 1:
                    raise RelationalError("quantifier domain must be unary")
            parts: list[BoolNode] = []
            for (atom,), guard in domain.items():
                extended = {**env, formula.var: atom}
                body = self._formula(formula.body, extended)
                if isinstance(formula, ast.ForAll):
                    parts.append(builder.implies(guard, body))
                else:
                    parts.append(builder.and_([guard, body]))
            if isinstance(formula, ast.ForAll):
                return builder.and_(parts)
            return builder.or_(parts)
        raise RelationalError(f"unknown formula node: {formula!r}")

    def _at_most_one(self, nodes: list[BoolNode]) -> BoolNode:
        builder = self.builder
        clauses: list[BoolNode] = []
        for i in range(len(nodes)):
            for j in range(i + 1, len(nodes)):
                clauses.append(
                    builder.or_([builder.not_(nodes[i]), builder.not_(nodes[j])])
                )
        return builder.and_(clauses)

    def _exactly_one(self, nodes: list[BoolNode]) -> BoolNode:
        return self.builder.and_([self.builder.or_(nodes), self._at_most_one(nodes)])

    # ------------------------------------------------------------------
    # Tseitin CNF conversion
    # ------------------------------------------------------------------
    def _tseitin(self, node: BoolNode) -> int:
        """Return a literal equisatisfiably representing ``node``."""
        if isinstance(node, BTrue):
            if TRUE not in self._tseitin_cache:
                var = self.cnf.new_var()
                self.cnf.add_clause([var])
                self._tseitin_cache[TRUE] = var
            return self._tseitin_cache[TRUE]
        if isinstance(node, BFalse):
            return -self._tseitin(TRUE)
        if isinstance(node, BVar):
            return node.var
        if isinstance(node, BNot):
            return -self._tseitin(node.arg)
        cached = self._tseitin_cache.get(node)
        if cached is not None:
            return cached
        arg_lits = [self._tseitin(arg) for arg in node.args]
        fresh = self.cnf.new_var()
        if isinstance(node, BAnd):
            for lit in arg_lits:
                self.cnf.add_clause([-fresh, lit])
            self.cnf.add_clause([fresh] + [-lit for lit in arg_lits])
        elif isinstance(node, BOr):
            for lit in arg_lits:
                self.cnf.add_clause([-lit, fresh])
            self.cnf.add_clause([-fresh] + arg_lits)
        else:  # pragma: no cover - exhaustive above
            raise RelationalError(f"unknown boolean node: {node!r}")
        self._tseitin_cache[node] = fresh
        return fresh

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, model: dict[int, bool]) -> Instance:
        relations: dict[str, TupleSet] = {}
        for name, bound in self.problem._bounds.items():
            tuples = set(bound.lower)
            matrix = self._rel_matrices[name]
            for t, node in matrix.items():
                if isinstance(node, BVar) and model.get(node.var, False):
                    tuples.add(t)
            relations[name] = TupleSet(bound.arity, tuples)
        return Instance(self.problem.atoms, relations)

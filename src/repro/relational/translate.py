"""Bounded relational model finding: the Kodkod [52] stand-in.

A :class:`Problem` fixes a universe of atoms and declares relations with
lower/upper tuple bounds.  Expressions are evaluated into *boolean
adjacency matrices* (sparse maps from tuples to circuit nodes); formulas
compile to circuits; the Tseitin transformation yields CNF which the
:mod:`repro.sat` CDCL solver searches.  Models are decoded back into
:class:`~repro.relational.instance.Instance` objects.

This is exactly the pipeline TransForm relies on via Alloy 4.2 + Kodkod +
MiniSat (paper §IV-C), re-implemented at the scale this reproduction needs,
plus two capabilities the synthesis pipelines lean on:

* **constraint groups and sessions** — named, individually selectable
  constraint sets (:meth:`Problem.constrain` with ``group=``) queried
  incrementally through :class:`ProblemSession` (one translation, one
  persistent solver, activation-literal assumptions; the contract is
  spelled out on the class);
* **symmetry breaking** — :meth:`Problem.add_symmetry` registers
  solution-space symmetries that compile into static lex-leader clauses,
  so enumerations visit one member per orbit (:mod:`repro.symmetry`
  derives the permutations from program automorphism groups).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional

from ..errors import RelationalError
from ..sat import CdclSolver, Cnf, SolverStats, create_solver
from . import ast
from .boolean import (
    FALSE,
    TRUE,
    BAnd,
    BFalse,
    BNot,
    BOr,
    BoolBuilder,
    BoolNode,
    BTrue,
    BVar,
)
from .instance import Instance
from .tuples import Atom, Tuple_, TupleSet

Matrix = dict[Tuple_, BoolNode]


class RelationBound:
    """Lower/upper tuple bounds for one declared relation."""

    def __init__(
        self,
        name: str,
        arity: int,
        upper: Iterable[Tuple_],
        lower: Iterable[Tuple_] = (),
    ) -> None:
        self.name = name
        self.arity = arity
        self.upper = frozenset(tuple(t) for t in upper)
        self.lower = frozenset(tuple(t) for t in lower)
        for t in self.upper | self.lower:
            if len(t) != arity:
                raise RelationalError(
                    f"bound tuple {t} of {name!r} has arity {len(t)}, expected {arity}"
                )
        if not self.lower <= self.upper:
            raise RelationalError(
                f"lower bound of {name!r} is not contained in its upper bound"
            )


class Problem:
    """A bounded relational satisfaction problem."""

    def __init__(self, atoms: Iterable[Atom]) -> None:
        self.atoms: tuple[Atom, ...] = tuple(dict.fromkeys(atoms))
        if not self.atoms:
            raise RelationalError("universe must contain at least one atom")
        self._bounds: dict[str, RelationBound] = {}
        self._defs: dict[str, tuple[int, ast.Expr]] = {}
        self._constraints: list[ast.Formula] = []
        #: Registered symmetries: tuple permutations of declared free
        #: relation entries, compiled into static lex-leader clauses (see
        #: :meth:`add_symmetry`).
        self._symmetries: list[dict[str, dict[Tuple_, Tuple_]]] = []
        #: Lex-leader clauses emitted by the most recent compilation
        #: (mirrored into :attr:`~repro.sat.SolverStats.symmetry_clauses`
        #: of the enumerating solver).
        self.last_symmetry_clauses = 0
        #: Named, individually selectable constraint sets.  Base
        #: constraints (group None) always hold; a group's constraints
        #: hold only in queries that select it — hard-compiled by the
        #: fresh path, activation-literal-guarded by sessions.
        self._group_constraints: dict[str, list[ast.Formula]] = {}
        #: Live counters of the solver behind the most recent
        #: :meth:`solve`/:meth:`iter_instances` call (None before the first).
        self.last_solver_stats: Optional[SolverStats] = None

    # ------------------------------------------------------------------
    # Declaration API
    # ------------------------------------------------------------------
    def declare(
        self,
        name: str,
        arity: int,
        upper: Optional[Iterable[Tuple_]] = None,
        lower: Iterable[Tuple_] = (),
    ) -> ast.Rel:
        """Declare a relation; ``upper`` defaults to all tuples of the given
        arity over the universe."""
        if name in self._bounds:
            raise RelationalError(f"relation {name!r} already declared")
        if upper is None:
            upper = _all_tuples(self.atoms, arity)
        bound = RelationBound(name, arity, upper, lower)
        stray = {a for t in bound.upper for a in t} - set(self.atoms)
        if stray:
            raise RelationalError(
                f"bounds of {name!r} mention unknown atoms: {sorted(stray)}"
            )
        self._bounds[name] = bound
        return ast.Rel(name, arity)

    def define(self, name: str, arity: int, expr) -> ast.Rel:
        """Register a *defined* relation: usable in formulas exactly like a
        declared one, but compiled by substituting its defining
        expression's boolean matrix at every use.

        This is the lean alternative to ``declare`` + an equality
        constraint: no tuple variables are allocated and no two-sided
        subset circuit is built, which for an n-event universe saves
        O(n^arity) variables and clauses per derived relation.  Defined
        relations do not appear in decoded instances (they carry no
        variables); definitions may reference declared and other defined
        relations as long as the definition graph is acyclic.
        """
        from .ast import _as_expr

        if name in self._bounds or name in self._defs:
            raise RelationalError(f"relation {name!r} already declared")
        expr = _as_expr(expr)
        if expr.arity != arity:
            raise RelationalError(
                f"definition of {name!r} has arity {expr.arity}, expected {arity}"
            )
        self._defs[name] = (arity, expr)
        return ast.Rel(name, arity)

    def constrain(
        self, formula: ast.Formula, group: Optional[str] = None
    ) -> None:
        """Add a constraint — unconditionally (``group=None``), or into the
        named selectable group (see :meth:`session` and the ``groups``
        parameter of :meth:`solve`/:meth:`iter_instances`)."""
        if group is None:
            self._constraints.append(formula)
        else:
            self._group_constraints.setdefault(group, []).append(formula)

    @property
    def groups(self) -> tuple[str, ...]:
        """Registered constraint-group names, in registration order."""
        return tuple(self._group_constraints)

    def add_symmetry(
        self, permutation: dict[str, dict[Tuple_, Tuple_]]
    ) -> None:
        """Register a solution-space symmetry for static lex-leader
        breaking.

        ``permutation`` maps relation names to tuple permutations: for
        every declared relation ``r`` present, ``permutation[r]`` sends
        each upper-bound tuple to its image under one structure-preserving
        bijection of the problem (an automorphism of the constrained
        solution space).  During translation, each registered symmetry
        emits the static lex-leader constraint ``x ⪰ σ(x)`` over the free
        tuple variables in declaration/allocation order (``0 < 1``, first
        difference decides) — so the SAT enumeration only ever visits the
        orbit member whose sorted concrete tuple listing is smallest (the
        same member :func:`repro.symmetry.prune_weighted` keeps), instead
        of decoding and discarding its isomorphs.

        Soundness requirements, checked during compilation:

        * only declared relations may appear, and every mapped entry and
          its image must be *free* (not fixed by the lower bound) —
          a genuine automorphism maps free entries to free entries;
        * the map must be a permutation of each relation's upper bound.

        The constraint is sound only if ``permutation`` really is an
        automorphism (it maps solutions to solutions); callers are
        responsible for that, and for weighting any counts by orbit size
        when the pruned enumeration stands in for the full one.  The
        clauses live in the base CNF, so they apply identically to the
        fresh path, :class:`ProblemSession` queries, and
        :meth:`ProblemSession.iter_base_instances`.
        """
        cleaned: dict[str, dict[Tuple_, Tuple_]] = {}
        for name, mapping in permutation.items():
            bound = self._bounds.get(name)
            if bound is None:
                raise RelationalError(
                    f"symmetry permutes unknown relation {name!r}"
                )
            entries = {tuple(t): tuple(u) for t, u in mapping.items()}
            domain = set(entries)
            image = set(entries.values())
            if not domain <= bound.upper or not image <= bound.upper:
                raise RelationalError(
                    f"symmetry on {name!r} leaves its upper bound"
                )
            if domain != image:
                raise RelationalError(
                    f"symmetry on {name!r} is not a permutation"
                )
            cleaned[name] = entries
        self._symmetries.append(cleaned)

    def _group_formulas(self, name: str) -> list[ast.Formula]:
        formulas = self._group_constraints.get(name)
        if formulas is None:
            raise RelationalError(f"unknown constraint group {name!r}")
        return formulas

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, groups: Iterable[str] = ()) -> Optional[Instance]:
        """Return one satisfying instance, or None."""
        for instance in self.iter_instances(limit=1, groups=groups):
            return instance
        return None

    def iter_instances(
        self, limit: Optional[int] = None, groups: Iterable[str] = ()
    ) -> Iterator[Instance]:
        """Enumerate satisfying instances, distinct on declared relations.

        ``groups`` selects constraint groups to enforce alongside the base
        constraints; they are compiled as hard constraints by this fresh
        path (one translation, one cold solver per call) — the
        differential oracle for :class:`ProblemSession`'s
        activation-literal encoding of the same selection.

        After each call (and while one is in flight) ``last_solver_stats``
        holds the live :class:`~repro.sat.SolverStats` of the underlying
        solver, for benchmarks and the synthesis engine's reporting.

        Blocking clauses negate only the *decision literals* of each model:
        every Tseitin auxiliary variable is fully defined (by equivalence
        clauses) in terms of the tuple variables, so each assignment of the
        declared relations extends to exactly one total model, and blocking
        that model blocks exactly one instance — with a much shorter clause
        than one spanning every tuple variable.
        """
        if limit is not None and limit <= 0:
            return
        compiled = _Compilation(self, groups=tuple(groups))
        solver = create_solver(compiled.cnf)
        solver.stats.symmetry_clauses = compiled.symmetry_clauses
        self.last_solver_stats = solver.stats
        count = 0
        for model in solver.iter_solutions():
            yield compiled.decode(model)
            count += 1
            if limit is not None and count >= limit:
                return

    def session(self) -> "ProblemSession":
        """Open an incremental session: one translation, one persistent
        solver, constraint groups toggled per query by activation-literal
        assumptions (see :class:`ProblemSession`)."""
        return ProblemSession(self)


def _all_tuples(atoms: tuple[Atom, ...], arity: int) -> list[Tuple_]:
    out: list[Tuple_] = [()]
    for _ in range(arity):
        out = [t + (a,) for t in out for a in atoms]
    return out


class _Compilation:
    """Compiled form of a Problem: CNF + decoding tables.

    ``groups`` selects constraint groups to hard-compile alongside the
    base constraints (the fresh-solver path).  The circuit builder, memo
    caches, and Tseitin cache stay live after construction, so a session
    can keep compiling *additional* formulas (group roots, guarded by
    activation literals) into the same CNF at marginal cost — the
    "translate once" half of incremental witness sessions.
    """

    def __init__(self, problem: Problem, groups: tuple[str, ...] = ()) -> None:
        self.problem = problem
        self.builder = BoolBuilder()
        self.cnf = Cnf()
        self._rel_matrices: dict[str, Matrix] = {}
        self._var_to_entry: dict[int, tuple[str, Tuple_]] = {}
        self.tuple_vars: list[int] = []
        self._tseitin_cache: dict[BoolNode, int] = {}
        # Compilation memos, keyed on (node identity, the env bindings the
        # node actually references).  Quantifiers re-compile their body
        # once per domain atom; subterms that do not mention the bound
        # variable (guards, fixed relations, whole subformulas) hit these
        # caches instead of being re-translated for every binding.
        self._free_vars_cache: dict[int, frozenset[str]] = {}
        self._expr_cache: dict[tuple, Matrix] = {}
        self._formula_cache: dict[tuple, BoolNode] = {}
        self._defs_in_progress: set[str] = set()

        for name, bound in problem._bounds.items():
            matrix: Matrix = {}
            for t in sorted(bound.upper):
                if t in bound.lower:
                    matrix[t] = TRUE
                else:
                    var = self.cnf.new_var()
                    matrix[t] = self.builder.var(var)
                    self._var_to_entry[var] = (name, t)
                    self.tuple_vars.append(var)
            self._rel_matrices[name] = matrix

        self.symmetry_clauses = 0
        for permutation in problem._symmetries:
            self._emit_lex_leader(permutation)
        problem.last_symmetry_clauses = self.symmetry_clauses

        constraints = list(problem._constraints)
        for name in groups:
            constraints.extend(problem._group_formulas(name))
        root_nodes = [
            self._formula(constraint, {}) for constraint in constraints
        ]
        root = self.builder.and_(root_nodes)
        root_lit = self._tseitin(root)
        self.cnf.add_clause([root_lit])

    def _emit_lex_leader(
        self, permutation: dict[str, dict[Tuple_, Tuple_]]
    ) -> None:
        """Emit the static lex-leader constraint ``x ⪰_lex σ(x)`` for one
        registered symmetry.

        The variable vector runs over the free entries of the permuted
        relations in declaration/allocation order (the order
        ``tuple_vars`` was filled in); fixed points of the permutation
        contribute nothing.  With ``0 < 1`` per component and the first
        difference deciding, ``x ⪰_lex σ(x)`` keeps exactly the orbit
        member whose sorted concrete tuple listing is smallest — aligned
        with :func:`repro.symmetry.witness_sort_key`, which the decode-
        side filter and the representative tie-breaks use.

        Encoding: prefix-equality variables ``e_i ↔ e_{i-1} ∧ (x_i ↔
        y_i)`` (full equivalences, so every auxiliary stays a function of
        the tuple variables — the property decision-literal blocking
        relies on) plus one ordering clause ``e_{i-1} → (x_i ∨ ¬y_i)``
        per position.
        """
        cnf = self.cnf
        pairs: list[tuple[int, int]] = []
        for name, bound in self.problem._bounds.items():
            mapping = permutation.get(name)
            if not mapping:
                continue
            matrix = self._rel_matrices[name]
            for t in sorted(bound.upper):
                u = mapping.get(t)
                if u is None or u == t:
                    continue
                x_node, y_node = matrix[t], matrix[u]
                if not isinstance(x_node, BVar) or not isinstance(y_node, BVar):
                    raise RelationalError(
                        f"symmetry on {name!r} touches a fixed entry"
                    )
                pairs.append((x_node.var, y_node.var))

        emitted = 0
        prev: Optional[int] = None
        for index, (x, y) in enumerate(pairs):
            if prev is None:
                cnf.add_clause_trusted([x, -y])
            else:
                cnf.add_clause_trusted([-prev, x, -y])
            emitted += 1
            if index + 1 == len(pairs):
                break  # no later position needs the equality chain
            e = cnf.new_var()
            if prev is None:
                # e ↔ (x ↔ y)
                cnf.add_clause_trusted([-e, -x, y])
                cnf.add_clause_trusted([-e, x, -y])
                cnf.add_clause_trusted([e, -x, -y])
                cnf.add_clause_trusted([e, x, y])
                emitted += 4
            else:
                # e ↔ prev ∧ (x ↔ y)
                cnf.add_clause_trusted([-e, prev])
                cnf.add_clause_trusted([-e, -x, y])
                cnf.add_clause_trusted([-e, x, -y])
                cnf.add_clause_trusted([e, -prev, -x, -y])
                cnf.add_clause_trusted([e, -prev, x, y])
                emitted += 5
            prev = e
        self.symmetry_clauses += emitted

    def compile_root(self, formulas: Iterable[ast.Formula]) -> int:
        """Compile a conjunction of formulas into the live CNF and return
        its root literal (no unit clause is added — the caller decides how
        the root is asserted, e.g. guarded by an activation literal)."""
        nodes = [self._formula(formula, {}) for formula in formulas]
        return self._tseitin(self.builder.and_(nodes))

    # ------------------------------------------------------------------
    # Compilation memoization
    # ------------------------------------------------------------------
    def _free_vars(self, node) -> frozenset:
        """Quantified-variable names a subtree references (cached by node
        identity; AST nodes stay alive through the constraint list)."""
        key = id(node)
        cached = self._free_vars_cache.get(key)
        if cached is not None:
            return cached
        if isinstance(node, ast.VarRef):
            out = frozenset((node.name,))
        elif isinstance(node, (ast.ForAll, ast.Exists)):
            out = self._free_vars(node.domain) | (
                self._free_vars(node.body) - frozenset((node.var,))
            )
        else:
            out = frozenset()
            for value in vars(node).values():
                if isinstance(value, (ast.Expr, ast.Formula)):
                    out = out | self._free_vars(value)
        self._free_vars_cache[key] = out
        return out

    def _memo_key(self, node, env: dict[str, Atom]) -> tuple:
        """Cache key: node identity plus the env bindings it actually
        reads.  A quantifier body that ignores the bound variable (or a
        guard mentioning none) therefore compiles once, not once per
        domain atom."""
        if not env:
            return (id(node),)
        free = self._free_vars(node)
        if not free:
            return (id(node),)
        return (id(node),) + tuple(
            sorted((name, env[name]) for name in free if name in env)
        )

    # ------------------------------------------------------------------
    # Expression -> matrix
    # ------------------------------------------------------------------
    def _expr(self, expr: ast.Expr, env: dict[str, Atom]) -> Matrix:
        key = self._memo_key(expr, env)
        cached = self._expr_cache.get(key)
        if cached is None:
            cached = self._expr_raw(expr, env)
            self._expr_cache[key] = cached
        return cached

    def _expr_raw(self, expr: ast.Expr, env: dict[str, Atom]) -> Matrix:
        builder = self.builder
        if isinstance(expr, ast.Rel):
            matrix = self._rel_matrices.get(expr.name)
            if matrix is not None:
                return matrix
            definition = self.problem._defs.get(expr.name)
            if definition is None:
                raise RelationalError(f"relation {expr.name!r} was never declared")
            if expr.name in self._defs_in_progress:
                raise RelationalError(f"cyclic definition of relation {expr.name!r}")
            self._defs_in_progress.add(expr.name)
            try:
                matrix = self._expr(definition[1], {})
            finally:
                self._defs_in_progress.discard(expr.name)
            self._rel_matrices[expr.name] = matrix
            return matrix
        if isinstance(expr, ast.Literal):
            return {t: TRUE for t in expr.value.tuples}
        if isinstance(expr, ast.Iden):
            return {(a, a): TRUE for a in self.problem.atoms}
        if isinstance(expr, ast.Univ):
            return {(a,): TRUE for a in self.problem.atoms}
        if isinstance(expr, ast.VarRef):
            if expr.name not in env:
                raise RelationalError(f"unbound variable: {expr.name}")
            return {(env[expr.name],): TRUE}
        if isinstance(expr, ast.Union_):
            left = self._expr(expr.left, env)
            right = self._expr(expr.right, env)
            out: Matrix = dict(left)
            for t, node in right.items():
                out[t] = builder.or_([out.get(t, FALSE), node])
            return out
        if isinstance(expr, ast.Intersect):
            left = self._expr(expr.left, env)
            right = self._expr(expr.right, env)
            return {
                t: builder.and_([left[t], right[t]])
                for t in left.keys() & right.keys()
            }
        if isinstance(expr, ast.Difference):
            left = self._expr(expr.left, env)
            right = self._expr(expr.right, env)
            return {
                t: builder.and_([node, builder.not_(right.get(t, FALSE))])
                for t, node in left.items()
            }
        if isinstance(expr, ast.Join):
            return self._join(self._expr(expr.left, env), self._expr(expr.right, env))
        if isinstance(expr, ast.Product):
            left = self._expr(expr.left, env)
            right = self._expr(expr.right, env)
            return {
                a + b: builder.and_([na, nb])
                for a, na in left.items()
                for b, nb in right.items()
            }
        if isinstance(expr, ast.Transpose):
            return {(b, a): node for (a, b), node in self._expr(expr.arg, env).items()}
        if isinstance(expr, ast.Closure):
            return self._closure(self._expr(expr.arg, env))
        raise RelationalError(f"unknown expression node: {expr!r}")

    def _join(self, left: Matrix, right: Matrix) -> Matrix:
        builder = self.builder
        by_head: dict[Atom, list[tuple[Tuple_, BoolNode]]] = {}
        for t, node in right.items():
            by_head.setdefault(t[0], []).append((t[1:], node))
        combined: dict[Tuple_, list[BoolNode]] = {}
        for t, node in left.items():
            for rest, rnode in by_head.get(t[-1], ()):
                key = t[:-1] + rest
                if not key:
                    raise RelationalError("join of two unary relations has arity 0")
                combined.setdefault(key, []).append(builder.and_([node, rnode]))
        return {t: builder.or_(nodes) for t, nodes in combined.items()}

    def _closure(self, matrix: Matrix) -> Matrix:
        result = dict(matrix)
        steps = max(1, math.ceil(math.log2(max(2, len(self.problem.atoms)))))
        for _ in range(steps):
            squared = self._join(result, result)
            merged = dict(result)
            for t, node in squared.items():
                merged[t] = self.builder.or_([merged.get(t, FALSE), node])
            result = merged
        return result

    # ------------------------------------------------------------------
    # Formula -> circuit
    # ------------------------------------------------------------------
    def _formula(self, formula: ast.Formula, env: dict[str, Atom]) -> BoolNode:
        key = self._memo_key(formula, env)
        cached = self._formula_cache.get(key)
        if cached is None:
            cached = self._formula_raw(formula, env)
            self._formula_cache[key] = cached
        return cached

    def _formula_raw(self, formula: ast.Formula, env: dict[str, Atom]) -> BoolNode:
        builder = self.builder
        if isinstance(formula, ast.TrueF):
            return TRUE
        if isinstance(formula, ast.FalseF):
            return FALSE
        if isinstance(formula, ast.Subset):
            left = self._expr(formula.left, env)
            right = self._expr(formula.right, env)
            return builder.and_(
                [builder.implies(node, right.get(t, FALSE)) for t, node in left.items()]
            )
        if isinstance(formula, ast.Some):
            return builder.or_(self._expr(formula.arg, env).values())
        if isinstance(formula, ast.No):
            return builder.not_(builder.or_(self._expr(formula.arg, env).values()))
        if isinstance(formula, ast.One):
            return self._exactly_one(list(self._expr(formula.arg, env).values()))
        if isinstance(formula, ast.Lone):
            return self._at_most_one(list(self._expr(formula.arg, env).values()))
        if isinstance(formula, ast.Not):
            return builder.not_(self._formula(formula.arg, env))
        if isinstance(formula, ast.And):
            return builder.and_(
                [self._formula(formula.left, env), self._formula(formula.right, env)]
            )
        if isinstance(formula, ast.Or):
            return builder.or_(
                [self._formula(formula.left, env), self._formula(formula.right, env)]
            )
        if isinstance(formula, (ast.ForAll, ast.Exists)):
            domain = self._expr(formula.domain, env)
            for t in domain:
                if len(t) != 1:
                    raise RelationalError("quantifier domain must be unary")
            parts: list[BoolNode] = []
            for (atom,), guard in domain.items():
                extended = {**env, formula.var: atom}
                body = self._formula(formula.body, extended)
                if isinstance(formula, ast.ForAll):
                    parts.append(builder.implies(guard, body))
                else:
                    parts.append(builder.and_([guard, body]))
            if isinstance(formula, ast.ForAll):
                return builder.and_(parts)
            return builder.or_(parts)
        raise RelationalError(f"unknown formula node: {formula!r}")

    #: Above this operand count the pairwise at-most-one encoding's
    #: O(n^2) clauses lose to the linear sequential encoding.
    _SEQUENTIAL_AMO_THRESHOLD = 6

    def _at_most_one(self, nodes: list[BoolNode]) -> BoolNode:
        builder = self.builder
        if len(nodes) <= self._SEQUENTIAL_AMO_THRESHOLD:
            clauses: list[BoolNode] = []
            for i in range(len(nodes)):
                for j in range(i + 1, len(nodes)):
                    clauses.append(
                        builder.or_([builder.not_(nodes[i]), builder.not_(nodes[j])])
                    )
            return builder.and_(clauses)
        # Sequential (Sinz-style) encoding, expressed as a pure circuit so
        # it stays sound under negation: seen_i = x_0 | ... | x_i built as
        # a chain of *nested* binary ors (or2 does not flatten, keeping
        # each link constant-size), and the constraint is that no x_i is
        # true once seen_{i-1} already is.  O(n) nodes instead of O(n^2).
        parts: list[BoolNode] = []
        seen = nodes[0]
        for node in nodes[1:]:
            parts.append(builder.or2(builder.not_(node), builder.not_(seen)))
            seen = builder.or2(node, seen)
        return builder.and_(parts)

    def _exactly_one(self, nodes: list[BoolNode]) -> BoolNode:
        return self.builder.and_([self.builder.or_(nodes), self._at_most_one(nodes)])

    # ------------------------------------------------------------------
    # Tseitin CNF conversion
    # ------------------------------------------------------------------
    def _tseitin(self, node: BoolNode) -> int:
        """Return a literal equisatisfiably representing ``node``.

        Iterative with an explicit worklist: closure and sequential
        at-most-one circuits nest thousands of nodes deep, which would
        overflow the Python recursion limit.  Gate variables are defined
        by full equivalences, so every auxiliary variable is a function of
        the input variables (a property the decision-literal blocking in
        :meth:`Problem.iter_instances` relies on).
        """
        cache = self._tseitin_cache
        cnf = self.cnf

        def true_lit() -> int:
            var = cache.get(TRUE)
            if var is None:
                var = cnf.new_var()
                cnf.add_clause_trusted([var])
                cache[TRUE] = var
            return var

        def known(n: BoolNode) -> Optional[int]:
            """The literal for ``n`` if derivable without new gates."""
            if isinstance(n, BVar):
                return n.var
            if isinstance(n, BTrue):
                return true_lit()
            if isinstance(n, BFalse):
                return -true_lit()
            if isinstance(n, BNot):
                # The builder collapses double negation, so this recursion
                # is at most one level deep.
                inner = known(n.arg)
                return -inner if inner is not None else None
            return cache.get(n)

        stack: list[BoolNode] = [node]
        while stack:
            current = stack[-1]
            if known(current) is not None:
                stack.pop()
                continue
            target = current.arg if isinstance(current, BNot) else current
            if not isinstance(target, (BAnd, BOr)):  # pragma: no cover
                raise RelationalError(f"unknown boolean node: {target!r}")
            pending = [arg for arg in target.args if known(arg) is None]
            if pending:
                stack.extend(pending)
                continue
            arg_lits = [known(arg) for arg in target.args]
            fresh = cnf.new_var()
            if isinstance(target, BAnd):
                for lit in arg_lits:
                    cnf.add_clause_trusted([-fresh, lit])
                cnf.add_clause_trusted([fresh] + [-lit for lit in arg_lits])
            else:
                for lit in arg_lits:
                    cnf.add_clause_trusted([-lit, fresh])
                cnf.add_clause_trusted([-fresh] + arg_lits)
            cache[target] = fresh
        result = known(node)
        assert result is not None
        return result

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, model: dict[int, bool]) -> Instance:
        relations: dict[str, TupleSet] = {}
        for name, bound in self.problem._bounds.items():
            tuples = set(bound.lower)
            matrix = self._rel_matrices[name]
            for t, node in matrix.items():
                if isinstance(node, BVar) and model.get(node.var, False):
                    tuples.add(t)
            relations[name] = TupleSet(bound.arity, tuples)
        return Instance(self.problem.atoms, relations)


class _CnfSlice:
    """A read-only prefix view of a growing CNF — just enough of the
    :class:`~repro.sat.Cnf` surface for :class:`~repro.sat.CdclSolver`
    construction (``num_vars`` + ``clauses``)."""

    __slots__ = ("num_vars", "clauses")

    def __init__(self, num_vars: int, clauses) -> None:
        self.num_vars = num_vars
        self.clauses = clauses


class ProblemSession:
    """Incremental, assumption-scoped solving over one shared translation.

    The Kodkod-style trick behind Alloy's incremental workflows: the
    problem's base constraints are translated to CNF **once**; every
    selectable constraint group compiles (lazily, into the same live
    CNF/Tseitin state) under a fresh *activation literal* ``a`` via the
    implication clause ``¬a ∨ root(group)``.  A query then becomes
    ``solve(assumptions)`` against one persistent :class:`CdclSolver`,
    with assumptions asserting ``a`` for each selected group and ``¬a``
    for every other registered group (so an unselected group can never be
    spuriously activated by a decision).  Learned clauses, VSIDS
    activities, saved phases, and watch lists all persist across queries.

    Enumeration retracts cleanly: :meth:`iter_instances` allocates a
    fresh *tag* variable, assumes it for the run, and — because
    assumptions sit on decision levels — every in-place blocking clause
    automatically carries ``¬tag``; retiring the tag with the unit clause
    ``¬tag`` afterwards permanently satisfies all of them.

    **The constraint-group contract**, in full:

    * groups come from two places — :meth:`Problem.constrain` with
      ``group=`` (declared before the session opens) and
      :meth:`add_group` (registered on the session afterwards, e.g. a
      memory model's predicate only known per query); a name may be used
      by exactly one of the two, and a group is never empty;
    * a group's formulas are compiled **lazily**, on the first query
      selecting it, into the same live CNF/Tseitin state as the base
      translation — unused groups cost nothing;
    * every query (:meth:`solve`, :meth:`iter_instances`) asserts the
      activation literal of each *selected* group and the **negation**
      of every other group ever activated on this session, so a
      previously compiled group can never leak into a query that did
      not select it;
    * queries are non-destructive: UNSAT under a selection, or an
      enumeration abandoned mid-stream, leaves the session fully usable
      (blocking clauses retract through the per-run tag);
    * base constraints (``group=None``) always hold, in every query and
      in :meth:`iter_base_instances`.

    Two further guarantees matter to callers:

    * :meth:`iter_base_instances` enumerates the *base* problem (no
      groups) on a **cold** solver built over the shared compilation's
      base-CNF prefix — clause-for-clause the formula
      :meth:`Problem.iter_instances` would build, so the instance
      sequence is bit-identical to the fresh path.  The synthesis
      pipelines rely on this for byte-identical suites.
    * the fresh path (:meth:`Problem.solve`/:meth:`Problem.iter_instances`
      with ``groups=...``) hard-compiles the same selections and serves
      as the differential oracle for this encoding.
    """

    def __init__(self, problem: Problem) -> None:
        self.problem = problem
        self._compiled = _Compilation(problem)
        cnf = self._compiled.cnf
        self._base_num_vars = cnf.num_vars
        self._base_num_clauses = cnf.num_clauses
        self._solver: Optional[CdclSolver] = None
        self._synced_clauses = 0
        #: group name -> activation variable (insertion-ordered: the
        #: assumption vector is rebuilt in this deterministic order).
        self._activation: dict[str, int] = {}
        #: groups registered directly on the session (on top of any
        #: declared via Problem.constrain(..., group=...)).
        self._dynamic_groups: dict[str, list[ast.Formula]] = {}
        #: counters for the session layer (incremental solves, retained
        #: learned clauses); the persistent solver's own counters are at
        #: ``solver_stats``.
        self.stats = SolverStats()
        self.stats.translations += 1
        self.stats.symmetry_clauses += self._compiled.symmetry_clauses

    # -- group management ----------------------------------------------
    def add_group(self, name: str, formulas: Iterable[ast.Formula]) -> None:
        """Register a selectable constraint group on the session (for
        constraints only known after problem construction, e.g. a memory
        model's predicate)."""
        if name in self._dynamic_groups or name in self.problem._group_constraints:
            raise RelationalError(f"constraint group {name!r} already exists")
        formulas = list(formulas)
        if not formulas:
            raise RelationalError(f"constraint group {name!r} is empty")
        self._dynamic_groups[name] = formulas

    def has_group(self, name: str) -> bool:
        return (
            name in self._dynamic_groups
            or name in self.problem._group_constraints
        )

    def _formulas_of(self, name: str) -> list[ast.Formula]:
        formulas = self._dynamic_groups.get(name)
        if formulas is not None:
            return formulas
        return self.problem._group_formulas(name)

    def _ensure_solver(self) -> CdclSolver:
        if self._solver is None:
            self._solver = create_solver(self._compiled.cnf)
            self._synced_clauses = self._compiled.cnf.num_clauses
        return self._solver

    def _sync_clauses(self) -> None:
        """Push CNF clauses emitted since the last sync into the live
        solver (the "clause pushes between solves" of the session API)."""
        solver = self._ensure_solver()
        clauses = self._compiled.cnf.clauses
        for index in range(self._synced_clauses, len(clauses)):
            solver.add_clause(clauses[index])
        self._synced_clauses = len(clauses)

    def _activate(self, name: str) -> int:
        var = self._activation.get(name)
        if var is None:
            formulas = self._formulas_of(name)
            self._ensure_solver()
            root = self._compiled.compile_root(formulas)
            var = self._compiled.cnf.new_var()
            self._compiled.cnf.add_clause_trusted([-var, root])
            self._sync_clauses()
            self._activation[name] = var
        return var

    def _assumptions(self, groups: Iterable[str]) -> list[int]:
        selected = set()
        for name in groups:
            self._activate(name)
            selected.add(name)
        return [
            var if name in selected else -var
            for name, var in self._activation.items()
        ]

    def _note_query(self, solver: CdclSolver) -> None:
        self.stats.incremental_solves += 1
        self.stats.retained_learned_clauses += solver.learned_count

    # -- queries --------------------------------------------------------
    @property
    def solver_stats(self) -> Optional[SolverStats]:
        """Live counters of the persistent query solver (None before the
        first query)."""
        return self._solver.stats if self._solver is not None else None

    def solve(self, groups: Iterable[str] = ()) -> Optional[Instance]:
        """One satisfying instance under the selected groups, or None.
        UNSAT under a selection leaves the session fully usable."""
        assumptions = self._assumptions(groups)
        solver = self._ensure_solver()
        # Session query boundary: the solver is idle at level 0 with the
        # learned state of every earlier query — the scheduled moment for
        # an inprocessing pass over that database (a no-op unless due).
        solver.maybe_inprocess()
        self._note_query(solver)
        result = solver.solve(assumptions)
        if not result:
            return None
        return self._compiled.decode(result.model)

    def iter_instances(
        self, groups: Iterable[str] = (), limit: Optional[int] = None
    ) -> Iterator[Instance]:
        """Enumerate instances under the selected groups, incrementally.

        Blocking clauses carry this enumeration's fresh activation tag
        (via the decision-literal blocking scheme), and the tag is retired
        with a unit clause when the generator finishes or is closed — so
        a later query, under any selection, sees none of them.
        """
        if limit is not None and limit <= 0:
            return
        assumptions = self._assumptions(groups)
        solver = self._ensure_solver()
        # Session query boundary (see solve()).
        solver.maybe_inprocess()
        tag = self._compiled.cnf.new_var()
        self._note_query(solver)
        count = 0
        try:
            for model in solver.iter_solutions(
                assumptions=[tag] + assumptions
            ):
                yield self._compiled.decode(model)
                count += 1
                if limit is not None and count >= limit:
                    return
        finally:
            solver.add_clause([-tag])

    def iter_base_instances(
        self, limit: Optional[int] = None
    ) -> Iterator[Instance]:
        """Enumerate the base problem (no groups) on a **cold** solver
        over the shared compilation — bit-identical to the fresh
        :meth:`Problem.iter_instances` sequence, without re-translating.

        The session's persistent solver is not involved, so warm-solver
        state can never perturb this enumeration's order (which suite
        byte-determinism rests on); the shared translation is the whole
        point.
        """
        if limit is not None and limit <= 0:
            return
        base = _CnfSlice(
            self._base_num_vars,
            self._compiled.cnf.clauses[: self._base_num_clauses],
        )
        solver = create_solver(base)  # type: ignore[arg-type]
        solver.stats.symmetry_clauses = self._compiled.symmetry_clauses
        self.problem.last_solver_stats = solver.stats
        count = 0
        for model in solver.iter_solutions():
            yield self._compiled.decode(model)
            count += 1
            if limit is not None and count >= limit:
                return

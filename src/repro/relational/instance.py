"""Concrete instances: a universe of atoms plus a binding of relation names
to tuple sets.  Produced by the SAT-backed model finder and consumed by the
evaluator; also constructed directly from candidate executions by
:mod:`repro.mtm`."""

from __future__ import annotations

from typing import Iterable, Mapping

from ..errors import RelationalError
from .tuples import Atom, TupleSet


class Instance:
    """An immutable model: atoms + named relations."""

    def __init__(
        self,
        atoms: Iterable[Atom],
        relations: Mapping[str, TupleSet],
    ) -> None:
        self._atoms = tuple(dict.fromkeys(atoms))  # stable order, deduped
        atom_set = set(self._atoms)
        self._relations = dict(relations)
        for name, ts in self._relations.items():
            stray = ts.atoms() - atom_set
            if stray:
                raise RelationalError(
                    f"relation {name!r} mentions atoms outside the universe: "
                    f"{sorted(stray)}"
                )

    @property
    def atoms(self) -> tuple[Atom, ...]:
        return self._atoms

    @property
    def relations(self) -> Mapping[str, TupleSet]:
        return self._relations

    def relation(self, name: str) -> TupleSet:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise RelationalError(f"unknown relation: {name!r}") from exc

    def with_relation(self, name: str, value: TupleSet) -> "Instance":
        updated = dict(self._relations)
        updated[name] = value
        return Instance(self._atoms, updated)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return set(self._atoms) == set(other._atoms) and self._relations == dict(
            other._relations
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={sorted(ts.tuples)}" for name, ts in sorted(self._relations.items())
        )
        return f"Instance(atoms={list(self._atoms)}, {parts})"

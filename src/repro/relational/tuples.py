"""Concrete relations: immutable sets of atom tuples.

:class:`TupleSet` implements the same operator protocol as the symbolic
expression AST (:mod:`repro.relational.ast`), so axiom definitions written
against the protocol evaluate directly to booleans on concrete candidate
executions — the fast path used by the explicit synthesis engine — while the
identical definitions compile to SAT through the symbolic path.

Operators (mirroring Alloy syntax where practical):

==============  =====================================
``a + b``       union
``a & b``       intersection
``a - b``       difference
``a.dot(b)``    relational join (Alloy ``a.b``)
``a.product(b)``  cross product (Alloy ``a->b``)
``a.t()``       transpose (binary only, Alloy ``~a``)
``a.plus()``    transitive closure (Alloy ``^a``)
``a.star(atoms)``  reflexive-transitive closure over ``atoms``
==============  =====================================
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator

from ..errors import ArityError

Atom = str
Tuple_ = tuple[Atom, ...]


class TupleSet:
    """An immutable relation of fixed arity over named atoms."""

    __slots__ = ("_tuples", "_arity")

    def __init__(self, arity: int, tuples: Iterable[Tuple_] = ()) -> None:
        if arity < 1:
            raise ArityError(f"arity must be >= 1, got {arity}")
        frozen = frozenset(tuple(t) for t in tuples)
        for t in frozen:
            if len(t) != arity:
                raise ArityError(f"tuple {t} has arity {len(t)}, expected {arity}")
        self._tuples = frozen
        self._arity = arity

    @classmethod
    def _raw(cls, arity: int, tuples: frozenset[Tuple_]) -> "TupleSet":
        """Internal fast path: callers guarantee tuples are well-formed
        (used by the algebra operators, whose outputs are valid by
        construction — validation there dominated synthesis profiles)."""
        out = object.__new__(cls)
        out._tuples = tuples
        out._arity = arity
        return out

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty(arity: int = 2) -> "TupleSet":
        return TupleSet(arity)

    @staticmethod
    def unary(atoms: Iterable[Atom]) -> "TupleSet":
        return TupleSet(1, ((a,) for a in atoms))

    @staticmethod
    def pairs(pairs: Iterable[tuple[Atom, Atom]]) -> "TupleSet":
        return TupleSet(2, pairs)

    @staticmethod
    def identity(atoms: Iterable[Atom]) -> "TupleSet":
        return TupleSet(2, ((a, a) for a in atoms))

    @staticmethod
    def total_order(sequence: Iterable[Atom]) -> "TupleSet":
        """Strict total order (a before b) over ``sequence``."""
        items = list(sequence)
        return TupleSet(
            2,
            (
                (items[i], items[j])
                for i in range(len(items))
                for j in range(i + 1, len(items))
            ),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return self._arity

    @property
    def tuples(self) -> AbstractSet[Tuple_]:
        return self._tuples

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def __contains__(self, item: Tuple_) -> bool:
        return tuple(item) in self._tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TupleSet):
            return NotImplemented
        return self._arity == other._arity and self._tuples == other._tuples

    def __hash__(self) -> int:
        return hash((self._arity, self._tuples))

    def __repr__(self) -> str:
        shown = sorted(self._tuples)
        return f"TupleSet({self._arity}, {shown})"

    def atoms(self) -> frozenset[Atom]:
        """All atoms mentioned by any tuple."""
        return frozenset(a for t in self._tuples for a in t)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _check_same_arity(self, other: "TupleSet", op: str) -> None:
        if self._arity != other._arity:
            raise ArityError(
                f"{op} requires equal arities, got {self._arity} and {other._arity}"
            )

    def __add__(self, other: "TupleSet") -> "TupleSet":
        self._check_same_arity(other, "union")
        return TupleSet._raw(self._arity, self._tuples | other._tuples)

    def __and__(self, other: "TupleSet") -> "TupleSet":
        self._check_same_arity(other, "intersection")
        return TupleSet._raw(self._arity, self._tuples & other._tuples)

    def __sub__(self, other: "TupleSet") -> "TupleSet":
        self._check_same_arity(other, "difference")
        return TupleSet._raw(self._arity, self._tuples - other._tuples)

    def dot(self, other: "TupleSet") -> "TupleSet":
        """Relational join: drop the matching inner columns."""
        arity = self._arity + other._arity - 2
        if arity < 1:
            raise ArityError("join of two unary relations has arity 0")
        by_head: dict[Atom, list[Tuple_]] = {}
        for t in other._tuples:
            by_head.setdefault(t[0], []).append(t[1:])
        out: set[Tuple_] = set()
        for t in self._tuples:
            for rest in by_head.get(t[-1], ()):
                out.add(t[:-1] + rest)
        return TupleSet._raw(arity, frozenset(out))

    def product(self, other: "TupleSet") -> "TupleSet":
        return TupleSet._raw(
            self._arity + other._arity,
            frozenset(a + b for a in self._tuples for b in other._tuples),
        )

    def t(self) -> "TupleSet":
        if self._arity != 2:
            raise ArityError(f"transpose requires arity 2, got {self._arity}")
        return TupleSet._raw(2, frozenset((b, a) for (a, b) in self._tuples))

    def plus(self) -> "TupleSet":
        """Transitive closure (binary only)."""
        if self._arity != 2:
            raise ArityError(f"closure requires arity 2, got {self._arity}")
        successors: dict[Atom, set[Atom]] = {}
        for a, b in self._tuples:
            successors.setdefault(a, set()).add(b)
        out: set[tuple[Atom, Atom]] = set()
        for start in list(successors):
            # DFS reachability from start.
            stack = list(successors.get(start, ()))
            visited: set[Atom] = set()
            while stack:
                node = stack.pop()
                if node in visited:
                    continue
                visited.add(node)
                out.add((start, node))
                stack.extend(successors.get(node, ()))
        return TupleSet._raw(2, frozenset(out))

    def star(self, atoms: Iterable[Atom]) -> "TupleSet":
        """Reflexive-transitive closure over the given atom set."""
        return self.plus() + TupleSet.identity(atoms)

    # ------------------------------------------------------------------
    # Predicates (concrete counterparts of formula constructors)
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self._tuples

    def is_subset(self, other: "TupleSet") -> bool:
        self._check_same_arity(other, "subset")
        return self._tuples <= other._tuples

    def is_acyclic(self) -> bool:
        """True iff the binary relation has no cycle (including self-loops)."""
        if self._arity != 2:
            raise ArityError(f"acyclicity requires arity 2, got {self._arity}")
        successors: dict[Atom, list[Atom]] = {}
        for a, b in self._tuples:
            successors.setdefault(a, []).append(b)
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[Atom, int] = {}
        for root in successors:
            if color.get(root, WHITE) != WHITE:
                continue
            stack: list[tuple[Atom, Iterator[Atom]]] = [
                (root, iter(successors.get(root, ())))
            ]
            color[root] = GRAY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    state = color.get(child, WHITE)
                    if state == GRAY:
                        return False
                    if state == WHITE:
                        color[child] = GRAY
                        stack.append((child, iter(successors.get(child, ()))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return True

    def is_irreflexive(self) -> bool:
        if self._arity != 2:
            raise ArityError(f"irreflexivity requires arity 2, got {self._arity}")
        return all(a != b for (a, b) in self._tuples)

    def is_total_order_on(self, atoms: Iterable[Atom]) -> bool:
        """True iff the relation is a strict total order on exactly ``atoms``."""
        atom_list = sorted(set(atoms))
        expected = len(atom_list) * (len(atom_list) - 1) // 2
        if len(self._tuples) != expected:
            return False
        if not self.is_acyclic():
            return False
        atom_set = set(atom_list)
        for a, b in self._tuples:
            if a not in atom_set or b not in atom_set:
                return False
        # Totality: every unordered pair appears in one direction.
        for i, a in enumerate(atom_list):
            for b in atom_list[i + 1 :]:
                if (a, b) not in self._tuples and (b, a) not in self._tuples:
                    return False
        return True

"""Relational logic AST — the reproduction's Alloy-lite.

Expressions denote relations (sets of atom tuples); formulas denote truth
values.  The same operator protocol is implemented by concrete
:class:`~repro.relational.tuples.TupleSet`, so axiom definitions written
with the *generic* helpers at the bottom of this module (``acyclic``,
``no``, ``some``, ``subset``...) work both symbolically (building formulas
for the SAT translation) and concretely (returning plain booleans).

Example — the x86-TSO ``sc_per_loc`` axiom, written once::

    def sc_per_loc(v):
        return acyclic(v.rf + v.co + v.fr + v.po_loc)

where ``v``'s attributes are either ``Expr`` nodes or ``TupleSet``s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Union as TUnion

from ..errors import ArityError, RelationalError
from .tuples import TupleSet


class Expr:
    """Base class for relational expressions."""

    arity: int

    # -- algebra -------------------------------------------------------
    def __add__(self, other: "Expr") -> "Expr":
        return Union_(self, _as_expr(other))

    def __and__(self, other: "Expr") -> "Expr":
        return Intersect(self, _as_expr(other))

    def __sub__(self, other: "Expr") -> "Expr":
        return Difference(self, _as_expr(other))

    def dot(self, other: "Expr") -> "Expr":
        return Join(self, _as_expr(other))

    def product(self, other: "Expr") -> "Expr":
        return Product(self, _as_expr(other))

    def t(self) -> "Expr":
        return Transpose(self)

    def plus(self) -> "Expr":
        return Closure(self)

    def star(self, _atoms: object = None) -> "Expr":
        """Reflexive-transitive closure.  The ``atoms`` argument exists for
        protocol compatibility with TupleSet and is ignored (the universe
        supplies the identity)."""
        return Union_(Closure(self), Iden())

    # -- formulas ------------------------------------------------------
    def in_(self, other: "Expr") -> "Formula":
        return Subset(self, _as_expr(other))

    def eq(self, other: "Expr") -> "Formula":
        other = _as_expr(other)
        return And(Subset(self, other), Subset(other, self))

    def some(self) -> "Formula":
        return Some(self)

    def no_(self) -> "Formula":
        return No(self)

    def one(self) -> "Formula":
        return One(self)

    def lone(self) -> "Formula":
        return Lone(self)


def _as_expr(value: TUnion["Expr", TupleSet]) -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, TupleSet):
        return Literal(value)
    raise RelationalError(f"not a relational expression: {value!r}")


@dataclass(frozen=True)
class Rel(Expr):
    """Reference to a declared relation."""

    name: str
    arity: int = 2

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expr):
    """A constant relation."""

    value: TupleSet

    @property
    def arity(self) -> int:  # type: ignore[override]
        return self.value.arity

    def __repr__(self) -> str:
        return f"lit{sorted(self.value.tuples)}"


@dataclass(frozen=True)
class Iden(Expr):
    """Identity relation over the universe."""

    arity: int = field(default=2, init=False)

    def __repr__(self) -> str:
        return "iden"


@dataclass(frozen=True)
class Univ(Expr):
    """All atoms of the universe (unary)."""

    arity: int = field(default=1, init=False)

    def __repr__(self) -> str:
        return "univ"


@dataclass(frozen=True)
class VarRef(Expr):
    """A quantified variable: a singleton unary relation."""

    name: str
    arity: int = field(default=1, init=False)

    def __repr__(self) -> str:
        return self.name


def _require_same_arity(a: Expr, b: Expr, op: str) -> int:
    if a.arity != b.arity:
        raise ArityError(f"{op} requires equal arities: {a.arity} vs {b.arity}")
    return a.arity


@dataclass(frozen=True)
class Union_(Expr):
    left: Expr
    right: Expr

    @property
    def arity(self) -> int:  # type: ignore[override]
        return _require_same_arity(self.left, self.right, "union")

    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"


@dataclass(frozen=True)
class Intersect(Expr):
    left: Expr
    right: Expr

    @property
    def arity(self) -> int:  # type: ignore[override]
        return _require_same_arity(self.left, self.right, "intersection")

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


@dataclass(frozen=True)
class Difference(Expr):
    left: Expr
    right: Expr

    @property
    def arity(self) -> int:  # type: ignore[override]
        return _require_same_arity(self.left, self.right, "difference")

    def __repr__(self) -> str:
        return f"({self.left!r} - {self.right!r})"


@dataclass(frozen=True)
class Join(Expr):
    left: Expr
    right: Expr

    @property
    def arity(self) -> int:  # type: ignore[override]
        arity = self.left.arity + self.right.arity - 2
        if arity < 1:
            raise ArityError("join of two unary relations has arity 0")
        return arity

    def __repr__(self) -> str:
        return f"({self.left!r}.{self.right!r})"


@dataclass(frozen=True)
class Product(Expr):
    left: Expr
    right: Expr

    @property
    def arity(self) -> int:  # type: ignore[override]
        return self.left.arity + self.right.arity

    def __repr__(self) -> str:
        return f"({self.left!r}->{self.right!r})"


@dataclass(frozen=True)
class Transpose(Expr):
    arg: Expr

    @property
    def arity(self) -> int:  # type: ignore[override]
        if self.arg.arity != 2:
            raise ArityError(f"transpose requires arity 2, got {self.arg.arity}")
        return 2

    def __repr__(self) -> str:
        return f"~{self.arg!r}"


@dataclass(frozen=True)
class Closure(Expr):
    arg: Expr

    @property
    def arity(self) -> int:  # type: ignore[override]
        if self.arg.arity != 2:
            raise ArityError(f"closure requires arity 2, got {self.arg.arity}")
        return 2

    def __repr__(self) -> str:
        return f"^{self.arg!r}"


# ----------------------------------------------------------------------
# Formulas
# ----------------------------------------------------------------------
class Formula:
    def and_(self, other: "Formula") -> "Formula":
        return And(self, other)

    def or_(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def implies(self, other: "Formula") -> "Formula":
        return Or(Not(self), other)

    def not_(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueF(Formula):
    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseF(Formula):
    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Subset(Formula):
    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return f"({self.left!r} in {self.right!r})"


@dataclass(frozen=True)
class Some(Formula):
    arg: Expr

    def __repr__(self) -> str:
        return f"some {self.arg!r}"


@dataclass(frozen=True)
class No(Formula):
    arg: Expr

    def __repr__(self) -> str:
        return f"no {self.arg!r}"


@dataclass(frozen=True)
class One(Formula):
    arg: Expr

    def __repr__(self) -> str:
        return f"one {self.arg!r}"


@dataclass(frozen=True)
class Lone(Formula):
    arg: Expr

    def __repr__(self) -> str:
        return f"lone {self.arg!r}"


@dataclass(frozen=True)
class Not(Formula):
    arg: Formula

    def __repr__(self) -> str:
        return f"!{self.arg!r}"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} && {self.right!r})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} || {self.right!r})"


@dataclass(frozen=True)
class ForAll(Formula):
    var: str
    domain: Expr
    body: Formula

    def __repr__(self) -> str:
        return f"(all {self.var}: {self.domain!r} | {self.body!r})"


@dataclass(frozen=True)
class Exists(Formula):
    var: str
    domain: Expr
    body: Formula

    def __repr__(self) -> str:
        return f"(some {self.var}: {self.domain!r} | {self.body!r})"


def forall(var: str, domain: Expr, body: Callable[[VarRef], Formula]) -> Formula:
    """``all var: domain | body(var)`` with a fresh variable reference."""
    ref = VarRef(var)
    return ForAll(var, _as_expr(domain), body(ref))


def exists(var: str, domain: Expr, body: Callable[[VarRef], Formula]) -> Formula:
    ref = VarRef(var)
    return Exists(var, _as_expr(domain), body(ref))


def conj(formulas: Iterable[Formula]) -> Formula:
    """Conjunction of a formula sequence (TrueF if empty)."""
    result: Formula | None = None
    for formula in formulas:
        result = formula if result is None else And(result, formula)
    return result if result is not None else TrueF()


def disj(formulas: Iterable[Formula]) -> Formula:
    result: Formula | None = None
    for formula in formulas:
        result = formula if result is None else Or(result, formula)
    return result if result is not None else FalseF()


# ----------------------------------------------------------------------
# Generic (concrete-or-symbolic) axiom helpers
# ----------------------------------------------------------------------
RelationLike = TUnion[Expr, TupleSet]
Truthy = TUnion[Formula, bool]


def acyclic(relation: RelationLike) -> Truthy:
    """No cycles in a binary relation.

    Concretely: graph search.  Symbolically: ``no (^r & iden)``.
    """
    if isinstance(relation, TupleSet):
        return relation.is_acyclic()
    return No(Intersect(Closure(_as_expr(relation)), Iden()))


def irreflexive(relation: RelationLike) -> Truthy:
    if isinstance(relation, TupleSet):
        return relation.is_irreflexive()
    return No(Intersect(_as_expr(relation), Iden()))


def no(relation: RelationLike) -> Truthy:
    """The relation is empty."""
    if isinstance(relation, TupleSet):
        return relation.is_empty()
    return No(_as_expr(relation))


def some(relation: RelationLike) -> Truthy:
    if isinstance(relation, TupleSet):
        return bool(relation)
    return Some(_as_expr(relation))


def subset(left: RelationLike, right: RelationLike) -> Truthy:
    if isinstance(left, TupleSet) and isinstance(right, TupleSet):
        return left.is_subset(right)
    return Subset(_as_expr(left), _as_expr(right))

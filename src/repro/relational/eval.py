"""Reference evaluator: relational AST against a concrete :class:`Instance`.

Used to (a) check candidate instances against formulas without going through
SAT, and (b) cross-validate the symbolic translator in the test suite — the
translator and this evaluator must agree on every (formula, instance) pair.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import RelationalError
from . import ast
from .instance import Instance
from .tuples import Atom, TupleSet

Env = Mapping[str, Atom]


def eval_expr(expr: ast.Expr, instance: Instance, env: Env | None = None) -> TupleSet:
    """Evaluate an expression to a concrete tuple set."""
    env = env or {}
    if isinstance(expr, ast.Rel):
        return instance.relation(expr.name)
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Iden):
        return TupleSet.identity(instance.atoms)
    if isinstance(expr, ast.Univ):
        return TupleSet.unary(instance.atoms)
    if isinstance(expr, ast.VarRef):
        if expr.name not in env:
            raise RelationalError(f"unbound variable: {expr.name}")
        return TupleSet.unary([env[expr.name]])
    if isinstance(expr, ast.Union_):
        return eval_expr(expr.left, instance, env) + eval_expr(expr.right, instance, env)
    if isinstance(expr, ast.Intersect):
        return eval_expr(expr.left, instance, env) & eval_expr(expr.right, instance, env)
    if isinstance(expr, ast.Difference):
        return eval_expr(expr.left, instance, env) - eval_expr(expr.right, instance, env)
    if isinstance(expr, ast.Join):
        return eval_expr(expr.left, instance, env).dot(
            eval_expr(expr.right, instance, env)
        )
    if isinstance(expr, ast.Product):
        return eval_expr(expr.left, instance, env).product(
            eval_expr(expr.right, instance, env)
        )
    if isinstance(expr, ast.Transpose):
        return eval_expr(expr.arg, instance, env).t()
    if isinstance(expr, ast.Closure):
        return eval_expr(expr.arg, instance, env).plus()
    raise RelationalError(f"unknown expression node: {expr!r}")


def eval_formula(
    formula: ast.Formula, instance: Instance, env: Env | None = None
) -> bool:
    """Evaluate a formula to a boolean."""
    env = env or {}
    if isinstance(formula, ast.TrueF):
        return True
    if isinstance(formula, ast.FalseF):
        return False
    if isinstance(formula, ast.Subset):
        return eval_expr(formula.left, instance, env).is_subset(
            eval_expr(formula.right, instance, env)
        )
    if isinstance(formula, ast.Some):
        return bool(eval_expr(formula.arg, instance, env))
    if isinstance(formula, ast.No):
        return not eval_expr(formula.arg, instance, env)
    if isinstance(formula, ast.One):
        return len(eval_expr(formula.arg, instance, env)) == 1
    if isinstance(formula, ast.Lone):
        return len(eval_expr(formula.arg, instance, env)) <= 1
    if isinstance(formula, ast.Not):
        return not eval_formula(formula.arg, instance, env)
    if isinstance(formula, ast.And):
        return eval_formula(formula.left, instance, env) and eval_formula(
            formula.right, instance, env
        )
    if isinstance(formula, ast.Or):
        return eval_formula(formula.left, instance, env) or eval_formula(
            formula.right, instance, env
        )
    if isinstance(formula, ast.ForAll):
        domain = eval_expr(formula.domain, instance, env)
        if domain.arity != 1:
            raise RelationalError("quantifier domain must be unary")
        for (atom,) in domain:
            extended = {**env, formula.var: atom}
            if not eval_formula(formula.body, instance, extended):
                return False
        return True
    if isinstance(formula, ast.Exists):
        domain = eval_expr(formula.domain, instance, env)
        if domain.arity != 1:
            raise RelationalError("quantifier domain must be unary")
        for (atom,) in domain:
            extended = {**env, formula.var: atom}
            if eval_formula(formula.body, instance, extended):
                return True
        return False
    raise RelationalError(f"unknown formula node: {formula!r}")

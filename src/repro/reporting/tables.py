"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table.

    >>> print(render_table(["a", "b"], [[1, 22]]))
    a | b
    --+---
    1 | 22
    """
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in materialized:
        lines.append(
            " | ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)
            ).rstrip()
        )
    return "\n".join(lines)


def render_series_table(
    series: dict[str, dict[int, object]],
    x_label: str,
    title: str = "",
    missing: str = "-",
) -> str:
    """Table with one row per x value and one column per named series
    (the natural shape for the Fig 9 data)."""
    xs = sorted({x for values in series.values() for x in values})
    names = list(series)
    headers = [x_label] + names
    rows = []
    for x in xs:
        row: list[object] = [x]
        for name in names:
            value = series[name].get(x, None)
            if isinstance(value, float):
                row.append(f"{value:.3f}")
            else:
                row.append(missing if value is None else value)
        rows.append(row)
    return render_table(headers, rows, title=title)

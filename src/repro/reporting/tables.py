"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table.

    >>> print(render_table(["a", "b"], [[1, 22]]))
    a | b
    --+---
    1 | 22
    """
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in materialized:
        lines.append(
            " | ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)
            ).rstrip()
        )
    return "\n".join(lines)


def render_sat_counters(stats) -> str:
    """The SAT backend's counter table for one run's
    :class:`~repro.synth.SuiteStats`: core (deterministic) solver
    counters plus the incremental-session counters — how many programs
    got a session, how many translations ran vs were served by session
    reuse, and how much warm-solver state assumption queries retained."""
    rows = [
        ("decisions", stats.sat_decisions),
        ("propagations", stats.sat_propagations),
        ("conflicts", stats.sat_conflicts),
        ("learned clauses", stats.sat_learned_clauses),
        ("sessions opened", stats.sat_sessions),
        ("translations", stats.sat_translations),
        ("translations avoided", stats.sat_translations_avoided),
        ("incremental solves", stats.sat_incremental_solves),
        ("retained learned clauses", stats.sat_retained_learned_clauses),
    ]
    return render_table(["sat counter", "value"], rows)


def render_symmetry_counters(stats) -> str:
    """The symmetry subsystem's counter table for one run's
    :class:`~repro.synth.SuiteStats`: how many programs admitted
    witness-orbit pruning, how many witnesses a representative stood in
    for, and how many duplicate isomorphic programs were replayed from
    the orbit cache instead of being translated (all deterministic for a
    fixed configuration)."""
    rows = [
        ("symmetric programs", stats.symmetric_programs),
        ("witnesses orbit-pruned", stats.orbit_witnesses_pruned),
        ("program orbit replays", stats.orbit_replays),
        ("lex-leader clauses", stats.sat_symmetry_clauses),
    ]
    return render_table(["symmetry counter", "value"], rows)


def render_stage_profile(stats, runtime_s: float) -> str:
    """``--profile`` output: per-stage wall time as a JSON document.

    Stage semantics: ``translate`` / ``solve`` / ``decode`` are the
    witness-session breakdown of candidate production (recorded when the
    work actually runs — replays from the session cache add nothing);
    ``enumerate`` is total time pulling witnesses in the pipeline loop
    (on the session path it overlaps the breakdown, covering both live
    production and cached replay); ``classify`` and ``minimality`` are
    consumption stages.
    The document is rendered as a view over the unified metrics
    registry (:func:`repro.obs.registry_from_suite_stats` is the naming
    authority for the ``stage_s.*`` gauges), so ``--profile``, the run
    manifests, and trace exports all agree by construction.
    """
    import json

    from ..obs import registry_from_suite_stats

    prefix = "stage_s."
    gauges = registry_from_suite_stats(stats).gauges
    stages = {name[len(prefix):]: round(value, 6)
              for name, value in sorted(gauges.items())
              if name.startswith(prefix)}
    return json.dumps(
        {
            "kind": "stage-profile",
            "schema": 1,
            "stages": stages,
            "total_s": round(runtime_s, 6),
        },
        indent=2,
        sort_keys=True,
    )


def render_series_table(
    series: dict[str, dict[int, object]],
    x_label: str,
    title: str = "",
    missing: str = "-",
) -> str:
    """Table with one row per x value and one column per named series
    (the natural shape for the Fig 9 data)."""
    xs = sorted({x for values in series.values() for x in values})
    names = list(series)
    headers = [x_label] + names
    rows = []
    for x in xs:
        row: list[object] = [x]
        for name in names:
            value = series[name].get(x, None)
            if isinstance(value, float):
                row.append(f"{value:.3f}")
            else:
                row.append(missing if value is None else value)
        rows.append(row)
    return render_table(headers, rows, title=title)

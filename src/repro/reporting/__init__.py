"""Experiment drivers and plain-text reporting (tables, ASCII figures)."""

from .experiments import (
    DEFAULT_CORPUS_BOUNDS,
    DEFAULT_MAX_BOUNDS,
    comparison_corpus,
    fig9_sweep,
    render_comparison,
    render_fig9a,
    render_fig9b,
    run_coatcheck_comparison,
    tlb_causality_attribution,
)
from .figures import render_log_plot
from .tables import render_series_table, render_table

__all__ = [
    "render_table",
    "render_series_table",
    "render_log_plot",
    "fig9_sweep",
    "render_fig9a",
    "render_fig9b",
    "tlb_causality_attribution",
    "comparison_corpus",
    "run_coatcheck_comparison",
    "render_comparison",
    "DEFAULT_MAX_BOUNDS",
    "DEFAULT_CORPUS_BOUNDS",
]

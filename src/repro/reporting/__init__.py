"""Experiment drivers and plain-text reporting (tables, ASCII figures)."""

from .experiments import (
    DEFAULT_CORPUS_BOUNDS,
    DEFAULT_MAX_BOUNDS,
    comparison_corpus,
    fig9_sweep,
    render_comparison,
    render_fig9a,
    render_fig9b,
    resolve_max_bounds,
    resolve_sweep_budget,
    run_coatcheck_comparison,
    tlb_causality_attribution,
)
from .conformance import (
    amd_bug_case_study,
    render_amd_bug_report,
    render_conformance_cell,
    render_conformance_matrix,
    render_pair_cache_summary,
)
from .figures import render_log_plot
from .orchestration import render_shard_runtimes, render_sweep_cache_summary
from .tables import (
    render_sat_counters,
    render_symmetry_counters,
    render_series_table,
    render_stage_profile,
    render_table,
)

__all__ = [
    "render_table",
    "render_sat_counters",
    "render_symmetry_counters",
    "render_stage_profile",
    "render_series_table",
    "render_log_plot",
    "render_shard_runtimes",
    "render_sweep_cache_summary",
    "amd_bug_case_study",
    "render_amd_bug_report",
    "render_conformance_cell",
    "render_conformance_matrix",
    "render_pair_cache_summary",
    "fig9_sweep",
    "render_fig9a",
    "render_fig9b",
    "tlb_causality_attribution",
    "comparison_corpus",
    "run_coatcheck_comparison",
    "render_comparison",
    "DEFAULT_MAX_BOUNDS",
    "DEFAULT_CORPUS_BOUNDS",
    "resolve_max_bounds",
    "resolve_sweep_budget",
]

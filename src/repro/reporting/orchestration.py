"""Reporting for orchestrated (sharded) synthesis runs.

Renders the per-shard runtime breakdown of one :class:`~repro.orchestrate.
runner.OrchestratedResult` and the cache/resume summary of a sweep — the
operational counterpart to the paper-facing Fig 9 tables.
"""

from __future__ import annotations

from typing import Iterable

from .tables import render_table


def render_shard_runtimes(orchestrated, title: str = "") -> str:
    """Per-shard table: work unit, programs, executions, ELTs, runtime."""
    rows = []
    for shard in orchestrated.shard_results:
        rows.append(
            (
                shard.spec.label,
                shard.stats.programs_enumerated,
                shard.stats.executions_enumerated,
                shard.stats.unique_programs,
                f"{shard.runtime_s:.3f}",
                "yes" if shard.timed_out else "",
            )
        )
    table = render_table(
        ["shard", "programs", "executions", "elts", "runtime_s", "timed_out"],
        rows,
        title=title
        or (
            f"per-shard runtimes ({orchestrated.jobs} worker(s), "
            f"{len(orchestrated.shard_specs)} shard(s))"
        ),
    )
    footer = (
        f"cross-shard duplicate ELTs merged: "
        f"{orchestrated.report.cross_shard_duplicates}"
    )
    cache_was_consulted = (
        orchestrated.suite_cache_hit
        or orchestrated.shard_cache_hits
        or orchestrated.shard_cache_misses
    )
    if cache_was_consulted:
        footer = (
            f"cache: suite_hit={orchestrated.suite_cache_hit} "
            f"shard_hits={orchestrated.shard_cache_hits} "
            f"shard_misses={orchestrated.shard_cache_misses}; " + footer
        )
    failures = getattr(orchestrated, "failures", ())
    if failures:
        lost = ", ".join(
            f"{f.label} ({f.kind}, {f.attempts} attempt(s))" for f in failures
        )
        footer += f"\nDEGRADED: quarantined shard(s) missing from merge: {lost}"
    resilience = getattr(orchestrated, "resilience", None)
    if resilience is not None and resilience.any_event():
        footer += (
            f"\nresilience: retries={resilience.retries} "
            f"pool_rebuilds={resilience.pool_rebuilds} "
            f"shard_timeouts={resilience.shard_timeouts} "
            f"quarantined={resilience.quarantined}"
        )
    return f"{table}\n{footer}"


def render_sweep_cache_summary(records: Iterable) -> str:
    """One row per sweep point: where its result came from."""
    rows = []
    for record in records:
        rows.append(
            (
                record.result.target_axiom or "any",
                record.result.bound,
                record.result.count,
                "cache" if record.suite_cache_hit else "computed",
                f"{record.result.stats.runtime_s:.3f}",
                "yes" if record.result.stats.timed_out else "",
                "yes" if record.result.stats.degraded else "",
            )
        )
    return render_table(
        ["axiom", "bound", "elts", "source", "runtime_s", "timed_out", "degraded"],
        rows,
        title="sweep points (resume/cache summary)",
    )

"""Reporting for differential conformance runs.

Renders one pair's :class:`~repro.conformance.ConformanceCell`, the
all-pairs :class:`~repro.conformance.ConformanceMatrix`, and the
paper-style x86t-vs-AMD-erratum comparison (§I, §VII: the synthesized
ELTs that distinguish the correct x86t spec from hardware whose INVLPG
fails to invalidate TLB entries).
"""

from __future__ import annotations

from typing import Optional

from .tables import render_table

#: Grid symbols for the refinement verdicts (legend printed under the
#: matrix): the reference row is compared against the subject column.
VERDICT_SYMBOLS = {
    "equivalent": "=",
    "reference-stronger": "<",  # reference permits strictly less
    "subject-stronger": ">",
    "incomparable": "#",
}


def render_conformance_cell(cell, title: str = "") -> str:
    """Agreement-bucket counts plus the refinement verdict for one pair."""
    counts = cell.counts()
    table = render_table(
        ["agreement", "executions"],
        sorted(counts.items()),
        title=title
        or (
            f"conformance: {cell.reference} (reference) vs "
            f"{cell.subject} (subject) @ bound {cell.bound}"
        ),
    )
    stats = cell.stats
    lines = [
        table,
        (
            f"verdict: {cell.verdict.value}; "
            f"{cell.count} discriminating ELT(s) "
            f"({stats.programs_enumerated} programs, "
            f"{stats.executions_enumerated} executions, "
            f"{stats.runtime_s:.2f}s"
            f"{', TIMED OUT' if stats.timed_out else ''})"
        ),
    ]
    return "\n".join(lines)


def render_conformance_matrix(matrix, models: Optional[dict] = None) -> str:
    """The verdict grid plus the per-pair detail table.

    With ``models`` (name -> :class:`~repro.models.MemoryModel`), pairs
    whose axiom sets promise refinement are annotated, tying the observed
    matrix back to the catalog's syntactic inclusions.
    """
    names = list(matrix.models)
    grid_rows = []
    for ref in names:
        row: list = [ref]
        for sub in names:
            if ref == sub:
                row.append(".")
            elif (ref, sub) in matrix.cells:
                row.append(VERDICT_SYMBOLS[matrix.verdict(ref, sub).value])
            else:
                row.append("?")
        grid_rows.append(row)
    grid = render_table(
        ["ref \\ sub"] + names,
        grid_rows,
        title=f"conformance matrix @ bound {matrix.bound}",
    )
    legend = (
        "legend: < reference stronger (permits strictly less), "
        "> subject stronger, = equivalent at this bound, # incomparable"
    )

    expected = set()
    if models is not None:
        from ..conformance import expected_refinements

        expected = set(expected_refinements(models))
    detail_rows = []
    for ref, sub in matrix.pairs():
        cell = matrix.cells[(ref, sub)]
        counts = cell.counts()
        detail_rows.append(
            (
                ref,
                sub,
                counts["both-permit"],
                counts["both-forbid"],
                counts["only-reference-forbids"],
                counts["only-subject-forbids"],
                cell.count,
                cell.verdict.value
                + (" (axiom subset)" if (ref, sub) in expected else ""),
            )
        )
    detail = render_table(
        [
            "reference",
            "subject",
            "both permit",
            "both forbid",
            "only ref forbids",
            "only sub forbids",
            "disc. ELTs",
            "verdict",
        ],
        detail_rows,
    )
    parts = [grid, legend, "", detail]
    parts.append(
        f"\ndiscriminating ELTs across all pairs: {matrix.discriminating_total}"
    )
    return "\n".join(parts)


def amd_bug_case_study(
    bound: int = 5, witness_backend: str = "explicit"
):
    """Run the paper's differencing case study — x86t_elt (reference)
    vs x86t_amd_bug (subject) — and return its cell.  Bound 5 is the
    smallest at which the fig 11-style stale-read ELT fits; render with
    :func:`render_amd_bug_report`."""
    from ..conformance import DiffConfig, diff_models
    from ..models import x86t_amd_bug, x86t_elt
    from ..synth import SynthesisConfig

    return diff_models(
        DiffConfig(
            base=SynthesisConfig(
                bound=bound,
                model=x86t_elt(),
                witness_backend=witness_backend,
            ),
            subject=x86t_amd_bug(),
        )
    )


def render_amd_bug_report(cell) -> str:
    """The paper's x86t-vs-AMD-erratum comparison (§I, §VII) as a table:
    how the synthesized candidate space splits between the correct
    x86t_elt spec and the invlpg-dropping bug model, and which ELTs
    expose the bug."""
    counts = cell.counts()
    rows = [
        ("both models agree (permit)", counts["both-permit"]),
        ("both models agree (forbid)", counts["both-forbid"]),
        (
            f"forbidden by {cell.reference}, observable on buggy hw",
            counts["only-reference-forbids"],
        ),
        (
            f"forbidden only by {cell.subject}",
            counts["only-subject-forbids"],
        ),
        ("distinguishing ELTs (minimal, unique)", cell.count),
    ]
    table = render_table(
        ["outcome class", "count"],
        rows,
        title=(
            f"{cell.reference} vs {cell.subject} @ bound {cell.bound} — "
            "the AMD-erratum differencing case study"
        ),
    )
    detail = "\n".join(
        f"  ELT {index}: violates {', '.join(elt.violated_axioms)} "
        f"({elt.outcome_count} distinct outcome(s))"
        for index, elt in enumerate(cell.elts, start=1)
    )
    if detail:
        table = f"{table}\n{detail}"
    return table


def render_pair_cache_summary(records) -> str:
    """One row per pair of an all-pairs run: where its cell came from."""
    rows = []
    for record in records:
        rows.append(
            (
                record.cell.reference,
                record.cell.subject,
                record.cell.count,
                "cache" if record.cell_cache_hit else "computed",
                f"{record.cell.stats.runtime_s:.3f}",
                "yes" if record.cell.stats.timed_out else "",
            )
        )
    return render_table(
        ["reference", "subject", "disc. ELTs", "source", "runtime_s", "timed_out"],
        rows,
        title="all-pairs run (resume/cache summary)",
    )

"""ASCII renditions of the paper's figures (log-scale scatter plots).

Fig 9a plots ELT-suite sizes and Fig 9b synthesis runtimes against the
instruction bound, both on logarithmic y axes; :func:`render_log_plot`
reproduces that shape in plain text so benchmark output is self-contained.
"""

from __future__ import annotations

import math
from typing import Mapping

_MARKERS = "ox+*#@%&"


def render_log_plot(
    series: Mapping[str, Mapping[int, float]],
    title: str,
    y_label: str,
    height: int = 12,
    min_positive: float = 1e-3,
) -> str:
    """Plot named series (x -> y) with a log10 y-axis.

    Zero/negative values are clamped to ``min_positive`` (log axes cannot
    show zero — the paper's Fig 9 simply omits empty suites)."""
    points: dict[str, dict[int, float]] = {
        name: {x: max(float(y), min_positive) for x, y in values.items()}
        for name, values in series.items()
        if values
    }
    if not points:
        return f"{title}\n(no data)"
    xs = sorted({x for values in points.values() for x in values})
    all_y = [y for values in points.values() for y in values.values()]
    lo = math.floor(math.log10(min(all_y)))
    hi = math.ceil(math.log10(max(all_y)))
    if hi == lo:
        hi = lo + 1
    rows: list[str] = [title]
    col_width = max(len(str(x)) for x in xs) + 1
    for level in range(height, -1, -1):
        log_y = lo + (hi - lo) * level / height
        cells = []
        for x in xs:
            marker = " "
            for index, (name, values) in enumerate(points.items()):
                if x not in values:
                    continue
                value_level = (
                    (math.log10(values[x]) - lo) / (hi - lo) * height
                )
                if abs(value_level - level) < 0.5:
                    marker = _MARKERS[index % len(_MARKERS)]
            cells.append(marker.center(col_width))
        axis = f"1e{log_y:+.1f}" if level % 3 == 0 else ""
        rows.append(f"{axis:>8} |" + "".join(cells))
    rows.append(" " * 8 + "-+" + "-" * (col_width * len(xs)))
    rows.append(
        " " * 8 + "  " + "".join(str(x).center(col_width) for x in xs)
    )
    rows.append(" " * 10 + "instruction bound" + f"   (y: {y_label})")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(points)
    )
    rows.append(" " * 8 + legend)
    return "\n".join(rows)

"""Shared experiment drivers behind the benchmarks, examples and
EXPERIMENTS.md.

Each function reproduces one evaluation artifact of the paper:

* :func:`fig9_sweep` — the per-axiom bound sweep behind Figs 9a/9b;
* :func:`render_fig9a` / :func:`render_fig9b` — the two figures;
* :func:`comparison_corpus` + :func:`run_coatcheck_comparison` — §VI-B;
* :func:`tlb_causality_attribution` — the "5 of 140 attributed to
  tlb_causality" diagnostic count (§V-A2), at our reachable bounds.

Sweeps are cached per parameter set so Fig 9a and Fig 9b (and the unique
ELT totals) share one synthesis run.
"""

from __future__ import annotations

import os
from typing import Mapping, Optional

from ..models import X86T_ELT_AXIOM_NAMES, x86t_elt
from ..synth import SweepResult, SynthesisConfig, synthesize, synthesize_sweep
from ..synth.canon import ProgramKey
from .figures import render_log_plot
from .tables import render_series_table, render_table

#: Default per-axiom maximum bounds: chosen so the full sweep finishes in
#: a few minutes of pure Python (the paper ran each point up to one week
#: on a server, reaching bounds 10-17).  Override via environment:
#: ``REPRO_FIG9_MAX_BOUND`` (single cap) or ``REPRO_FIG9_BUDGET_S``.
DEFAULT_MAX_BOUNDS: Mapping[str, int] = {
    "sc_per_loc": 8,
    "rmw_atomicity": 9,
    "causality": 8,
    "invlpg": 8,
    "tlb_causality": 8,
}

_SWEEP_CACHE: dict[tuple, SweepResult] = {}


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name)
    return int(raw) if raw else None


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name)
    return float(raw) if raw else None


def resolve_max_bounds(
    max_bounds: Optional[Mapping[str, int]] = None,
    axioms: Optional[list[str]] = None,
) -> Mapping[str, int]:
    """The per-axiom bound caps a sweep should use: explicit mapping,
    else ``REPRO_FIG9_MAX_BOUND``, else :data:`DEFAULT_MAX_BOUNDS`;
    optionally restricted to ``axioms``."""
    if max_bounds is None:
        cap = _env_int("REPRO_FIG9_MAX_BOUND")
        if cap is not None:
            max_bounds = {axiom: cap for axiom in X86T_ELT_AXIOM_NAMES}
        else:
            max_bounds = DEFAULT_MAX_BOUNDS
    if axioms is not None:
        max_bounds = {
            axiom: bound
            for axiom, bound in max_bounds.items()
            if axiom in axioms
        }
    return max_bounds


def resolve_sweep_budget(
    time_budget_per_run_s: Optional[float] = None,
) -> float:
    """The per-run time budget: explicit value, else
    ``REPRO_FIG9_BUDGET_S``, else 120 seconds."""
    if time_budget_per_run_s is not None:
        return time_budget_per_run_s
    return _env_float("REPRO_FIG9_BUDGET_S") or 120.0


def fig9_sweep(
    max_bounds: Optional[Mapping[str, int]] = None,
    time_budget_per_run_s: Optional[float] = None,
    witness_backend: str = "explicit",
    incremental: bool = True,
    symmetry: bool = True,
) -> SweepResult:
    """Run (or fetch from cache) the Fig 9 per-axiom bound sweep."""
    max_bounds = resolve_max_bounds(max_bounds)
    time_budget_per_run_s = resolve_sweep_budget(time_budget_per_run_s)
    key = (
        tuple(sorted(max_bounds.items())),
        time_budget_per_run_s,
        witness_backend,
        incremental,
        symmetry,
    )
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    sweep = SweepResult()
    for axiom in X86T_ELT_AXIOM_NAMES:
        if axiom not in max_bounds:
            continue
        base = SynthesisConfig(
            bound=max_bounds[axiom],
            model=x86t_elt(),
            witness_backend=witness_backend,
            incremental=incremental,
            symmetry=symmetry,
        )
        partial = synthesize_sweep(
            base,
            axioms=[axiom],
            min_bound=4,
            max_bound=max_bounds[axiom],
            time_budget_per_run_s=time_budget_per_run_s,
        )
        sweep.points.extend(partial.points)
        sweep.skipped.extend(partial.skipped)
    _SWEEP_CACHE[key] = sweep
    return sweep


def render_fig9a(sweep: SweepResult) -> str:
    counts = {
        axiom: {b: c for b, c in by_bound.items() if c > 0}
        for axiom, by_bound in sweep.counts().items()
    }
    table = render_series_table(
        sweep.counts(),
        x_label="bound",
        title="Fig 9a — synthesized ELTs per per-axiom suite",
    )
    plot = render_log_plot(
        counts, title="", y_label="number of ELTs (log)"
    )
    unique = len(sweep.unique_elts())
    return f"{table}\n\n{plot}\n\nunique ELT programs across all suites: {unique}"


def render_fig9b(sweep: SweepResult) -> str:
    table = render_series_table(
        sweep.runtimes(),
        x_label="bound",
        title="Fig 9b — synthesis runtime (s) per per-axiom suite",
    )
    plot = render_log_plot(
        sweep.runtimes(), title="", y_label="runtime seconds (log)"
    )
    return f"{table}\n\n{plot}"


def tlb_causality_attribution(sweep: SweepResult) -> tuple[int, int]:
    """(ELTs in the tlb_causality suite, unique ELTs overall) — the §V-A2
    diagnostic attribution (paper: 5 of 140)."""
    tlb_keys: set[ProgramKey] = set()
    for point in sweep.points:
        if point.axiom == "tlb_causality":
            tlb_keys |= point.result.keys()
    return len(tlb_keys), len(sweep.unique_elts())


# ----------------------------------------------------------------------
# §VI-B comparison
# ----------------------------------------------------------------------
DEFAULT_CORPUS_BOUNDS: Mapping[str, int] = {
    "sc_per_loc": 6,
    "rmw_atomicity": 7,
    "causality": 6,
    "invlpg": 5,
    "tlb_causality": 4,
}


def comparison_corpus(
    bounds: Optional[Mapping[str, int]] = None,
) -> set[ProgramKey]:
    """Union of per-axiom synthesized program keys for §VI-B."""
    bounds = bounds or DEFAULT_CORPUS_BOUNDS
    model = x86t_elt()
    keys: set[ProgramKey] = set()
    for axiom, bound in bounds.items():
        result = synthesize(
            SynthesisConfig(bound=bound, model=model, target_axiom=axiom)
        )
        keys |= result.keys()
    return keys


def run_coatcheck_comparison(
    corpus: Optional[set[ProgramKey]] = None,
):
    from ..litmus import coatcheck_suite, compare_suite

    corpus = corpus if corpus is not None else comparison_corpus()
    return compare_suite(coatcheck_suite(), corpus, x86t_elt())


def render_comparison(report) -> str:
    summary = render_table(
        ["metric", "reproduction", "paper"],
        [
            (name, value, paper)
            for (name, value), paper in zip(
                report.summary_rows(),
                [40, 9, 9, 22, 7, 4, 15, 0],
            )
        ],
        title="§VI-B — comparison against the hand-written COATCheck suite",
    )
    detail = render_table(
        ["test", "category", "removed events"],
        [
            (
                c.name,
                c.category.value,
                len(c.removed_events) if c.removed_events else "",
            )
            for c in report.classifications
        ],
    )
    return f"{summary}\n\n{detail}"

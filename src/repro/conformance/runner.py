"""The differential orchestrator: sharded pair runs and the all-pairs
conformance matrix.

``run_diff`` scales one (reference, subject) differential pass across
cores exactly like :func:`repro.orchestrate.run_sharded` scales a
synthesis run: deterministic shard plan, suite-store reuse of finished
cells and shards, spawn pool (or inline execution), serial-equivalent
merge.

``run_all_pairs`` fans every ordered pair of a model catalog through one
worker pool: cells already in the store are loaded, the remaining pairs
are planned with the pair-aware shard planner
(:func:`repro.orchestrate.plan_pair_shards` — per-pair strides sized so
total work units match the pool, since pair-level fan-out already
parallelizes), every pending (pair, shard) task is submitted up front so
shards of different pairs interleave freely, and the merged cells land
in a deterministic :class:`~repro.conformance.matrix.ConformanceMatrix`.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..errors import SynthesisError
from ..models import MemoryModel, catalog_models
from ..obs import ProgressReporter, current_registry, current_tracer
from ..orchestrate.merge import MergeReport
from ..resilience import (
    FailureRecord,
    FaultPlan,
    PoolManager,
    ResilienceStats,
    RetryPolicy,
    run_resilient_tasks,
)
from ..orchestrate.shards import ShardSpec, plan_pair_shards, plan_shards
from ..orchestrate.store import (
    KIND_DIFF_CELL,
    KIND_DIFF_SHARD,
    SuiteStore,
    config_identity,
    identity_key,
)
from ..synth import SynthesisConfig
from .diff import ConformanceCell, DiffConfig
from .matrix import ConformanceMatrix
from .merge import merge_diff_shards
from .worker import (
    DiffShardResult,
    DiffShardTask,
    MultiDiffShardTask,
    run_diff_shard,
    run_multi_diff_shard,
)

Pair = Tuple[str, str]


def diff_identity(diff: DiffConfig) -> dict:
    """The JSON-safe identity of a differential configuration: the base
    synthesis identity with the model renamed to ``reference`` plus the
    subject's name and ordered axiom names."""
    identity = config_identity(diff.base)
    identity["reference"] = identity.pop("model")
    identity["reference_axioms"] = identity.pop("axioms")
    identity["subject"] = diff.subject.name
    identity["subject_axioms"] = list(diff.subject.axiom_names)
    return identity


def diff_entry_key(
    diff: DiffConfig, kind: str, spec: Optional[ShardSpec] = None
) -> str:
    identity = diff_identity(diff)
    identity["kind"] = kind
    if spec is not None:
        identity["shard"] = asdict(spec)
    return identity_key(identity)


def _load_cell(store: SuiteStore, diff: DiffConfig):
    return store.get(diff_entry_key(diff, KIND_DIFF_CELL))


def _save_cell(store: SuiteStore, diff: DiffConfig, cell: ConformanceCell) -> None:
    if cell.stats.timed_out or cell.stats.degraded:
        return  # partial/degraded work must not satisfy a complete run
    store.put(
        diff_entry_key(diff, KIND_DIFF_CELL),
        cell,
        {
            "kind": KIND_DIFF_CELL,
            "identity": diff_identity(diff),
            "discriminating": cell.count,
            "runtime_s": cell.stats.runtime_s,
        },
    )


def _load_shard(store: SuiteStore, diff: DiffConfig, spec: ShardSpec):
    return store.get(diff_entry_key(diff, KIND_DIFF_SHARD, spec))


def _save_shard(
    store: SuiteStore, diff: DiffConfig, spec: ShardSpec, shard: DiffShardResult
) -> None:
    if shard.stats.timed_out:
        return
    # Spans describe one concrete run and must not replay from cache;
    # the metrics registry is kept (snapshot-replay, like the counters).
    if shard.spans is not None:
        shard = replace(shard, spans=None)
    store.put(
        diff_entry_key(diff, KIND_DIFF_SHARD, spec),
        shard,
        {
            "kind": KIND_DIFF_SHARD,
            "identity": diff_identity(diff),
            "shard": asdict(spec),
            "discriminating": len(shard.elts),
            "runtime_s": shard.runtime_s,
        },
    )


@dataclass
class DiffRunResult:
    """A merged conformance cell plus per-shard and cache bookkeeping."""

    cell: ConformanceCell
    report: MergeReport
    jobs: int
    shard_specs: List[ShardSpec] = field(default_factory=list)
    cell_cache_hit: bool = False
    shard_cache_hits: int = 0
    shard_cache_misses: int = 0
    #: Shards quarantined after exhausting retries (empty on clean runs).
    failures: List[FailureRecord] = field(default_factory=list)
    #: Scheduler effort for the run this cell came from (shared across
    #: the pairs of one all-pairs run).
    resilience: ResilienceStats = field(default_factory=ResilienceStats)

    @property
    def shard_results(self) -> List[DiffShardResult]:
        return self.report.per_shard

    @property
    def degraded(self) -> bool:
        return bool(self.failures)


def execute_shard_tasks(
    tasks: List,
    jobs: int,
    executor: Optional[Union[Executor, PoolManager]] = None,
    worker=run_diff_shard,
    progress: Optional[ProgressReporter] = None,
    retry: Optional[RetryPolicy] = None,
):
    """Run shard tasks inline (``jobs == 1``) or on a rebuildable spawn
    pool through the resilient scheduler
    (:func:`repro.resilience.run_resilient_tasks`), creating and tearing
    down the pool only when the caller did not share one.  Returns
    ``(results, failures, stats)`` with results in task order (a ``None``
    slot is a quarantined task, listed in ``failures``) — the single
    execution policy behind :func:`run_diff`, :func:`run_all_pairs`
    (which passes the fused multi-pair worker), and the fuzz runner
    (:func:`repro.fuzz.run_fuzz`, which passes the fuzz shard worker)."""
    pool: Optional[PoolManager] = None
    if isinstance(executor, PoolManager):
        pool = executor
    elif executor is not None:
        pool = PoolManager(jobs, executor=executor)
    own_pool: Optional[PoolManager] = None
    try:
        if tasks and jobs > 1 and pool is None:
            pool = own_pool = PoolManager(jobs)
        outcome = run_resilient_tasks(
            list(enumerate(tasks)),
            worker=worker,
            jobs=jobs,
            policy=retry,
            pool=pool,
            progress=progress,
        )
        results: List = [
            outcome.results.get(index) for index in range(len(tasks))
        ]
        return results, outcome.failures, outcome.stats
    finally:
        if progress is not None:
            progress.finish()
        if own_pool is not None:
            own_pool.shutdown()


def run_diff(
    diff: DiffConfig,
    jobs: int = 1,
    shard_count: Optional[int] = None,
    fanout_split: int = 1,
    store: Optional[SuiteStore] = None,
    executor: Optional[Union[Executor, PoolManager]] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
) -> DiffRunResult:
    """Run one differential pass across ``jobs`` workers (the diff
    analogue of :func:`repro.orchestrate.run_sharded`, same caching,
    executor-sharing, and retry/degradation semantics)."""
    if jobs < 1:
        raise SynthesisError(f"jobs must be positive, got {jobs}")
    started = time.monotonic()

    if store is not None:
        cached = _load_cell(store, diff)
        if cached is not None:
            report = MergeReport(shard_count=0, shard_elts=cached.count)
            return DiffRunResult(
                cell=cached, report=report, jobs=jobs, cell_cache_hit=True
            )

    specs = plan_shards(jobs, shard_count=shard_count, fanout_split=fanout_split)
    wall_deadline = (
        None
        if diff.base.time_budget_s is None
        else time.time() + diff.base.time_budget_s
    )
    # Shards carry their own deadline; see repro.orchestrate.runner.
    shard_diff = replace(diff, base=replace(diff.base, time_budget_s=None))

    observe = bool(current_tracer()) or bool(current_registry())
    shard_results: List[Optional[DiffShardResult]] = [None] * len(specs)
    pending: List[Tuple[int, DiffShardTask]] = []
    hits = misses = 0
    for index, spec in enumerate(specs):
        cached_shard = _load_shard(store, shard_diff, spec) if store else None
        if cached_shard is not None:
            shard_results[index] = cached_shard
            hits += 1
        else:
            if store is not None:
                misses += 1
            pending.append(
                (
                    index,
                    DiffShardTask(
                        shard_diff,
                        spec,
                        wall_deadline,
                        observe=observe,
                        faults=faults,
                    ),
                )
            )

    progress = ProgressReporter("diff", len(specs))
    progress.done = len(specs) - len(pending)
    executed, failures, resilience = execute_shard_tasks(
        [task for _index, task in pending],
        jobs,
        executor=executor,
        progress=progress,
        retry=retry,
    )
    for (index, _task), shard in zip(pending, executed):
        shard_results[index] = shard

    completed = [shard for shard in shard_results if shard is not None]
    if observe:
        # Reassemble worker observability in deterministic shard order.
        tracer = current_tracer()
        registry = current_registry()
        for shard in shard_results:
            if shard is None:
                continue
            tracer.adopt(getattr(shard, "spans", None))
            registry.absorb(getattr(shard, "metrics", None))
    if store is not None:
        for index, task in pending:
            shard = shard_results[index]
            if shard is not None:
                _save_shard(store, shard_diff, shard.spec, shard)

    runtime_s = time.monotonic() - started
    cell, report = merge_diff_shards(
        diff, completed, runtime_s=runtime_s, failures=failures
    )
    if store is not None:
        _save_cell(store, diff, cell)
    return DiffRunResult(
        cell=cell,
        report=report,
        jobs=jobs,
        shard_specs=list(specs),
        shard_cache_hits=hits,
        shard_cache_misses=misses,
        failures=list(failures),
        resilience=resilience,
    )


def catalog_pairs(models: Mapping[str, MemoryModel]) -> List[Pair]:
    """Every ordered (reference, subject) pair, in catalog order."""
    names = list(models)
    return [(r, s) for r in names for s in names if r != s]


def run_all_pairs(
    base: SynthesisConfig,
    models: Optional[Mapping[str, MemoryModel]] = None,
    jobs: int = 1,
    shard_count: Optional[int] = None,
    fanout_split: int = 1,
    store: Optional[SuiteStore] = None,
    pairs: Optional[List[Pair]] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
) -> Tuple[ConformanceMatrix, List[DiffRunResult]]:
    """Differential conformance over every ordered pair of a catalog.

    ``base`` supplies the enumeration knobs (bound, thread/VA caps,
    witness backend, time budget); its ``model`` field is replaced by
    each pair's reference.  Returns the matrix plus per-pair run records
    in pair order.  With a ``store``, finished cells and shards are
    reused, making an interrupted ``--all-pairs`` run resumable by
    rerunning the same command.

    Scheduling is *fused*: each shard spec becomes one
    :class:`~repro.conformance.worker.MultiDiffShardTask` covering every
    pair still missing that shard, so the shard's program slice is
    enumerated — and, under the SAT backend, translated — once for all
    of them instead of once per pair (the per-pair merge, store keys,
    and output bytes are unchanged).  Consequently ``time_budget_s``
    bounds each fused task rather than each (pair, shard) separately.
    """
    if jobs < 1:
        raise SynthesisError(f"jobs must be positive, got {jobs}")
    if models is None:
        models = catalog_models()
    if pairs is None:
        pairs = catalog_pairs(models)
    if not pairs:
        raise SynthesisError("all-pairs run needs at least one model pair")

    diffs: Dict[Pair, DiffConfig] = {
        (ref, sub): DiffConfig(
            base=replace(base, model=models[ref]), subject=models[sub]
        )
        for ref, sub in pairs
    }

    results: Dict[Pair, DiffRunResult] = {}
    remaining = list(pairs)
    if store is not None:
        for pair in pairs:
            cached = _load_cell(store, diffs[pair])
            if cached is not None:
                report = MergeReport(shard_count=0, shard_elts=cached.count)
                results[pair] = DiffRunResult(
                    cell=cached, report=report, jobs=jobs, cell_cache_hit=True
                )
        remaining = [pair for pair in pairs if pair not in results]

    if remaining:
        specs = plan_pair_shards(
            jobs,
            len(remaining),
            shard_count=shard_count,
            fanout_split=fanout_split,
        )
        shard_results: Dict[Pair, List[Optional[DiffShardResult]]] = {
            pair: [None] * len(specs) for pair in remaining
        }
        hits: Dict[Pair, int] = {pair: 0 for pair in remaining}
        misses: Dict[Pair, int] = {pair: 0 for pair in remaining}
        started: Dict[Pair, float] = {}
        shard_diffs: Dict[Pair, DiffConfig] = {}
        pending_by_pair: Dict[Pair, List[int]] = {
            pair: [] for pair in remaining
        }
        pending_pairs_by_index: Dict[int, List[Pair]] = {}
        wall_deadline = (
            None
            if base.time_budget_s is None
            else time.time() + base.time_budget_s
        )
        for pair in remaining:
            started[pair] = time.monotonic()
            diff = diffs[pair]
            shard_diff = replace(
                diff, base=replace(diff.base, time_budget_s=None)
            )
            shard_diffs[pair] = shard_diff
            for index, spec in enumerate(specs):
                cached_shard = (
                    _load_shard(store, shard_diff, spec) if store else None
                )
                if cached_shard is not None:
                    shard_results[pair][index] = cached_shard
                    hits[pair] += 1
                else:
                    if store is not None:
                        misses[pair] += 1
                    pending_pairs_by_index.setdefault(index, []).append(pair)
                    pending_by_pair[pair].append(index)

        # One *fused* task per shard spec: its program slice is enumerated
        # (and, under the SAT backend, translated) once for every pair
        # still missing that shard, instead of once per pair.  The shared
        # budget spans each fused task, and per-pair results land under
        # the same store keys the per-pair tasks used.
        observe = bool(current_tracer()) or bool(current_registry())
        tasks: List[MultiDiffShardTask] = []
        task_slots: List[Tuple[int, List[Pair]]] = []
        for index in sorted(pending_pairs_by_index):
            pairs_here = pending_pairs_by_index[index]
            tasks.append(
                MultiDiffShardTask(
                    diffs=tuple(shard_diffs[pair] for pair in pairs_here),
                    spec=specs[index],
                    wall_deadline=wall_deadline,
                    observe=observe,
                    faults=faults,
                )
            )
            task_slots.append((index, pairs_here))

        progress = ProgressReporter("all-pairs", len(tasks))
        executed, failures, resilience = execute_shard_tasks(
            tasks,
            jobs,
            worker=run_multi_diff_shard,
            progress=progress,
            retry=retry,
        )
        for (index, pairs_here), task_results in zip(task_slots, executed):
            for pair, shard in zip(pairs_here, task_results or ()):
                shard_results[pair][index] = shard

        # A quarantined *fused* task degrades every pair that was riding
        # on it: map failures back through the task's pair list.
        failures_by_pair: Dict[Pair, List[FailureRecord]] = {
            pair: [] for pair in remaining
        }
        pairs_by_label = {
            specs[index].label: pairs_here for index, pairs_here in task_slots
        }
        for failure in failures:
            for pair in pairs_by_label.get(failure.label, ()):
                failures_by_pair[pair].append(failure)

        if observe:
            # One lane per fused task (its batch rides on the first
            # pair's result), adopted in sorted-shard-index order; metrics
            # from cached shards replay through absorb as well.
            tracer = current_tracer()
            registry = current_registry()
            for task_results in executed:
                for shard in task_results or ():
                    tracer.adopt(getattr(shard, "spans", None))
                    registry.absorb(getattr(shard, "metrics", None))
            for pair in remaining:
                for index in range(len(specs)):
                    if index in pending_by_pair[pair]:
                        continue
                    shard = shard_results[pair][index]
                    if shard is not None:
                        registry.absorb(getattr(shard, "metrics", None))

        for pair in remaining:
            diff = diffs[pair]
            completed = [s for s in shard_results[pair] if s is not None]
            if store is not None:
                for index in pending_by_pair[pair]:
                    shard = shard_results[pair][index]
                    if shard is not None:
                        _save_shard(
                            store, shard_diffs[pair], shard.spec, shard
                        )
            cell, report = merge_diff_shards(
                diff,
                completed,
                runtime_s=time.monotonic() - started[pair],
                failures=failures_by_pair[pair],
            )
            if store is not None:
                _save_cell(store, diff, cell)
            results[pair] = DiffRunResult(
                cell=cell,
                report=report,
                jobs=jobs,
                shard_specs=list(specs),
                shard_cache_hits=hits[pair],
                shard_cache_misses=misses[pair],
                failures=list(failures_by_pair[pair]),
                resilience=resilience,
            )

    matrix = ConformanceMatrix(
        models=tuple(models), bound=base.bound
    )
    for pair in pairs:
        matrix.cells[pair] = results[pair].cell
    return matrix, [results[pair] for pair in pairs]

"""Cross-shard merging of differential results.

The serial-equivalence argument of :mod:`repro.orchestrate.merge`
carries over verbatim — canonical execution keys determine canonical
program classes, order keys are assigned before shard filtering — with
two diff-specific additions:

* the (orbit-weighted) Agreement-bucket counters are per-witness counts
  over a *partitioned* program stream, so summing shard counters
  reproduces the serial counts exactly (no cross-shard dedup
  subtleties);
* each shard entry carries its winner's identity rank and its
  representative's ``(canonical key, witness sort key)`` minimum (see
  :mod:`.diff`), so taking the entry minimizing ``(rep_rank, order)``
  reproduces the serial winner *and* its backend-, symmetry-, and
  order-invariant representative byte-for-byte.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..orchestrate.merge import MergeReport
from ..resilience import FailureRecord
from ..synth import SuiteStats
from .diff import ConformanceCell, DiffConfig
from .worker import DiffShardResult


def merge_diff_shards(
    diff: DiffConfig,
    shard_results: Iterable[DiffShardResult],
    runtime_s: float = 0.0,
    failures: Iterable[FailureRecord] = (),
) -> Tuple[ConformanceCell, MergeReport]:
    """Fuse diff shards into one serial-equivalent :class:`ConformanceCell`.

    ``failures`` (quarantined shards) mark the merged cell ``degraded``:
    completed shards still fuse, but the cell is explicitly partial and
    will not be cached.
    """
    report = MergeReport()
    stats = SuiteStats()
    best: dict = {}  # ProgramKey -> DiffShardElt with minimal order
    reference_only: set = set()
    subject_only: set = set()
    for shard in shard_results:
        report.shard_count += 1
        report.per_shard.append(shard)
        stats.absorb(shard.stats)
        reference_only |= shard.reference_only_keys
        subject_only |= shard.subject_only_keys
        for shard_elt in shard.elts:
            report.shard_elts += 1
            current = best.get(shard_elt.elt.key)
            if current is None:
                best[shard_elt.elt.key] = shard_elt
            else:
                report.cross_shard_duplicates += 1
                if (shard_elt.elt.rep_rank, shard_elt.order) < (
                    current.elt.rep_rank,
                    current.order,
                ):
                    best[shard_elt.elt.key] = shard_elt

    for failure in failures:
        report.failed_shards.append(failure.label)
        stats.degraded = True

    cell = ConformanceCell(
        reference=diff.reference.name,
        subject=diff.subject.name,
        bound=diff.bound,
        stats=stats,
        reference_only_keys=tuple(sorted(reference_only)),
        subject_only_keys=tuple(sorted(subject_only)),
    )
    cell.elts = sorted(
        (shard_elt.elt for shard_elt in best.values()), key=lambda e: e.key
    )
    stats.unique_programs = len(cell.elts)
    stats.runtime_s = runtime_s
    return cell, report

"""Differential conformance: pairwise model differencing at scale.

The paper's §I/§VII payoff — synthesized ELTs that *distinguish* one
transistency model from another (the correct x86t spec vs the AMD-
erratum variant) — as a first-class workload on top of every subsystem
built so far:

* :class:`DiffConfig` / :func:`diff_models` / :func:`run_diff_pipeline`
  — the single-pair differential pipeline (one candidate enumeration,
  both verdicts, shared axiom evaluation, discriminating-ELT suite);
* :func:`run_multi_diff_pipeline` — the fused core every sharded path
  actually runs: one shared program/witness enumeration classified under
  *every* pair in flight, with per-witness axiom verdicts shared through
  one :class:`~repro.models.AxiomTable` and, under the SAT backend,
  one incremental witness session per program
  (:mod:`repro.synth.sat_backend`) — each program is translated once
  for all pairs, not once per query.  With ``SynthesisConfig.symmetry``
  the shared stream additionally arrives orbit-pruned and weighted, and
  duplicate isomorphic programs replay from the orbit cache
  (:mod:`repro.symmetry`);
* :class:`ConformanceCell` / :class:`Refinement` — one pair's
  Agreement-bucketed counts and refinement verdict at a bound;
* :func:`run_diff` — sharded, store-cached execution of one pair;
* :func:`run_all_pairs` / :class:`ConformanceMatrix` — the catalog-wide
  matrix (one fused enumeration shared by all 20 catalog pairs) with
  axiom-subset consistency obligations;
* the ``repro diff`` CLI command front-ends all of it.
"""

from .diff import (
    ConformanceCell,
    DiffConfig,
    DiffOutcome,
    DiscriminatingElt,
    Refinement,
    diff_models,
    finalize_cell,
    run_diff_pipeline,
    run_multi_diff_pipeline,
)
from .matrix import (
    ConformanceMatrix,
    axiom_subset,
    cell_to_json,
    expected_refinements,
)
from .merge import merge_diff_shards
from .runner import (
    DiffRunResult,
    catalog_pairs,
    diff_entry_key,
    diff_identity,
    execute_shard_tasks,
    run_all_pairs,
    run_diff,
)
from .worker import (
    DiffShardElt,
    DiffShardResult,
    DiffShardTask,
    MultiDiffShardTask,
    run_diff_shard,
    run_multi_diff_shard,
)

__all__ = [
    "ConformanceCell",
    "ConformanceMatrix",
    "DiffConfig",
    "DiffOutcome",
    "DiffRunResult",
    "DiffShardElt",
    "DiffShardResult",
    "DiffShardTask",
    "MultiDiffShardTask",
    "DiscriminatingElt",
    "Refinement",
    "axiom_subset",
    "catalog_pairs",
    "cell_to_json",
    "diff_entry_key",
    "diff_identity",
    "diff_models",
    "execute_shard_tasks",
    "expected_refinements",
    "finalize_cell",
    "merge_diff_shards",
    "run_all_pairs",
    "run_diff",
    "run_diff_pipeline",
    "run_diff_shard",
    "run_multi_diff_pipeline",
    "run_multi_diff_shard",
]

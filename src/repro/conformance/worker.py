"""Spawn-safe differential shard execution.

The differential analogue of :mod:`repro.orchestrate.worker`: a worker
process receives a pickled :class:`DiffShardTask` (diff config + shard
spec + wall-clock deadline), runs the shared single-pass diff pipeline
over the shard's slice of the program stream, and returns a
:class:`DiffShardResult` carrying every discriminating ELT with its
enumeration order key plus the raw bucket counters and asymmetric key
sets — everything the merge layer needs to reconstruct the serial cell.

Everything here is a module-level function/dataclass so it pickles under
the ``spawn`` start method; deadlines travel as wall-clock timestamps
and are converted to each worker's monotonic clock on arrival.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Set

from ..obs import (
    MetricsRegistry,
    SpanBatch,
    Tracer,
    install_registry,
    install_tracer,
)
from ..orchestrate.shards import ShardSpec, shard_programs
from ..resilience import FaultPlan
from ..synth import SuiteStats
from .diff import (
    DiffConfig,
    DiffOutcome,
    DiscriminatingElt,
    run_diff_pipeline,
    run_multi_diff_pipeline,
)


@dataclass(frozen=True)
class DiffShardTask:
    """One unit of differential work shipped to a worker process."""

    diff: DiffConfig
    spec: ShardSpec
    #: Absolute wall-clock deadline (``time.time()``), or None.
    wall_deadline: Optional[float] = None
    #: Collect spans/metrics in the worker and ship them on the result.
    observe: bool = False
    #: Which (re)submission this is (stamped by the resilient scheduler).
    attempt: int = 1
    #: Seeded chaos harness; consulted on worker entry when set.
    faults: Optional[FaultPlan] = None


@dataclass(frozen=True)
class MultiDiffShardTask:
    """One *fused* unit: every pending pair's share of one shard.

    The all-pairs driver ships one of these per shard spec instead of one
    :class:`DiffShardTask` per (pair, shard): the worker enumerates the
    shard's program slice (and translates it, under the SAT backend)
    once, classifying each witness under every pair in the task.  All
    diffs share the base enumeration config; the deadline spans the whole
    fused task.
    """

    diffs: tuple  # tuple[DiffConfig, ...], in pair order
    spec: ShardSpec
    wall_deadline: Optional[float] = None
    #: Collect spans/metrics in the worker; the fused task's batch and
    #: registry ride on the *first* pair's result (one lane per task).
    observe: bool = False
    #: Which (re)submission this is (stamped by the resilient scheduler).
    attempt: int = 1
    #: Seeded chaos harness; consulted on worker entry when set.
    faults: Optional[FaultPlan] = None


@dataclass
class DiffShardElt:
    """A shard-local discriminating ELT plus the global enumeration order
    key of the program that produced it."""

    order: tuple
    elt: DiscriminatingElt


@dataclass
class DiffShardResult:
    spec: ShardSpec
    elts: list = field(default_factory=list)
    stats: SuiteStats = field(default_factory=SuiteStats)
    reference_only_keys: Set[tuple] = field(default_factory=set)
    subject_only_keys: Set[tuple] = field(default_factory=set)
    runtime_s: float = 0.0
    #: Worker span batch (``task.observe`` only; stripped before store
    #: writes — spans describe one concrete run).
    spans: Optional[SpanBatch] = None
    #: Worker metrics registry (``task.observe`` only; persisted with the
    #: shard so cache hits replay deterministic histograms).
    metrics: Optional[MetricsRegistry] = None

    @property
    def timed_out(self) -> bool:
        return self.stats.timed_out


def _shard_result_from_outcome(
    spec: ShardSpec, outcome: DiffOutcome, runtime_s: float
) -> DiffShardResult:
    elts = [
        DiffShardElt(order=outcome.order[key], elt=elt)
        for key, elt in outcome.by_key.items()
    ]
    elts.sort(key=lambda shard_elt: shard_elt.order)
    result = DiffShardResult(
        spec=spec,
        elts=elts,
        stats=outcome.stats,
        reference_only_keys=outcome.reference_only_keys,
        subject_only_keys=outcome.subject_only_keys,
    )
    result.stats.unique_programs = len(elts)
    result.runtime_s = runtime_s
    result.stats.runtime_s = runtime_s
    return result


def _observed(spec: ShardSpec, observe: bool):
    """Install a fresh per-shard tracer/registry when observing; returns
    ``(tracer, registry, restore)`` with ``restore()`` undoing the
    installation (no-ops when ``observe`` is off)."""
    if not observe:
        return None, None, lambda: None
    tracer = Tracer(label=spec.label)
    registry = MetricsRegistry()
    prev_tracer = install_tracer(tracer)
    prev_registry = install_registry(registry)

    def restore() -> None:
        install_tracer(prev_tracer)
        install_registry(prev_registry)

    return tracer, registry, restore


def run_diff_shard(task: DiffShardTask) -> DiffShardResult:
    """Execute one differential shard (in-process or in a worker)."""
    if task.faults is not None:
        task.faults.apply_worker_fault(task.spec.label, task.attempt)
    started = time.monotonic()
    deadline = None
    if task.wall_deadline is not None:
        deadline = started + max(0.0, task.wall_deadline - time.time())
    tracer, registry, restore = _observed(task.spec, task.observe)
    try:
        span = tracer.begin("shard", category="orchestrate") if tracer else None
        try:
            outcome = run_diff_pipeline(
                task.diff,
                shard_programs(task.diff.base, task.spec),
                deadline=deadline,
            )
        finally:
            if tracer:
                tracer.end(span)
    finally:
        restore()
    result = _shard_result_from_outcome(
        task.spec, outcome, time.monotonic() - started
    )
    if tracer is not None:
        result.spans = tracer.batch()
        result.metrics = registry
    return result


def run_multi_diff_shard(task: MultiDiffShardTask) -> list:
    """Execute one fused shard: the shard's program slice enumerated once,
    classified under every pair; returns one :class:`DiffShardResult` per
    pair, in task order.  Each result carries the elts, keys, and
    agreement counters its dedicated single-pair shard would have
    produced; ``runtime_s`` is the fused task's wall time split evenly
    across its pairs (per-pair sums reflect the work actually done once,
    at the cost of per-pair attribution), and SAT counters follow
    :func:`~repro.conformance.diff.run_multi_diff_pipeline`'s
    lead-pair-translations / rest-avoided convention."""
    if task.faults is not None:
        task.faults.apply_worker_fault(task.spec.label, task.attempt)
    started = time.monotonic()
    deadline = None
    if task.wall_deadline is not None:
        deadline = started + max(0.0, task.wall_deadline - time.time())
    tracer, registry, restore = _observed(task.spec, task.observe)
    try:
        span = (
            tracer.begin("shard", category="orchestrate", pairs=len(task.diffs))
            if tracer
            else None
        )
        try:
            outcomes = run_multi_diff_pipeline(
                list(task.diffs),
                shard_programs(task.diffs[0].base, task.spec),
                deadline=deadline,
            )
        finally:
            if tracer:
                tracer.end(span)
    finally:
        restore()
    share = (time.monotonic() - started) / max(1, len(outcomes))
    results = [
        _shard_result_from_outcome(task.spec, outcome, share)
        for outcome in outcomes
    ]
    if tracer is not None and results:
        results[0].spans = tracer.batch()
        results[0].metrics = registry
    return results

"""Spawn-safe differential shard execution.

The differential analogue of :mod:`repro.orchestrate.worker`: a worker
process receives a pickled :class:`DiffShardTask` (diff config + shard
spec + wall-clock deadline), runs the shared single-pass diff pipeline
over the shard's slice of the program stream, and returns a
:class:`DiffShardResult` carrying every discriminating ELT with its
enumeration order key plus the raw bucket counters and asymmetric key
sets — everything the merge layer needs to reconstruct the serial cell.

Everything here is a module-level function/dataclass so it pickles under
the ``spawn`` start method; deadlines travel as wall-clock timestamps
and are converted to each worker's monotonic clock on arrival.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Set

from ..orchestrate.shards import ShardSpec, shard_programs
from ..synth import SuiteStats
from .diff import (
    DiffConfig,
    DiffOutcome,
    DiscriminatingElt,
    run_diff_pipeline,
    run_multi_diff_pipeline,
)


@dataclass(frozen=True)
class DiffShardTask:
    """One unit of differential work shipped to a worker process."""

    diff: DiffConfig
    spec: ShardSpec
    #: Absolute wall-clock deadline (``time.time()``), or None.
    wall_deadline: Optional[float] = None


@dataclass(frozen=True)
class MultiDiffShardTask:
    """One *fused* unit: every pending pair's share of one shard.

    The all-pairs driver ships one of these per shard spec instead of one
    :class:`DiffShardTask` per (pair, shard): the worker enumerates the
    shard's program slice (and translates it, under the SAT backend)
    once, classifying each witness under every pair in the task.  All
    diffs share the base enumeration config; the deadline spans the whole
    fused task.
    """

    diffs: tuple  # tuple[DiffConfig, ...], in pair order
    spec: ShardSpec
    wall_deadline: Optional[float] = None


@dataclass
class DiffShardElt:
    """A shard-local discriminating ELT plus the global enumeration order
    key of the program that produced it."""

    order: tuple
    elt: DiscriminatingElt


@dataclass
class DiffShardResult:
    spec: ShardSpec
    elts: list = field(default_factory=list)
    stats: SuiteStats = field(default_factory=SuiteStats)
    reference_only_keys: Set[tuple] = field(default_factory=set)
    subject_only_keys: Set[tuple] = field(default_factory=set)
    runtime_s: float = 0.0

    @property
    def timed_out(self) -> bool:
        return self.stats.timed_out


def _shard_result_from_outcome(
    spec: ShardSpec, outcome: DiffOutcome, runtime_s: float
) -> DiffShardResult:
    elts = [
        DiffShardElt(order=outcome.order[key], elt=elt)
        for key, elt in outcome.by_key.items()
    ]
    elts.sort(key=lambda shard_elt: shard_elt.order)
    result = DiffShardResult(
        spec=spec,
        elts=elts,
        stats=outcome.stats,
        reference_only_keys=outcome.reference_only_keys,
        subject_only_keys=outcome.subject_only_keys,
    )
    result.stats.unique_programs = len(elts)
    result.runtime_s = runtime_s
    result.stats.runtime_s = runtime_s
    return result


def run_diff_shard(task: DiffShardTask) -> DiffShardResult:
    """Execute one differential shard (in-process or in a worker)."""
    started = time.monotonic()
    deadline = None
    if task.wall_deadline is not None:
        deadline = started + max(0.0, task.wall_deadline - time.time())
    outcome = run_diff_pipeline(
        task.diff,
        shard_programs(task.diff.base, task.spec),
        deadline=deadline,
    )
    return _shard_result_from_outcome(
        task.spec, outcome, time.monotonic() - started
    )


def run_multi_diff_shard(task: MultiDiffShardTask) -> list:
    """Execute one fused shard: the shard's program slice enumerated once,
    classified under every pair; returns one :class:`DiffShardResult` per
    pair, in task order.  Each result carries the elts, keys, and
    agreement counters its dedicated single-pair shard would have
    produced; ``runtime_s`` is the fused task's wall time split evenly
    across its pairs (per-pair sums reflect the work actually done once,
    at the cost of per-pair attribution), and SAT counters follow
    :func:`~repro.conformance.diff.run_multi_diff_pipeline`'s
    lead-pair-translations / rest-avoided convention."""
    started = time.monotonic()
    deadline = None
    if task.wall_deadline is not None:
        deadline = started + max(0.0, task.wall_deadline - time.time())
    outcomes = run_multi_diff_pipeline(
        list(task.diffs),
        shard_programs(task.diffs[0].base, task.spec),
        deadline=deadline,
    )
    share = (time.monotonic() - started) / max(1, len(outcomes))
    return [
        _shard_result_from_outcome(task.spec, outcome, share)
        for outcome in outcomes
    ]

"""The all-pairs conformance matrix and its consistency obligations.

A :class:`ConformanceMatrix` holds one :class:`~repro.conformance.diff.
ConformanceCell` per ordered (reference, subject) pair of a model
catalog.  Two structural facts make it checkable against the catalog
itself:

* **Axiom-subset refinement.**  When the subject's axioms are a subset
  of the reference's (same names, same predicates), every execution the
  subject forbids the reference forbids too — so the cell's
  only-subject-forbids bucket must be empty at *every* bound.  The
  catalog's syntactic inclusions (x86tso ⊂ x86t_amd_bug ⊂ x86t_elt,
  sc ⊂ sc_t) induce exactly the "SC ⊑ x86-TSO"-style obligations;
  :meth:`ConformanceMatrix.inclusion_violations` enforces them.
* **Antisymmetry.**  Swapping a pair transposes the asymmetric buckets:
  cell(r, s).reference_only_keys == cell(s, r).subject_only_keys.
  :meth:`ConformanceMatrix.antisymmetry_violations` checks every
  transposed pair present in the matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..models import MemoryModel
from .diff import ConformanceCell, Refinement

Pair = Tuple[str, str]


def axiom_subset(smaller: MemoryModel, larger: MemoryModel) -> bool:
    """True when every axiom of ``smaller`` appears in ``larger`` with
    the same name *and* the same predicate function."""
    larger_axioms = {(a.name, a.predicate) for a in larger.axioms}
    return all((a.name, a.predicate) in larger_axioms for a in smaller.axioms)


def expected_refinements(
    models: Mapping[str, MemoryModel],
) -> List[Pair]:
    """(reference, subject) pairs where the catalog *guarantees*
    permitted(reference) ⊆ permitted(subject): the subject's axiom set is
    a subset of the reference's."""
    out: List[Pair] = []
    for ref_name, ref in models.items():
        for sub_name, sub in models.items():
            if ref_name != sub_name and axiom_subset(sub, ref):
                out.append((ref_name, sub_name))
    return out


@dataclass
class ConformanceMatrix:
    """Deterministic all-pairs differential verdict at one bound."""

    models: Tuple[str, ...]
    bound: int
    cells: Dict[Pair, ConformanceCell] = field(default_factory=dict)

    def cell(self, reference: str, subject: str) -> ConformanceCell:
        return self.cells[(reference, subject)]

    def verdict(self, reference: str, subject: str) -> Refinement:
        return self.cells[(reference, subject)].verdict

    def pairs(self) -> List[Pair]:
        """Ordered pairs in canonical (row-major catalog) order."""
        return [
            (ref, sub)
            for ref in self.models
            for sub in self.models
            if ref != sub and (ref, sub) in self.cells
        ]

    @property
    def discriminating_total(self) -> int:
        """Total discriminating ELTs across every pair."""
        return sum(cell.count for cell in self.cells.values())

    def inclusion_violations(
        self, models: Mapping[str, MemoryModel]
    ) -> List[Pair]:
        """Pairs whose axiom-subset relation promises refinement but whose
        cell observed a subject-forbidden, reference-permitted execution —
        empty on a correct engine, at any bound."""
        return [
            (ref, sub)
            for ref, sub in expected_refinements(models)
            if (ref, sub) in self.cells
            and self.cells[(ref, sub)].stats.only_subject_forbids > 0
        ]

    def antisymmetry_violations(self) -> List[Pair]:
        """Pairs whose transpose disagrees on the asymmetric key sets."""
        violations: List[Pair] = []
        for (ref, sub), cell in self.cells.items():
            mirror: Optional[ConformanceCell] = self.cells.get((sub, ref))
            if mirror is None:
                continue
            if (
                cell.reference_only_keys != mirror.subject_only_keys
                or cell.subject_only_keys != mirror.reference_only_keys
            ):
                violations.append((ref, sub))
        return violations

    def to_json(self) -> dict:
        """Stable JSON shape (schema 1) for ``repro diff --all-pairs --json``."""
        return {
            "schema": 1,
            "kind": "conformance-matrix",
            "bound": self.bound,
            "models": list(self.models),
            "discriminating_total": self.discriminating_total,
            "pairs": [cell_to_json(self.cells[pair]) for pair in self.pairs()],
        }


def cell_to_json(cell: ConformanceCell) -> dict:
    """Stable JSON shape (schema 1) for one pair's verdict."""
    return {
        "schema": 1,
        "kind": "conformance-cell",
        "reference": cell.reference,
        "subject": cell.subject,
        "bound": cell.bound,
        "verdict": cell.verdict.value,
        "counts": cell.counts(),
        "discriminating": [
            {
                "violates": list(elt.violated_axioms),
                "outcomes": elt.outcome_count,
                "elt": elt.text,
            }
            for elt in cell.elts
        ],
        "stats": {
            "programs_enumerated": cell.stats.programs_enumerated,
            "executions_enumerated": cell.stats.executions_enumerated,
            "unique_programs": cell.stats.unique_programs,
            "runtime_s": cell.stats.runtime_s,
            "timed_out": cell.stats.timed_out,
        },
    }

"""The differential synthesis pipeline: one enumeration, two verdicts.

TransForm's headline payoff is *differencing* transistency models:
synthesized ELTs distinguished the buggy AMD-erratum variant of x86t
from the correct spec (paper §I, §VII).  This module runs that workload
over the same bounded skeleton/witness enumeration the synthesis engine
uses (:func:`repro.synth.run_pipeline`'s stream contract), but instead
of targeting one axiom it classifies every candidate execution under a
(reference, subject) model pair in a single pass:

* the candidate enumeration happens **once** per program — the witness
  stream is shared between the two models (and, in the fused multi-pair
  pipeline, across *every* pair in flight), and under the SAT backend
  the relational translation is built once per program via the witness
  sessions of :mod:`repro.synth.sat_backend`;
* classification shares axiom verdicts through one
  :class:`~repro.models.AxiomTable` spanning all models in flight: each
  *distinct* axiom is evaluated once per execution (catalog variants
  share most of their axioms, so e.g. x86t_elt vs x86t_amd_bug costs
  five axiom evaluations, not nine — and the 20-pair catalog matrix
  costs six, not forty-five);
* executions *forbidden by the reference but permitted by the subject*
  that are also §IV-B minimal become the **discriminating ELT suite** —
  run one on hardware and an observed outcome proves the subject model
  (not the reference) describes the machine;
* every witness feeds the :class:`~repro.models.Agreement` counters on
  :class:`~repro.synth.SuiteStats`, and the canonical keys of both
  asymmetric buckets are collected for refinement verdicts.

Determinism is order-free at both selection levels: each discriminating
ELT belongs to the class member with the smallest identity rank, and its
representative execution is chosen by *(canonical key, witness sort
key)* — the same total order the symmetry layer's lex-leader clauses
enforce (:mod:`repro.symmetry`) — never by stream position.  The
``.elts`` bytes of a diff suite are therefore identical across
``--jobs`` settings, witness backends, ``--fresh-solver``, and
``--no-symmetry``; with symmetry on (the default), witness streams
arrive orbit-pruned and weighted, and duplicate isomorphic programs are
replayed from the orbit cache instead of being translated again.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional, Sequence, Set, Tuple

from ..errors import SolverInterrupted, SynthesisError
from ..resilience import deadline_scope
from ..litmus.format import serialize_elt
from ..models import Agreement, AxiomTable, MemoryModel
from ..mtm import Execution, Program
from ..obs import current_registry, current_tracer
from ..sat import solver_preferences
from ..synth import SuiteStats, SynthesisConfig
from ..symmetry import execution_key_via, program_symmetry, witness_sort_key
from ..synth.canon import (
    ExecutionKey,
    ProgramKey,
    canonical_execution_key,
    canonical_program_key,
    identity_program_key,
)
from ..synth.engine import OrderKey, witness_stream_factory
from ..synth.relax import cached_is_minimal, is_minimal, model_fingerprint
from ..synth.skeletons import enumerate_programs


class Refinement(Enum):
    """Observed refinement relation of a model pair at one bound.

    ``REFERENCE_STRONGER`` means the reference forbids strictly more than
    the subject on the enumerated executions — i.e. permitted(reference)
    ⊊ permitted(subject), the reference *refines* the subject (the "SC ⊑
    x86-TSO" direction with the stronger model as reference).
    """

    EQUIVALENT = "equivalent"
    REFERENCE_STRONGER = "reference-stronger"
    SUBJECT_STRONGER = "subject-stronger"
    INCOMPARABLE = "incomparable"


@dataclass
class DiffConfig:
    """One differential run: the reference model rides in ``base.model``
    (which also drives enumeration and minimality), ``subject`` is the
    model compared against it."""

    base: SynthesisConfig
    subject: MemoryModel

    def __post_init__(self) -> None:
        if self.base.target_axiom is not None:
            raise SynthesisError(
                "differential runs classify the whole candidate space; "
                "base.target_axiom must be None"
            )

    @property
    def reference(self) -> MemoryModel:
        return self.base.model

    @property
    def bound(self) -> int:
        return self.base.bound


@dataclass
class DiscriminatingElt:
    """One discriminating test: a program class whose candidate set
    contains a reference-forbidden, subject-permitted, §IV-B-minimal
    execution.  ``program`` is the class member with the smallest
    identity rank; ``execution`` is the canonical representative among
    that winner's minimal discriminating witnesses — smallest
    ``(canonical key, witness sort key)``, the same total order the
    symmetry layer's lex-leader clauses enforce, so orbit pruning can
    never change which bytes are emitted.  ``outcome_count`` counts the
    class's distinct such witnesses (by canonical key)."""

    program: Program
    execution: Execution
    key: ProgramKey
    execution_key: ExecutionKey
    #: ``serialize_elt(execution)`` — kept because the suite writer
    #: reuses it.
    text: str
    violated_axioms: tuple  # reference axioms the representative violates
    outcome_count: int = 1
    #: Identity rank of the winning program (class-member tie-break).
    rep_rank: tuple = ()
    #: :func:`repro.symmetry.witness_sort_key` of the representative.
    witness_rank: tuple = ()


@dataclass
class DiffOutcome:
    """Raw product of one :func:`run_diff_pipeline` pass (per-shard
    shape; merged across shards by :mod:`repro.conformance.merge`)."""

    by_key: dict = field(default_factory=dict)
    order: dict = field(default_factory=dict)
    stats: SuiteStats = field(default_factory=SuiteStats)
    #: Canonical keys of every reference-forbidden/subject-permitted
    #: witness (minimal or not) — the semantic disagreement evidence.
    reference_only_keys: Set[ExecutionKey] = field(default_factory=set)
    #: ... and the opposite direction (reference permits, subject forbids).
    subject_only_keys: Set[ExecutionKey] = field(default_factory=set)


class _DiffAccumulator:
    """One (reference, subject) pair's state inside the fused pipeline:
    exactly the per-witness logic the dedicated single-pair loop used to
    run, fed shared verdicts instead of computing its own."""

    def __init__(
        self, diff: DiffConfig, minimal_cache: dict, stage_acc: dict
    ) -> None:
        self.diff = diff
        self.reference = diff.reference
        self.outcome = DiffOutcome()
        #: shared per-reference minimality verdicts (exec key -> bool).
        self.minimal_cache = minimal_cache
        #: shared stage-time accumulator (minimality seconds land here).
        self.stage_acc = stage_acc
        #: Minimal discriminating keys already credited to an entry.
        self.counted_keys: Set[ExecutionKey] = set()
        self.program_key: Optional[ProgramKey] = None

    def start_program(self) -> None:
        self.program_key = None

    def observe(
        self,
        order_key: OrderKey,
        program: Program,
        execution: Execution,
        weight: int,
        ref_permits: bool,
        sub_permits: bool,
        execution_key_of,
        program_key_of,
        rep_rank_of,
        witness_rank_of,
        use_shared_minimality: bool,
    ) -> None:
        outcome = self.outcome
        stats = outcome.stats
        if ref_permits:
            if sub_permits:
                stats.both_permit += weight
                return
            stats.interesting += weight
            stats.only_subject_forbids += weight
            outcome.subject_only_keys.add(execution_key_of())
            return
        if not sub_permits:
            stats.both_forbid += weight
            return
        stats.interesting += weight
        execution_key = execution_key_of()
        stats.only_reference_forbids += weight
        outcome.reference_only_keys.add(execution_key)

        reference = self.reference
        started = time.perf_counter()
        if use_shared_minimality:
            minimal = cached_is_minimal(execution, reference, execution_key)
        else:
            minimal = self.minimal_cache.get(execution_key)
            if minimal is None:
                minimal = is_minimal(execution, reference)
                self.minimal_cache[execution_key] = minimal
        self.stage_acc["minimality"] += time.perf_counter() - started
        if not minimal:
            return
        if self.program_key is None:
            self.program_key = program_key_of()
        program_key = self.program_key
        by_key = outcome.by_key
        entry = by_key.get(program_key)
        if execution_key not in self.counted_keys:
            self.counted_keys.add(execution_key)
            stats.minimal += 1
            if entry is not None:
                entry.outcome_count += 1
        rep_rank = rep_rank_of()
        witness_rank = witness_rank_of()
        if entry is None:
            by_key[program_key] = DiscriminatingElt(
                program=program,
                execution=execution,
                key=program_key,
                execution_key=execution_key,
                text=serialize_elt(execution),
                violated_axioms=reference.check(execution).violated,
                rep_rank=rep_rank,
                witness_rank=witness_rank,
            )
            outcome.order[program_key] = order_key
            return
        # Representative selection, order-free at both levels: the class
        # member with the smallest identity rank owns the entry, and
        # among the owner's minimal discriminating witnesses — including
        # canonical-key duplicates, so the min is a property of the
        # witness *set* — the smallest (canonical key, witness sort key)
        # wins.  The sort key is the order the symmetry layer's
        # lex-leader clauses enforce, so orbit pruning keeps exactly the
        # witnesses that can win.
        if rep_rank < entry.rep_rank or (
            rep_rank == entry.rep_rank
            and (execution_key, witness_rank)
            < (entry.execution_key, entry.witness_rank)
        ):
            entry.program = program
            entry.execution = execution
            entry.execution_key = execution_key
            entry.text = serialize_elt(execution)
            entry.violated_axioms = reference.check(execution).violated
            entry.rep_rank = rep_rank
            entry.witness_rank = witness_rank
            outcome.order[program_key] = order_key


#: SynthesisConfig fields that shape the shared program/witness
#: enumeration — every diff of a fused run must agree on all of them
#: (``model`` deliberately excluded: it is the per-pair reference and
#: plays no part in enumeration).
_ENUMERATION_FIELDS = tuple(
    name for name in SynthesisConfig.__dataclass_fields__ if name != "model"
)


def run_multi_diff_pipeline(
    diffs: Sequence[DiffConfig],
    ordered_programs: Iterable[Tuple[OrderKey, Program]],
    deadline: Optional[float] = None,
) -> list[DiffOutcome]:
    """Classify one shared candidate enumeration under many (reference,
    subject) pairs at once — the witness-session payoff for conformance.

    Every program is enumerated (and, under the SAT backend, translated)
    **once** for all pairs; per-witness axiom verdicts are shared through
    one :class:`~repro.models.AxiomTable` spanning every model in flight;
    minimality verdicts are shared between pairs with the same reference.
    Each pair's :class:`DiffOutcome` is what its dedicated single-pair
    run would produce — same agreement counters, same keys, same
    representatives — because each accumulator replays the identical
    per-witness logic over the identical stream.  SAT counters are the
    shared enumeration's snapshot on every pair, with the translations
    actually run credited to the first pair and recorded as *avoided* on
    the rest.

    All diffs must share every enumeration-shaping knob of their base
    config (bound, caps, feature toggles, backend); only the models may
    differ.  ``deadline`` spans the whole fused pass: exceeding it marks
    *every* outcome timed out.
    """
    if not diffs:
        raise SynthesisError("fused diff pipeline needs at least one pair")
    base = diffs[0].base
    for diff in diffs[1:]:
        for name in _ENUMERATION_FIELDS:
            if getattr(diff.base, name) != getattr(base, name):
                raise SynthesisError(
                    "fused diff pipeline needs identical enumeration "
                    f"configs; field {name!r} differs"
                )

    # One axiom slot table across every distinct model in flight; each
    # pair resolves its (reference, subject) to table indices.
    model_index: dict = {}
    models = []
    def index_of(model: MemoryModel) -> int:
        key = model_fingerprint(model)
        index = model_index.get(key)
        if index is None:
            index = len(models)
            model_index[key] = index
            models.append(model)
        return index

    pair_indices = [
        (index_of(diff.reference), index_of(diff.subject)) for diff in diffs
    ]
    table = AxiomTable(models)

    use_shared_minimality = base.incremental
    use_symmetry = base.symmetry
    minimal_caches: dict = {}
    stage_acc = {"minimality": 0.0}
    accumulators = []
    for diff in diffs:
        ref_key = model_fingerprint(diff.reference)
        cache = minimal_caches.setdefault(ref_key, {})
        accumulators.append(_DiffAccumulator(diff, cache, stage_acc))

    #: Counters replayed for orbit-level dedup (per accumulator).
    _REPLAYED = (
        "interesting",
        "both_permit",
        "both_forbid",
        "only_reference_forbids",
        "only_subject_forbids",
    )
    #: canonical program key -> (identity rank, weighted executions,
    #: per-accumulator replayed-counter deltas).
    orbit_cache: dict = {}

    lead_stats = accumulators[0].outcome.stats
    witness_stream, sat_stats = witness_stream_factory(
        base, stage_times=lead_stats.stage_times
    )
    clock = time.perf_counter
    enumerate_s = classify_s = generate_s = 0.0
    witnesses_seen = 0
    timed_out = False
    tracer = current_tracer()
    registry = current_registry()

    generated = clock()
    # Publish the deadline on the cooperative channel so a stuck SAT
    # query inside one witness step can be interrupted mid-solve
    # (repro.resilience.deadline), and scope the solver knobs so every
    # solver built behind the shared witness stream picks up the
    # configured core and inprocessing setting.
    with deadline_scope(deadline), solver_preferences(
        core=base.solver_core, inprocess=base.inprocessing
    ):
        for order_key, program in ordered_programs:
            generate_s += clock() - generated
            if deadline is not None and time.monotonic() > deadline:
                timed_out = True
                break
            for accumulator in accumulators:
                accumulator.outcome.stats.programs_enumerated += 1
                accumulator.start_program()
            span = (
                tracer.begin(
                    "program",
                    category="diff",
                    order=list(order_key),
                    pairs=len(accumulators),
                )
                if tracer
                else None
            )
            try:
                sym = program_symmetry(program) if use_symmetry else None
                program_key_memo: list = []
                rep_rank_memo: list = []

                def program_key_of() -> ProgramKey:
                    if not program_key_memo:
                        program_key_memo.append(
                            sym.canonical_key
                            if sym is not None
                            else canonical_program_key(program)
                        )
                    return program_key_memo[0]

                def rep_rank_of() -> tuple:
                    if not rep_rank_memo:
                        rep_rank_memo.append(
                            sym.identity_key
                            if sym is not None
                            else identity_program_key(program)
                        )
                    return rep_rank_memo[0]

                if sym is not None:
                    if sym.prunable:
                        for accumulator in accumulators:
                            accumulator.outcome.stats.symmetric_programs += 1
                    record = orbit_cache.get(sym.canonical_key)
                    if record is not None and record[0] < sym.identity_key:
                        # Orbit-level dedup: replay the class's weighted totals
                        # without enumerating (or translating) the duplicate.
                        for accumulator, deltas in zip(accumulators, record[2]):
                            stats = accumulator.outcome.stats
                            stats.orbit_replays += 1
                            stats.executions_enumerated += record[1]
                            for name, delta in zip(_REPLAYED, deltas):
                                setattr(stats, name, getattr(stats, name) + delta)
                        if span is not None:
                            span.args["orbit_replay"] = True
                        if registry:
                            registry.observe(
                                "pipeline.witnesses_per_program", record[1]
                            )
                        continue
                before = [
                    tuple(
                        getattr(accumulator.outcome.stats, name)
                        for name in _REPLAYED
                    )
                    for accumulator in accumulators
                ]
                program_executions = 0

                started = clock()
                iterator = iter(witness_stream(program, sym))
                while True:
                    item = next(iterator, None)
                    enumerate_s += clock() - started
                    if item is None:
                        break
                    execution, weight = item
                    witnesses_seen += 1
                    program_executions += weight
                    for accumulator in accumulators:
                        stats = accumulator.outcome.stats
                        stats.executions_enumerated += weight
                        if weight > 1:
                            stats.orbit_witnesses_pruned += weight - 1
                    if (
                        deadline is not None
                        and witnesses_seen % 64 == 0
                        and time.monotonic() > deadline
                    ):
                        timed_out = True
                        break
                    started = clock()
                    permits = table.evaluator(execution)
                    execution_key_memo: list = []
                    witness_rank_memo: list = []

                    def execution_key_of() -> ExecutionKey:
                        if not execution_key_memo:
                            execution_key_memo.append(
                                execution_key_via(sym, execution)
                                if sym is not None
                                else canonical_execution_key(execution)
                            )
                        return execution_key_memo[0]

                    def witness_rank_of() -> tuple:
                        if not witness_rank_memo:
                            witness_rank_memo.append(
                                witness_sort_key(
                                    program,
                                    execution._rf,
                                    execution.co,
                                    execution.co_pa,
                                )
                            )
                        return witness_rank_memo[0]

                    for accumulator, (ref_index, sub_index) in zip(
                        accumulators, pair_indices
                    ):
                        accumulator.observe(
                            order_key,
                            program,
                            execution,
                            weight,
                            permits(ref_index),
                            permits(sub_index),
                            execution_key_of,
                            program_key_of,
                            rep_rank_of,
                            witness_rank_of,
                            use_shared_minimality,
                        )
                    classify_s += clock() - started
                    started = clock()
                if span is not None:
                    span.args["witnesses"] = program_executions
                if registry:
                    registry.observe(
                        "pipeline.witnesses_per_program", program_executions
                    )
                if timed_out or (
                    deadline is not None and time.monotonic() > deadline
                ):
                    timed_out = True
                    break
                if sym is not None:
                    record = orbit_cache.get(sym.canonical_key)
                    if record is None or sym.identity_key < record[0]:
                        deltas = tuple(
                            tuple(
                                getattr(accumulator.outcome.stats, name) - start
                                for name, start in zip(_REPLAYED, snapshot)
                            )
                            for accumulator, snapshot in zip(accumulators, before)
                        )
                        orbit_cache[sym.canonical_key] = (
                            sym.identity_key,
                            program_executions,
                            deltas,
                        )
            except SolverInterrupted:
                # The cooperative deadline cut a SAT query short mid-witness;
                # results up to the previous program stand as a partial
                # timeout for every pair in flight.
                timed_out = True
                break
            finally:
                tracer.end(span)
                generated = clock()

    outcomes = [accumulator.outcome for accumulator in accumulators]
    if timed_out:
        for outcome in outcomes:
            outcome.stats.timed_out = True
    if sat_stats is not None:
        # Every pair's stats absorb the shared enumeration's (snapshot)
        # solver counters — what each pair's dedicated run would report.
        # Translations actually performed are credited to the lead pair
        # only; the other pairs record them as *avoided*, so summing the
        # matrix still reflects the work done once, and a cell cached
        # from a fused run never reads as "zero solver work".
        from ..sat import SolverStats

        lead_stats.absorb_solver(sat_stats)
        if len(outcomes) > 1:
            shared = SolverStats()
            shared.merge(sat_stats)
            shared.translations_avoided += shared.translations
            shared.translations = 0
            shared.sessions = 0
            for outcome in outcomes[1:]:
                outcome.stats.absorb_solver(shared)
    minimality_s = stage_acc["minimality"]
    for stage, seconds in (
        ("generate", generate_s),
        ("enumerate", enumerate_s),
        ("classify", max(0.0, classify_s - minimality_s)),
        ("minimality", minimality_s),
    ):
        if seconds:
            lead_stats.stage_times[stage] = (
                lead_stats.stage_times.get(stage, 0.0) + seconds
            )
    return outcomes


def run_diff_pipeline(
    diff: DiffConfig,
    ordered_programs: Iterable[Tuple[OrderKey, Program]],
    deadline: Optional[float] = None,
) -> DiffOutcome:
    """Classify every candidate execution of an ordered program stream
    under (reference, subject); collect the discriminating ELT suite.

    Mirrors :func:`repro.synth.run_pipeline`'s merge contract: entries
    are keyed by canonical program class, the entry belongs to the class
    member with the smallest order key, and ``outcome_count``/key sets
    are class-invariant — so shard results merge to exactly the serial
    outcome (see :mod:`repro.orchestrate.merge` for the argument).

    The single-pair specialization of :func:`run_multi_diff_pipeline`
    (which is where the shared-enumeration logic lives).
    """
    return run_multi_diff_pipeline([diff], ordered_programs, deadline)[0]


@dataclass
class ConformanceCell:
    """One (reference, subject) pair's differential verdict at a bound:
    the Agreement-bucketed counts, the discriminating ELT suite, and the
    canonical-key evidence behind the refinement verdict."""

    reference: str
    subject: str
    bound: int
    elts: list = field(default_factory=list)
    stats: SuiteStats = field(default_factory=SuiteStats)
    reference_only_keys: Tuple[ExecutionKey, ...] = ()
    subject_only_keys: Tuple[ExecutionKey, ...] = ()

    @property
    def discriminating(self) -> list:
        """The synthesized distinguishing tests (reference forbids,
        subject permits, minimal under the reference)."""
        return self.elts

    @property
    def count(self) -> int:
        return len(self.elts)

    def counts(self) -> dict:
        """Agreement-bucket counts keyed like
        :meth:`~repro.models.ModelComparison.counts`."""
        return {
            Agreement.BOTH_PERMIT.value: self.stats.both_permit,
            Agreement.BOTH_FORBID.value: self.stats.both_forbid,
            Agreement.ONLY_REFERENCE_FORBIDS.value: (
                self.stats.only_reference_forbids
            ),
            Agreement.ONLY_SUBJECT_FORBIDS.value: (
                self.stats.only_subject_forbids
            ),
        }

    @property
    def verdict(self) -> Refinement:
        ref_only = self.stats.only_reference_forbids > 0
        sub_only = self.stats.only_subject_forbids > 0
        if ref_only and sub_only:
            return Refinement.INCOMPARABLE
        if ref_only:
            return Refinement.REFERENCE_STRONGER
        if sub_only:
            return Refinement.SUBJECT_STRONGER
        return Refinement.EQUIVALENT

    @property
    def equivalent_at_bound(self) -> bool:
        return self.verdict is Refinement.EQUIVALENT

    def keys(self) -> Set[ProgramKey]:
        return {elt.key for elt in self.elts}


def finalize_cell(
    diff: DiffConfig, outcome: DiffOutcome, runtime_s: float
) -> ConformanceCell:
    """Package a diff outcome as a sorted, counted :class:`ConformanceCell`."""
    cell = ConformanceCell(
        reference=diff.reference.name,
        subject=diff.subject.name,
        bound=diff.bound,
        stats=outcome.stats,
        reference_only_keys=tuple(sorted(outcome.reference_only_keys)),
        subject_only_keys=tuple(sorted(outcome.subject_only_keys)),
    )
    cell.elts = sorted(outcome.by_key.values(), key=lambda e: e.key)
    outcome.stats.unique_programs = len(cell.elts)
    outcome.stats.runtime_s = runtime_s
    return cell


def diff_models(diff: DiffConfig) -> ConformanceCell:
    """Run one differential pass serially (the ``--jobs 1`` path)."""
    started = time.monotonic()
    deadline = (
        None
        if diff.base.time_budget_s is None
        else started + diff.base.time_budget_s
    )
    outcome = run_diff_pipeline(
        diff,
        (
            ((index,), program)
            for index, program in enumerate(enumerate_programs(diff.base))
        ),
        deadline=deadline,
    )
    return finalize_cell(diff, outcome, time.monotonic() - started)

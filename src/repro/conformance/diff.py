"""The differential synthesis pipeline: one enumeration, two verdicts.

TransForm's headline payoff is *differencing* transistency models:
synthesized ELTs distinguished the buggy AMD-erratum variant of x86t
from the correct spec (paper §I, §VII).  This module runs that workload
over the same bounded skeleton/witness enumeration the synthesis engine
uses (:func:`repro.synth.run_pipeline`'s stream contract), but instead
of targeting one axiom it classifies every candidate execution under a
(reference, subject) model pair in a single pass:

* the candidate enumeration happens **once** per program — the witness
  stream is shared between the two models, and under the SAT backend the
  relational translation is built once per program, so the solver
  attacks each program's candidate problem at most twice (here: exactly
  once, unconstrained);
* classification goes through :class:`~repro.models.PairClassifier`,
  which evaluates each *distinct* axiom once per execution (catalog
  variants share most of their axioms, so e.g. x86t_elt vs x86t_amd_bug
  costs five axiom evaluations, not nine);
* executions *forbidden by the reference but permitted by the subject*
  that are also §IV-B minimal become the **discriminating ELT suite** —
  run one on hardware and an observed outcome proves the subject model
  (not the reference) describes the machine;
* every witness feeds the :class:`~repro.models.Agreement` counters on
  :class:`~repro.synth.SuiteStats`, and the canonical keys of both
  asymmetric buckets are collected for refinement verdicts.

Determinism is stronger than the synthesis engine's: the representative
execution of each discriminating ELT is chosen by *canonical key* (with
the serialized text as tie-break), not by stream position, so the
``.elts`` bytes of a diff suite are identical across ``--jobs`` settings
AND across witness backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional, Set, Tuple

from ..errors import SynthesisError
from ..litmus.format import serialize_elt
from ..models import Agreement, MemoryModel, PairClassifier
from ..mtm import Execution, Program
from ..synth import SuiteStats, SynthesisConfig
from ..synth.canon import (
    ExecutionKey,
    ProgramKey,
    canonical_execution_key,
    canonical_program_key,
)
from ..synth.engine import OrderKey, witness_stream_factory
from ..synth.relax import is_minimal
from ..synth.skeletons import enumerate_programs


class Refinement(Enum):
    """Observed refinement relation of a model pair at one bound.

    ``REFERENCE_STRONGER`` means the reference forbids strictly more than
    the subject on the enumerated executions — i.e. permitted(reference)
    ⊊ permitted(subject), the reference *refines* the subject (the "SC ⊑
    x86-TSO" direction with the stronger model as reference).
    """

    EQUIVALENT = "equivalent"
    REFERENCE_STRONGER = "reference-stronger"
    SUBJECT_STRONGER = "subject-stronger"
    INCOMPARABLE = "incomparable"


@dataclass
class DiffConfig:
    """One differential run: the reference model rides in ``base.model``
    (which also drives enumeration and minimality), ``subject`` is the
    model compared against it."""

    base: SynthesisConfig
    subject: MemoryModel

    def __post_init__(self) -> None:
        if self.base.target_axiom is not None:
            raise SynthesisError(
                "differential runs classify the whole candidate space; "
                "base.target_axiom must be None"
            )

    @property
    def reference(self) -> MemoryModel:
        return self.base.model

    @property
    def bound(self) -> int:
        return self.base.bound


@dataclass
class DiscriminatingElt:
    """One discriminating test: a program class whose candidate set
    contains a reference-forbidden, subject-permitted, §IV-B-minimal
    execution.  ``execution`` is the canonical representative (smallest
    (canonical key, serialized text) among the class winner's minimal
    discriminating witnesses); ``outcome_count`` counts the class's
    distinct such witnesses."""

    program: Program
    execution: Execution
    key: ProgramKey
    execution_key: ExecutionKey
    #: ``serialize_elt(execution)`` — the deterministic tie-break used
    #: during representative selection, kept because the suite writer
    #: reuses it.
    text: str
    violated_axioms: tuple  # reference axioms the representative violates
    outcome_count: int = 1


@dataclass
class DiffOutcome:
    """Raw product of one :func:`run_diff_pipeline` pass (per-shard
    shape; merged across shards by :mod:`repro.conformance.merge`)."""

    by_key: dict = field(default_factory=dict)
    order: dict = field(default_factory=dict)
    stats: SuiteStats = field(default_factory=SuiteStats)
    #: Canonical keys of every reference-forbidden/subject-permitted
    #: witness (minimal or not) — the semantic disagreement evidence.
    reference_only_keys: Set[ExecutionKey] = field(default_factory=set)
    #: ... and the opposite direction (reference permits, subject forbids).
    subject_only_keys: Set[ExecutionKey] = field(default_factory=set)


def run_diff_pipeline(
    diff: DiffConfig,
    ordered_programs: Iterable[Tuple[OrderKey, Program]],
    deadline: Optional[float] = None,
) -> DiffOutcome:
    """Classify every candidate execution of an ordered program stream
    under (reference, subject); collect the discriminating ELT suite.

    Mirrors :func:`repro.synth.run_pipeline`'s merge contract: entries
    are keyed by canonical program class, the entry belongs to the class
    member with the smallest order key, and ``outcome_count``/key sets
    are class-invariant — so shard results merge to exactly the serial
    outcome (see :mod:`repro.orchestrate.merge` for the argument).
    """
    reference = diff.reference
    classifier = PairClassifier(reference, diff.subject)
    outcome = DiffOutcome()
    stats = outcome.stats
    by_key = outcome.by_key
    #: is_minimal is invariant under program/witness isomorphism, so its
    #: verdict is cached per canonical execution key.
    minimal_cache: dict = {}
    #: Minimal discriminating keys already credited to an entry.
    counted_keys: Set[ExecutionKey] = set()

    witness_stream, sat_stats = witness_stream_factory(diff.base)

    for order_key, program in ordered_programs:
        if deadline is not None and time.monotonic() > deadline:
            stats.timed_out = True
            break
        stats.programs_enumerated += 1
        program_key: Optional[ProgramKey] = None
        for execution in witness_stream(program):
            stats.executions_enumerated += 1
            if (
                deadline is not None
                and stats.executions_enumerated % 64 == 0
                and time.monotonic() > deadline
            ):
                stats.timed_out = True
                break
            agreement = classifier.classify(execution)
            if agreement is Agreement.BOTH_PERMIT:
                stats.both_permit += 1
                continue
            if agreement is Agreement.BOTH_FORBID:
                stats.both_forbid += 1
                continue
            stats.interesting += 1
            execution_key = canonical_execution_key(execution)
            if agreement is Agreement.ONLY_SUBJECT_FORBIDS:
                stats.only_subject_forbids += 1
                outcome.subject_only_keys.add(execution_key)
                continue
            stats.only_reference_forbids += 1
            outcome.reference_only_keys.add(execution_key)

            minimal = minimal_cache.get(execution_key)
            if minimal is None:
                minimal = is_minimal(execution, reference)
                minimal_cache[execution_key] = minimal
            if not minimal:
                continue
            if program_key is None:
                program_key = canonical_program_key(program)
            entry = by_key.get(program_key)
            if execution_key not in counted_keys:
                counted_keys.add(execution_key)
                stats.minimal += 1
                if entry is None:
                    entry = DiscriminatingElt(
                        program=program,
                        execution=execution,
                        key=program_key,
                        execution_key=execution_key,
                        text=serialize_elt(execution),
                        violated_axioms=reference.check(execution).violated,
                    )
                    by_key[program_key] = entry
                    outcome.order[program_key] = order_key
                    continue
                entry.outcome_count += 1
            # Representative selection: only the class winner (the entry's
            # own program) competes, over ALL its minimal discriminating
            # witnesses — including canonical-key duplicates, so the min
            # is a property of the witness *set* and stays identical
            # across witness backends whose stream orders differ.  The
            # key decides almost always; serialization is the tie-break.
            if entry is not None and outcome.order[program_key] == order_key:
                if execution_key > entry.execution_key:
                    continue
                text = serialize_elt(execution)
                if (execution_key, text) < (entry.execution_key, entry.text):
                    entry.execution = execution
                    entry.execution_key = execution_key
                    entry.text = text
                    entry.violated_axioms = reference.check(execution).violated
        if deadline is not None and time.monotonic() > deadline:
            stats.timed_out = True
            break

    if sat_stats is not None:
        stats.absorb_solver(sat_stats)
    return outcome


@dataclass
class ConformanceCell:
    """One (reference, subject) pair's differential verdict at a bound:
    the Agreement-bucketed counts, the discriminating ELT suite, and the
    canonical-key evidence behind the refinement verdict."""

    reference: str
    subject: str
    bound: int
    elts: list = field(default_factory=list)
    stats: SuiteStats = field(default_factory=SuiteStats)
    reference_only_keys: Tuple[ExecutionKey, ...] = ()
    subject_only_keys: Tuple[ExecutionKey, ...] = ()

    @property
    def discriminating(self) -> list:
        """The synthesized distinguishing tests (reference forbids,
        subject permits, minimal under the reference)."""
        return self.elts

    @property
    def count(self) -> int:
        return len(self.elts)

    def counts(self) -> dict:
        """Agreement-bucket counts keyed like
        :meth:`~repro.models.ModelComparison.counts`."""
        return {
            Agreement.BOTH_PERMIT.value: self.stats.both_permit,
            Agreement.BOTH_FORBID.value: self.stats.both_forbid,
            Agreement.ONLY_REFERENCE_FORBIDS.value: (
                self.stats.only_reference_forbids
            ),
            Agreement.ONLY_SUBJECT_FORBIDS.value: (
                self.stats.only_subject_forbids
            ),
        }

    @property
    def verdict(self) -> Refinement:
        ref_only = self.stats.only_reference_forbids > 0
        sub_only = self.stats.only_subject_forbids > 0
        if ref_only and sub_only:
            return Refinement.INCOMPARABLE
        if ref_only:
            return Refinement.REFERENCE_STRONGER
        if sub_only:
            return Refinement.SUBJECT_STRONGER
        return Refinement.EQUIVALENT

    @property
    def equivalent_at_bound(self) -> bool:
        return self.verdict is Refinement.EQUIVALENT

    def keys(self) -> Set[ProgramKey]:
        return {elt.key for elt in self.elts}


def finalize_cell(
    diff: DiffConfig, outcome: DiffOutcome, runtime_s: float
) -> ConformanceCell:
    """Package a diff outcome as a sorted, counted :class:`ConformanceCell`."""
    cell = ConformanceCell(
        reference=diff.reference.name,
        subject=diff.subject.name,
        bound=diff.bound,
        stats=outcome.stats,
        reference_only_keys=tuple(sorted(outcome.reference_only_keys)),
        subject_only_keys=tuple(sorted(outcome.subject_only_keys)),
    )
    cell.elts = sorted(outcome.by_key.values(), key=lambda e: e.key)
    outcome.stats.unique_programs = len(cell.elts)
    outcome.stats.runtime_s = runtime_s
    return cell


def diff_models(diff: DiffConfig) -> ConformanceCell:
    """Run one differential pass serially (the ``--jobs 1`` path)."""
    started = time.monotonic()
    deadline = (
        None
        if diff.base.time_budget_s is None
        else started + diff.base.time_budget_s
    )
    outcome = run_diff_pipeline(
        diff,
        (
            ((index,), program)
            for index, program in enumerate(enumerate_programs(diff.base))
        ),
        deadline=deadline,
    )
    return finalize_cell(diff, outcome, time.monotonic() - started)

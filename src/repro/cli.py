"""Command-line interface: ``transform-synth``.

Subcommands mirror the framework's workflow:

* ``synthesize`` — run one per-axiom suite at a bound and print the ELTs;
* ``sweep``      — the Fig 9 per-axiom bound sweep (counts + runtimes);
* ``check``      — evaluate an ELT file (machine format) against a model;
* ``compare``    — the §VI-B comparison against the hand-written suite.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .litmus import format_execution, parse_elt
from .models import (
    MemoryModel,
    sequential_consistency,
    x86t_amd_bug,
    x86t_elt,
    x86tso,
)
from .reporting import (
    comparison_corpus,
    fig9_sweep,
    render_comparison,
    render_fig9a,
    render_fig9b,
    run_coatcheck_comparison,
)
from .synth import SynthesisConfig, synthesize

MODELS = {
    "x86t_elt": x86t_elt,
    "x86tso": x86tso,
    "sc": sequential_consistency,
    "x86t_amd_bug": x86t_amd_bug,
}


def _model(name: str) -> MemoryModel:
    try:
        return MODELS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown model {name!r}; choose from {sorted(MODELS)}"
        )


def cmd_synthesize(args: argparse.Namespace) -> int:
    model = _model(args.model)
    config = SynthesisConfig(
        bound=args.bound,
        model=model,
        target_axiom=args.axiom,
        max_threads=args.threads,
        mcm_mode=args.mcm,
        time_budget_s=args.budget,
    )
    result = synthesize(config)
    stats = result.stats
    print(
        f"suite[{args.axiom or 'any-axiom'} @ bound {args.bound}]: "
        f"{result.count} unique ELTs "
        f"({stats.programs_enumerated} programs, "
        f"{stats.executions_enumerated} executions, "
        f"{stats.runtime_s:.2f}s"
        f"{', TIMED OUT' if stats.timed_out else ''})"
    )
    for index, elt in enumerate(result.elts):
        print(f"\n--- ELT {index + 1} (violates: {', '.join(elt.violated_axioms)}) ---")
        print(format_execution(elt.execution, show_derived=args.verbose))
    if args.save:
        from .litmus import suite_from_synthesis

        prefix = args.axiom or "elt"
        path = suite_from_synthesis(result, prefix=prefix).save(args.save)
        print(f"\nsuite written to {path}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    bounds = None
    if args.max_bound is not None:
        from .models import X86T_ELT_AXIOM_NAMES

        bounds = {axiom: args.max_bound for axiom in X86T_ELT_AXIOM_NAMES}
    sweep = fig9_sweep(max_bounds=bounds, time_budget_per_run_s=args.budget)
    print(render_fig9a(sweep))
    print()
    print(render_fig9b(sweep))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    model = _model(args.model)
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as handle:
            text = handle.read()
    execution = parse_elt(text)
    print(format_execution(execution))
    verdict = model.check(execution)
    if args.explain and verdict.forbidden:
        from .models import render_explanations

        print()
        print(render_explanations(execution, model))
    else:
        print(f"\n{verdict}")
    return 0 if verdict.permitted else 1


def cmd_compare(args: argparse.Namespace) -> int:
    corpus = comparison_corpus()
    report = run_coatcheck_comparison(corpus)
    print(render_comparison(report))
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    from .synth import explore_program

    model = _model(args.model)
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as handle:
            text = handle.read()
    execution = parse_elt(text)
    exploration = explore_program(
        execution.program, model, limit=args.limit
    )
    print(exploration.summary())
    if args.verbose:
        for index, outcome in enumerate(exploration.outcomes, start=1):
            print(f"\n--- outcome {index}: {outcome.verdict} ---")
            print(format_execution(outcome.execution, show_derived=False))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="transform-synth",
        description="TransForm reproduction: formal MTMs and ELT synthesis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synthesize", help="synthesize a per-axiom ELT suite")
    synth.add_argument("--bound", type=int, required=True)
    synth.add_argument("--axiom", default=None, help="axiom to violate")
    synth.add_argument("--model", default="x86t_elt", choices=sorted(MODELS))
    synth.add_argument("--threads", type=int, default=2)
    synth.add_argument("--mcm", action="store_true", help="user-level MCM mode")
    synth.add_argument("--budget", type=float, default=None, help="seconds")
    synth.add_argument("--verbose", action="store_true")
    synth.add_argument("--save", default=None, help="write an .elts suite file")
    synth.set_defaults(func=cmd_synthesize)

    sweep = sub.add_parser("sweep", help="Fig 9 per-axiom bound sweep")
    sweep.add_argument("--max-bound", type=int, default=None)
    sweep.add_argument("--budget", type=float, default=None, help="seconds/run")
    sweep.set_defaults(func=cmd_sweep)

    check = sub.add_parser("check", help="check an ELT file against a model")
    check.add_argument("file", help="ELT machine-format file, or - for stdin")
    check.add_argument("--model", default="x86t_elt", choices=sorted(MODELS))
    check.add_argument(
        "--explain",
        action="store_true",
        help="print the labeled cycle witnessing each violated axiom",
    )
    check.set_defaults(func=cmd_check)

    compare = sub.add_parser(
        "compare", help="§VI-B comparison vs the hand-written COATCheck suite"
    )
    compare.set_defaults(func=cmd_compare)

    explore = sub.add_parser(
        "explore", help="enumerate all outcomes of an ELT program"
    )
    explore.add_argument("file", help="ELT machine-format file, or - for stdin")
    explore.add_argument("--model", default="x86t_elt", choices=sorted(MODELS))
    explore.add_argument("--limit", type=int, default=None)
    explore.add_argument("--verbose", action="store_true")
    explore.set_defaults(func=cmd_explore)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

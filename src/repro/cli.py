"""Command-line interface: ``transform-synth`` (alias ``repro``).

Subcommands mirror the framework's workflow:

* ``synthesize`` — run one per-axiom suite at a bound and print the ELTs;
* ``sweep``      — the Fig 9 per-axiom bound sweep (counts + runtimes);
* ``check``      — evaluate an ELT file (machine format) against a model;
* ``compare``    — the §VI-B comparison against the hand-written suite;
* ``diff``       — differential conformance: synthesize the ELTs that
  *distinguish* a subject model from a reference (the paper's x86t vs
  AMD-erratum case study), or the whole catalog's conformance matrix
  with ``--all-pairs``.  Exit status: 0 when the pair(s) are equivalent
  at the bound, 1 when discriminating tests exist, 2 on usage errors.
* ``fuzz``       — coverage-guided differential fuzzing *beyond* the
  enumeration bound: seeded random well-formed programs judged by the
  same differential oracle, findings shrunk to §IV-B-minimal ELTs and
  landed in the standard suite format, with a replayable regression
  corpus (``--corpus`` / ``--replay``).  Same exit convention as
  ``diff``: 1 when findings exist, 0 when none, 2 on usage errors.

``synthesize``, ``sweep`` and ``diff`` scale across cores and
invocations through the :mod:`repro.orchestrate` subsystem: ``--jobs N``
shards the search over N worker processes (the output suite is identical
to the serial path's, byte for byte), ``--cache-dir`` persists completed
shards and suites, and ``--resume`` re-runs an interrupted command
without redoing finished work.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .litmus import format_execution, parse_elt
from .models import CATALOG, MemoryModel, x86t_elt
from .reporting import (
    comparison_corpus,
    fig9_sweep,
    render_comparison,
    render_fig9a,
    render_fig9b,
    run_coatcheck_comparison,
)
from .synth import SynthesisConfig, synthesize

MODELS = dict(CATALOG)

#: The smallest bound at which the paper's case study discriminates:
#: x86t_elt vs x86t_amd_bug yields the fig 11-style stale-read ELT.
DEFAULT_DIFF_BOUND = 5

#: Default fuzz generation bound: just past the exhaustive enumeration's
#: practical ceiling (the beyond-the-bound regime starts here).
DEFAULT_FUZZ_BOUND = 8


def _model(name: str) -> MemoryModel:
    try:
        return MODELS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown model {name!r}; choose from {sorted(MODELS)}"
        )


def _usage_error(message: str) -> "SystemExit":
    """Usage errors exit with status 2 (argparse convention), leaving 1
    free to mean "discriminating tests exist" for ``diff``."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def _diff_model(name: str) -> MemoryModel:
    try:
        return MODELS[name]()
    except KeyError:
        raise _usage_error(
            f"unknown model {name!r}; choose from {sorted(MODELS)}"
        )


def _emit_profile(
    args: argparse.Namespace,
    stats,
    runtime_s: float,
    stream=None,
    leading_blank: bool = True,
) -> None:
    """The one ``--profile`` emitter (synthesize, sweep, and both diff
    paths all route here): renders the stage-profile JSON document as a
    view over the unified metrics registry."""
    if not getattr(args, "profile", False) or stats is None:
        return
    from .reporting import render_stage_profile

    out = sys.stdout if stream is None else stream
    if leading_blank:
        print(file=out)
    print(render_stage_profile(stats, runtime_s), file=out)


def _observation(args: argparse.Namespace):
    """The run's :class:`~repro.obs.Observation` (a no-op unless
    ``--trace`` asked for one)."""
    from .obs import Observation

    return Observation(trace_path=getattr(args, "trace", None))


def _finish_observation(
    obs,
    args: argparse.Namespace,
    command: str,
    identity: dict,
    stats,
    artifacts=None,
    extra=None,
) -> None:
    """Export the trace + write the run manifest (store-side too when a
    cache dir is in play).  No-op when observation is disabled."""
    if not obs.enabled:
        return
    from .orchestrate.store import identity_key

    obs.finish(
        command=command,
        identity=identity,
        identity_key=identity_key(identity),
        stats=stats,
        artifacts=artifacts,
        cache_dir=getattr(args, "cache_dir", None),
        extra=extra,
    )
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)


def _store(args: argparse.Namespace):
    """Build the suite store requested by --cache-dir/--resume (or None)."""
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be positive, got {args.jobs}")
    if args.shards is not None and args.shards < 1:
        raise SystemExit(f"--shards must be positive, got {args.shards}")
    if getattr(args, "max_retries", 0) < 0:
        raise SystemExit(
            f"--max-retries must be non-negative, got {args.max_retries}"
        )
    if getattr(args, "resume", False) and not getattr(args, "cache_dir", None):
        raise SystemExit("--resume requires --cache-dir")
    if getattr(args, "cache_dir", None):
        from .orchestrate import SuiteStore

        _retry, faults = _resilience(args)
        return SuiteStore(args.cache_dir, faults=faults)
    return None


def _resilience(args: argparse.Namespace):
    """The run's (RetryPolicy, FaultPlan-or-None) from --max-retries /
    --shard-timeout / --chaos."""
    from .resilience import RetryPolicy, default_chaos_plan

    retry = RetryPolicy(
        max_retries=getattr(args, "max_retries", 2),
        shard_timeout_s=getattr(args, "shard_timeout", None),
    )
    chaos = getattr(args, "chaos", None)
    faults = default_chaos_plan(chaos) if chaos is not None else None
    return retry, faults


def _warn_degraded(failures) -> None:
    """Print the degraded-result warning naming the quarantined shards."""
    if not failures:
        return
    lost = ", ".join(
        f"{f.label} ({f.kind}, {f.attempts} attempt(s))" for f in failures
    )
    print(
        f"WARNING: result is DEGRADED; quarantined shard(s): {lost}",
        file=sys.stderr,
    )


def cmd_synthesize(args: argparse.Namespace) -> int:
    model = _model(args.model)
    config = SynthesisConfig(
        bound=args.bound,
        model=model,
        target_axiom=args.axiom,
        max_threads=args.threads,
        mcm_mode=args.mcm,
        time_budget_s=args.budget,
        witness_backend=args.witness_backend,
        incremental=not args.fresh_solver,
        symmetry=not args.no_symmetry,
        solver_core=args.solver_core,
        inprocessing=not args.no_inprocessing,
    )
    store = _store(args)
    retry, faults = _resilience(args)
    orchestrated = None
    obs = _observation(args)
    with obs:
        if (
            args.jobs > 1
            or args.shards is not None
            or store is not None
            or args.chaos is not None
        ):
            from .orchestrate import run_sharded

            orchestrated = run_sharded(
                config,
                jobs=args.jobs,
                shard_count=args.shards,
                store=store,
                retry=retry,
                faults=faults,
            )
            result = orchestrated.result
        else:
            result = synthesize(config)
    stats = result.stats
    print(
        f"suite[{args.axiom or 'any-axiom'} @ bound {args.bound}]: "
        f"{result.count} unique ELTs "
        f"({stats.programs_enumerated} programs, "
        f"{stats.executions_enumerated} executions, "
        f"{stats.runtime_s:.2f}s"
        f"{', TIMED OUT' if stats.timed_out else ''}"
        f"{', DEGRADED' if stats.degraded else ''})"
    )
    if orchestrated is not None:
        _warn_degraded(orchestrated.failures)
    if args.witness_backend == "sat":
        from .reporting import render_sat_counters

        print()
        print(render_sat_counters(stats))
    if not args.no_symmetry:
        from .reporting import render_symmetry_counters

        print()
        print(render_symmetry_counters(stats))
    _emit_profile(args, stats, stats.runtime_s)
    if orchestrated is not None and (
        orchestrated.shard_results or orchestrated.suite_cache_hit
    ):
        from .reporting import render_shard_runtimes

        print()
        print(render_shard_runtimes(orchestrated))
    for index, elt in enumerate(result.elts):
        print(f"\n--- ELT {index + 1} (violates: {', '.join(elt.violated_axioms)}) ---")
        print(format_execution(elt.execution, show_derived=args.verbose))
    artifacts = None
    if args.save:
        from .litmus import suite_from_synthesis

        prefix = args.axiom or "elt"
        path = suite_from_synthesis(result, prefix=prefix).save(args.save)
        print(f"\nsuite written to {path}")
        artifacts = {"suite": path}
    if obs.enabled:
        from .orchestrate.store import config_identity

        _finish_observation(
            obs,
            args,
            "synthesize",
            config_identity(config),
            stats,
            artifacts=artifacts,
        )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .models import X86T_ELT_AXIOM_NAMES
    from .reporting import resolve_max_bounds, resolve_sweep_budget

    store = _store(args)
    for axiom in args.axiom or ():
        if axiom not in X86T_ELT_AXIOM_NAMES:
            raise SystemExit(
                f"unknown axiom {axiom!r}; choose from "
                f"{sorted(X86T_ELT_AXIOM_NAMES)}"
            )
    explicit = (
        None
        if args.max_bound is None
        else {axiom: args.max_bound for axiom in X86T_ELT_AXIOM_NAMES}
    )
    bounds = resolve_max_bounds(explicit, axioms=args.axiom or None)
    budget = resolve_sweep_budget(args.budget)
    obs = _observation(args)
    retry, faults = _resilience(args)
    with obs:
        if (
            args.jobs > 1
            or args.shards is not None
            or store is not None
            or args.chaos is not None
        ):
            from .orchestrate import run_sweep_sharded
            from .reporting import render_sweep_cache_summary

            sweep, records = run_sweep_sharded(
                SynthesisConfig(
                    bound=4,
                    model=x86t_elt(),
                    witness_backend=args.witness_backend,
                    incremental=not args.fresh_solver,
                    symmetry=not args.no_symmetry,
                    solver_core=args.solver_core,
                    inprocessing=not args.no_inprocessing,
                ),
                axioms=sorted(bounds, key=list(X86T_ELT_AXIOM_NAMES).index),
                min_bound=4,
                max_bound=bounds,
                time_budget_per_run_s=budget,
                jobs=args.jobs,
                shard_count=args.shards,
                store=store,
                retry=retry,
                faults=faults,
            )
            cache_summary = render_sweep_cache_summary(records)
            for record in records:
                _warn_degraded(record.failures)
        else:
            sweep = fig9_sweep(
                max_bounds=bounds,
                time_budget_per_run_s=budget,
                witness_backend=args.witness_backend,
                incremental=not args.fresh_solver,
                symmetry=not args.no_symmetry,
                solver_core=args.solver_core,
                inprocessing=not args.no_inprocessing,
            )
            cache_summary = None
    if cache_summary is not None:
        print(cache_summary)
        print()
    print(render_fig9a(sweep))
    print()
    print(render_fig9b(sweep))
    if sweep.skipped:
        print()
        skipped = ", ".join(f"{a}@{b}" for a, b in sweep.skipped)
        print(f"bounds skipped after timeout: {skipped}")
    if args.profile or obs.enabled:
        from .synth import SuiteStats

        aggregate = SuiteStats()
        total = 0.0
        for point in sweep.points:
            aggregate.absorb(point.result.stats)
            total += point.result.stats.runtime_s
        aggregate.runtime_s = total
        _emit_profile(args, aggregate, total)
        _finish_observation(
            obs,
            args,
            "sweep",
            {
                "kind": "sweep",
                "max_bounds": dict(sorted(bounds.items())),
                "budget_s": budget,
                "witness_backend": args.witness_backend,
                "incremental": not args.fresh_solver,
                "symmetry": not args.no_symmetry,
                "solver_core": args.solver_core,
                "inprocessing": not args.no_inprocessing,
            },
            aggregate,
        )
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    model = _model(args.model)
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as handle:
            text = handle.read()
    execution = parse_elt(text)
    print(format_execution(execution))
    verdict = model.check(execution)
    if args.explain and verdict.forbidden:
        from .models import render_explanations

        print()
        print(render_explanations(execution, model))
    else:
        print(f"\n{verdict}")
    return 0 if verdict.permitted else 1


def cmd_compare(args: argparse.Namespace) -> int:
    corpus = comparison_corpus()
    report = run_coatcheck_comparison(corpus)
    print(render_comparison(report))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from .conformance import DiffConfig, cell_to_json, diff_models, run_diff

    if args.all_pairs and (args.reference or args.subject):
        raise _usage_error("--all-pairs excludes --reference/--subject")
    if not args.all_pairs and not (args.reference and args.subject):
        raise _usage_error(
            "diff needs --reference and --subject (or --all-pairs)"
        )
    if args.all_pairs and args.save:
        raise _usage_error(
            "--save applies to a single pair's discriminating suite; "
            "use --json to capture an --all-pairs run"
        )
    # Validate the orchestration arguments here so their failures honor
    # diff's exit-code contract (2 = usage error); _store's own SystemExit
    # paths carry string payloads, which exit 1.
    if args.jobs < 1:
        raise _usage_error(f"--jobs must be positive, got {args.jobs}")
    if args.shards is not None and args.shards < 1:
        raise _usage_error(f"--shards must be positive, got {args.shards}")
    if args.resume and not args.cache_dir:
        raise _usage_error("--resume requires --cache-dir")
    store = _store(args)

    if args.all_pairs:
        from .conformance import run_all_pairs
        from .models import catalog_models
        from .reporting import (
            render_conformance_matrix,
            render_pair_cache_summary,
        )

        models = catalog_models()
        base = SynthesisConfig(
            bound=args.bound,
            model=x86t_elt(),
            max_threads=args.threads,
            time_budget_s=args.budget,
            witness_backend=args.witness_backend,
            incremental=not args.fresh_solver,
            symmetry=not args.no_symmetry,
            solver_core=args.solver_core,
            inprocessing=not args.no_inprocessing,
        )
        obs = _observation(args)
        retry, faults = _resilience(args)
        with obs:
            matrix, records = run_all_pairs(
                base,
                models=models,
                jobs=args.jobs,
                shard_count=args.shards,
                store=store,
                retry=retry,
                faults=faults,
            )
        for record in records:
            _warn_degraded(record.failures)
        aggregate = None
        if args.witness_backend == "sat" or args.profile or obs.enabled:
            from .synth import SuiteStats

            aggregate = SuiteStats()
            for cell in matrix.cells.values():
                aggregate.absorb(cell.stats)
                aggregate.runtime_s += cell.stats.runtime_s
        if args.json:
            print(json.dumps(matrix.to_json(), indent=2, sort_keys=True))
        else:
            print(render_conformance_matrix(matrix, models=models))
            if store is not None:
                print()
                print(render_pair_cache_summary(records))
            if args.witness_backend == "sat":
                from .reporting import render_sat_counters

                print()
                print(render_sat_counters(aggregate))
            violations = matrix.inclusion_violations(models)
            if violations:
                rendered = ", ".join(f"{r}⊑{s}" for r, s in violations)
                print(f"\nWARNING: axiom-subset inclusions violated: {rendered}")
        _emit_profile(
            args,
            aggregate,
            aggregate.runtime_s if aggregate is not None else 0.0,
            stream=sys.stderr if args.json else sys.stdout,
            leading_blank=False,
        )
        if obs.enabled:
            from .orchestrate.store import config_identity

            identity = config_identity(base)
            identity["kind"] = "diff-all-pairs"
            identity["models"] = sorted(models)
            _finish_observation(obs, args, "diff --all-pairs", identity, aggregate)
        return 1 if matrix.discriminating_total else 0

    reference = _diff_model(args.reference)
    subject = _diff_model(args.subject)
    diff = DiffConfig(
        base=SynthesisConfig(
            bound=args.bound,
            model=reference,
            max_threads=args.threads,
            time_budget_s=args.budget,
            witness_backend=args.witness_backend,
            incremental=not args.fresh_solver,
            symmetry=not args.no_symmetry,
            solver_core=args.solver_core,
            inprocessing=not args.no_inprocessing,
        ),
        subject=subject,
    )
    run_record = None
    obs = _observation(args)
    retry, faults = _resilience(args)
    with obs:
        if (
            args.jobs > 1
            or args.shards is not None
            or store is not None
            or args.chaos is not None
        ):
            run_record = run_diff(
                diff,
                jobs=args.jobs,
                shard_count=args.shards,
                store=store,
                retry=retry,
                faults=faults,
            )
            cell = run_record.cell
        else:
            cell = diff_models(diff)
    if run_record is not None:
        _warn_degraded(run_record.failures)

    if args.json:
        print(json.dumps(cell_to_json(cell), indent=2, sort_keys=True))
    else:
        from .reporting import render_conformance_cell

        print(render_conformance_cell(cell))
        if run_record is not None and store is not None:
            print(
                f"cache: cell_hit={run_record.cell_cache_hit} "
                f"shard_hits={run_record.shard_cache_hits} "
                f"shard_misses={run_record.shard_cache_misses}"
            )
        if args.witness_backend == "sat":
            from .reporting import render_sat_counters

            print()
            print(render_sat_counters(cell.stats))
        for index, elt in enumerate(cell.elts, start=1):
            print(
                f"\n--- discriminating ELT {index} "
                f"(violates: {', '.join(elt.violated_axioms)}) ---"
            )
            print(format_execution(elt.execution, show_derived=args.verbose))
    _emit_profile(
        args,
        cell.stats,
        cell.stats.runtime_s,
        stream=sys.stderr if args.json else sys.stdout,
        leading_blank=False,
    )
    artifacts = None
    if args.save:
        from .litmus import suite_from_diff

        path = suite_from_diff(cell).save(args.save)
        if not args.json:
            print(f"\ndiff suite written to {path}")
        artifacts = {"suite": path}
    if obs.enabled:
        from .conformance import diff_identity

        _finish_observation(
            obs, args, "diff", diff_identity(diff), cell.stats,
            artifacts=artifacts,
        )
    return 1 if cell.discriminating else 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import FuzzConfig, fuzz_identity, replay_corpus, run_fuzz, write_corpus

    if args.replay:
        if not args.corpus:
            raise _usage_error("--replay needs --corpus DIR to replay from")
        report = replay_corpus(args.corpus)
        if args.json:
            print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        else:
            print(
                f"corpus replay: {report.entries} entr"
                f"{'y' if report.entries == 1 else 'ies'} in "
                f"{report.directory}: {'OK' if report.ok else 'FAILED'}"
            )
            for file, test, reason in report.failures:
                print(f"  {file} [{test}]: {reason}")
        return 0 if report.ok else 1

    # Validate orchestration arguments here so their failures honor the
    # fuzz exit-code contract (2 = usage error, 1 = findings exist).
    if args.jobs < 1:
        raise _usage_error(f"--jobs must be positive, got {args.jobs}")
    if args.shards is not None and args.shards < 1:
        raise _usage_error(f"--shards must be positive, got {args.shards}")
    if args.resume and not args.cache_dir:
        raise _usage_error("--resume requires --cache-dir")
    if args.bound < 1:
        raise _usage_error(f"--bound must be positive, got {args.bound}")
    if args.rounds < 1:
        raise _usage_error(f"--rounds must be positive, got {args.rounds}")
    if args.attempts < 1:
        raise _usage_error(f"--attempts must be positive, got {args.attempts}")
    store = _store(args)

    config = FuzzConfig(
        seed=args.seed,
        bound=args.bound,
        reference=_diff_model(args.reference),
        subject=_diff_model(args.subject),
        rounds=args.rounds,
        attempts_per_round=args.attempts,
        max_threads=args.threads,
        max_witnesses=args.max_witnesses,
        time_budget_s=args.budget,
        witness_backend=args.witness_backend,
        incremental=not args.fresh_solver,
        symmetry=not args.no_symmetry,
        solver_core=args.solver_core,
        inprocessing=not args.no_inprocessing,
    )
    obs = _observation(args)
    retry, faults = _resilience(args)
    with obs:
        result = run_fuzz(
            config,
            jobs=args.jobs,
            shard_count=args.shards,
            store=store,
            retry=retry,
            faults=faults,
        )
    _warn_degraded(result.failures)

    snapshot = result.coverage.snapshot()
    if args.json:
        document = {
            "identity": fuzz_identity(config),
            "stats": result.stats.to_json(),
            "coverage": snapshot,
            "rounds_run": result.rounds_run,
            "findings": [
                {
                    "class": finding.digest,
                    "violates": list(finding.violated_axioms),
                    "size": finding.program.size,
                    "shrink_steps": finding.shrink_steps,
                    "occurrences": finding.occurrences,
                    "source": list(finding.source),
                }
                for finding in result.findings
            ],
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        stats = result.stats
        print(
            f"fuzz {result.reference} vs {result.subject}: seed={result.seed} "
            f"bound={result.bound} rounds={result.rounds_run}"
        )
        print(
            f"attempts={stats.programs_generated} "
            f"classes={snapshot['classes']} behaviors={snapshot['behaviors']} "
            f"saturated={'yes' if snapshot['saturated'] else 'no'}"
        )
        print(
            f"discriminating={stats.discriminating} "
            f"findings={stats.findings} shrink_steps={stats.shrink_steps} "
            f"shrink_failed={stats.shrink_failed} truncated={stats.truncated}"
        )
        if stats.timed_out:
            print("NOTE: run hit --budget; coverage and findings are partial")
        if store is not None:
            print(
                f"cache: run_hit={result.run_cache_hit} "
                f"shard_hits={result.shard_cache_hits} "
                f"shard_misses={result.shard_cache_misses}"
            )
        for index, finding in enumerate(result.findings, start=1):
            print(
                f"\n--- finding {index} (class {finding.digest}, violates: "
                f"{', '.join(finding.violated_axioms)}, size "
                f"{finding.program.size}, shrink steps "
                f"{finding.shrink_steps}) ---"
            )
            print(
                format_execution(finding.execution, show_derived=args.verbose)
            )
    if getattr(args, "profile", False):
        out = sys.stderr if args.json else sys.stdout
        print(
            json.dumps(
                {"fuzz_stats": result.stats.to_json()}, sort_keys=True
            ),
            file=out,
        )
    artifacts = {}
    if args.save:
        from .litmus import suite_from_fuzz

        path = suite_from_fuzz(result).save(args.save)
        if not args.json:
            print(f"\nfuzz suite written to {path}")
        artifacts["suite"] = path
    if args.corpus:
        paths = write_corpus(result, args.corpus)
        if not args.json:
            print(f"corpus: {len(paths)} finding(s) written to {args.corpus}")
        artifacts["corpus"] = args.corpus
    if obs.enabled:
        identity = fuzz_identity(config)
        identity["kind"] = "fuzz"
        # FuzzStats is not a SuiteStats (no stage times); ship the fuzz
        # counters and coverage through the manifest's extra block.
        _finish_observation(
            obs, args, "fuzz", identity, None,
            artifacts=artifacts or None,
            extra={"fuzz_stats": result.stats.to_json(), "coverage": snapshot},
        )
    return 1 if result.findings else 0


def cmd_stats(args: argparse.Namespace) -> int:
    from .obs import list_manifests

    manifests = list_manifests(args.cache_dir)
    if args.key:
        manifests = [
            manifest
            for manifest in manifests
            if manifest.get("identity_key", "").startswith(args.key)
        ]
    if args.json:
        print(json.dumps(manifests, indent=2, sort_keys=True))
        return 0
    from .sat import accel_status

    status = accel_status()
    built = (
        f"built ({status['extension']}, {status['built_at']})"
        if status["available"]
        else "not built (python -m repro.sat.build_accel)"
    )
    print(
        f"solver acceleration: {built}; "
        f"default core: {status['default_core']}"
    )
    if not manifests:
        print(f"no run manifests under {args.cache_dir}/manifests")
        return 0
    from .reporting import render_table

    rows = []
    for manifest in manifests:
        counters = manifest.get("counters", {}).get("counters", {})
        timing = manifest.get("timing", {})
        rows.append(
            [
                manifest.get("command", "?"),
                manifest.get("identity_key", "")[:12],
                counters.get("suite.programs_enumerated", 0),
                counters.get("suite.executions_enumerated", 0),
                counters.get("suite.interesting", 0),
                f"{timing.get('wall_s', 0.0):.2f}",
            ]
        )
    print(
        render_table(
            ["command", "key", "programs", "executions", "interesting", "wall_s"],
            rows,
            title=f"run manifests ({args.cache_dir})",
        )
    )
    if args.verbose:
        for manifest in manifests:
            print()
            print(f"-- {manifest.get('identity_key', '')} --")
            counters = manifest.get("counters", {}).get("counters", {})
            for name, value in sorted(counters.items()):
                print(f"  {name} = {value}")
            stage_s = manifest.get("timing", {}).get("stage_s", {})
            for name, value in sorted(stage_s.items()):
                print(f"  stage_s.{name} = {value}")
    return 0


def cmd_store_verify(args: argparse.Namespace) -> int:
    from .orchestrate import SuiteStore

    store = SuiteStore(args.cache_dir)
    report = store.verify(repair=args.repair)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(
            f"store {args.cache_dir}: {report.scanned} entr(ies) scanned, "
            f"{report.ok} ok, {len(report.corrupt)} corrupt, "
            f"{len(report.orphaned)} orphaned"
        )
        for key in sorted(report.corrupt):
            print(f"  corrupt: {key}")
        for key in sorted(report.orphaned):
            print(f"  orphaned: {key}")
        if report.repaired:
            print(f"repaired: bad entries moved to {store.quarantine_dir}")
        elif not report.clean:
            print("re-run with --repair to quarantine them")
    return 0 if report.clean else 1


def cmd_explore(args: argparse.Namespace) -> int:
    from .synth import explore_program

    model = _model(args.model)
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as handle:
            text = handle.read()
    execution = parse_elt(text)
    exploration = explore_program(
        execution.program, model, limit=args.limit
    )
    print(exploration.summary())
    if args.verbose:
        for index, outcome in enumerate(exploration.outcomes, start=1):
            print(f"\n--- outcome {index}: {outcome.verdict} ---")
            print(format_execution(outcome.execution, show_derived=False))
    return 0


def _add_orchestration_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--witness-backend",
        choices=("explicit", "sat"),
        default="explicit",
        help="candidate-execution enumerator: the explicit Python "
        "enumerator or the relational SAT (Alloy-port) pipeline; both "
        "yield the same canonical ELT suite (representative witness "
        "details may differ), and each is byte-reproducible",
    )
    parser.add_argument(
        "--fresh-solver",
        action="store_true",
        help="disable incremental witness sessions: rebuild the relational "
        "translation and solver for every query (the differential oracle "
        "path; output is byte-identical either way)",
    )
    parser.add_argument(
        "--no-symmetry",
        action="store_true",
        help="disable symmetry-aware enumeration (witness-orbit pruning, "
        "SAT lex-leader clauses, orbit-level program dedup) — the "
        "differential oracle path; output is byte-identical either way",
    )
    parser.add_argument(
        "--solver-core",
        choices=("auto", "object", "array", "accel"),
        default="auto",
        help="CDCL clause-storage core: 'auto' (default) picks the "
        "C-accelerated arena core when the repro.sat._accel extension "
        "is built (python -m repro.sat.build_accel) and the pure-Python "
        "array core otherwise; all cores run byte-for-byte the same "
        "search, so 'object' is the differential oracle path and output "
        "is byte-identical whichever is selected",
    )
    parser.add_argument(
        "--no-inprocessing",
        action="store_true",
        help="disable solver inprocessing (learned-clause vivification "
        "and subsumption at query boundaries) — the differential oracle "
        "path; output is byte-identical either way",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-stage wall-time JSON (translate / solve / decode / "
        "classify / minimality) after the report",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a structured run trace here: Chrome trace_event JSON "
        "(load it in Perfetto or chrome://tracing), or a JSONL event log "
        "when FILE ends in .jsonl; the export embeds the metrics snapshot "
        "and the run manifest, and the run's output stays byte-identical "
        "to an untraced one",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (shards the search; output stays identical)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="work units to plan (default: 4 per job when parallel)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist completed shards/suites here and reuse them",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run from --cache-dir without redoing "
        "finished work (reuse is automatic whenever --cache-dir is set)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="re-run a failed shard up to N times (deterministic backoff) "
        "before quarantining it into a degraded result (default 2)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard wall timeout: a shard stuck longer than this is "
        "killed (pool recycle), charged an attempt, and retried "
        "(default: no per-shard timeout)",
    )
    parser.add_argument(
        "--chaos",
        type=int,
        default=None,
        metavar="SEED",
        help="deterministic fault injection for resilience testing: the "
        "seeded plan crashes/delays workers and flips stored payload "
        "bits; when every shard eventually succeeds, output is "
        "byte-identical to a fault-free run",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="transform-synth",
        description="TransForm reproduction: formal MTMs and ELT synthesis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synthesize", help="synthesize a per-axiom ELT suite")
    synth.add_argument("--bound", type=int, required=True)
    synth.add_argument("--axiom", default=None, help="axiom to violate")
    synth.add_argument("--model", default="x86t_elt", choices=sorted(MODELS))
    synth.add_argument("--threads", type=int, default=2)
    synth.add_argument("--mcm", action="store_true", help="user-level MCM mode")
    synth.add_argument("--budget", type=float, default=None, help="seconds")
    synth.add_argument("--verbose", action="store_true")
    synth.add_argument("--save", default=None, help="write an .elts suite file")
    _add_orchestration_arguments(synth)
    synth.set_defaults(func=cmd_synthesize)

    sweep = sub.add_parser("sweep", help="Fig 9 per-axiom bound sweep")
    sweep.add_argument("--max-bound", type=int, default=None)
    sweep.add_argument("--budget", type=float, default=None, help="seconds/run")
    sweep.add_argument(
        "--axiom",
        action="append",
        default=None,
        help="restrict to this axiom (repeatable)",
    )
    _add_orchestration_arguments(sweep)
    sweep.set_defaults(func=cmd_sweep)

    diff = sub.add_parser(
        "diff",
        help="differential conformance: synthesize the ELTs distinguishing "
        "a subject model from a reference (exit 1 when any exist)",
    )
    diff.add_argument(
        "--reference",
        default=None,
        help="the spec model (forbids the discriminating tests)",
    )
    diff.add_argument(
        "--subject",
        default=None,
        help="the model under comparison (permits them)",
    )
    diff.add_argument(
        "--all-pairs",
        action="store_true",
        help="run every ordered pair of the model catalog and print the "
        "conformance matrix",
    )
    diff.add_argument(
        "--bound",
        type=int,
        default=DEFAULT_DIFF_BOUND,
        help=f"instruction bound (default {DEFAULT_DIFF_BOUND}, the "
        "smallest at which the x86t-vs-AMD-erratum pair discriminates)",
    )
    diff.add_argument("--threads", type=int, default=2)
    diff.add_argument("--budget", type=float, default=None, help="seconds/pair")
    diff.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (stable schema, version field inside)",
    )
    diff.add_argument("--verbose", action="store_true")
    diff.add_argument("--save", default=None, help="write the discriminating "
                      "suite as an .elts file (pair mode only)")
    _add_orchestration_arguments(diff)
    diff.set_defaults(func=cmd_diff)

    fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided differential fuzzing beyond the enumeration "
        "bound: random well-formed programs, shrunk findings, replayable "
        "corpus (exit 1 when findings exist)",
    )
    fuzz.add_argument(
        "--reference",
        default="x86t_elt",
        help="the spec model (forbids the findings; default x86t_elt)",
    )
    fuzz.add_argument(
        "--subject",
        default="x86t_amd_bug",
        help="the model under comparison (permits them; default "
        "x86t_amd_bug, the AMD INVLPG erratum)",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="run seed: the only entropy source; a fixed seed makes the "
        "findings byte-identical across --jobs (default 0)",
    )
    fuzz.add_argument(
        "--bound",
        type=int,
        default=DEFAULT_FUZZ_BOUND,
        help=f"max events per random program (default {DEFAULT_FUZZ_BOUND}; "
        "8-12 is the beyond-the-enumeration regime)",
    )
    fuzz.add_argument(
        "--rounds",
        type=int,
        default=2,
        help="coverage-feedback rounds: generation profiles re-weight at "
        "each round barrier toward profiles that found novelty (default 2)",
    )
    fuzz.add_argument(
        "--attempts",
        type=int,
        default=64,
        help="programs generated per round (default 64)",
    )
    fuzz.add_argument("--threads", type=int, default=2)
    fuzz.add_argument(
        "--max-witnesses",
        type=int,
        default=20000,
        help="abandon a program whose candidate-execution count exceeds "
        "this (counted as truncated; default 20000)",
    )
    fuzz.add_argument(
        "--budget", type=float, default=None, help="seconds for the whole run"
    )
    fuzz.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (stable schema, version field inside)",
    )
    fuzz.add_argument("--verbose", action="store_true")
    fuzz.add_argument(
        "--save",
        default=None,
        help="write the shrunk findings as a standard .elts suite file",
    )
    fuzz.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="write one .elts file per finding into DIR (content-addressed "
        "by orbit-class digest); with --replay, the directory to re-judge",
    )
    fuzz.add_argument(
        "--replay",
        action="store_true",
        help="replay --corpus DIR instead of fuzzing: re-judge every "
        "committed finding from scratch (exit 1 on any regression)",
    )
    _add_orchestration_arguments(fuzz)
    fuzz.set_defaults(func=cmd_fuzz)

    check = sub.add_parser("check", help="check an ELT file against a model")
    check.add_argument("file", help="ELT machine-format file, or - for stdin")
    check.add_argument("--model", default="x86t_elt", choices=sorted(MODELS))
    check.add_argument(
        "--explain",
        action="store_true",
        help="print the labeled cycle witnessing each violated axiom",
    )
    check.set_defaults(func=cmd_check)

    compare = sub.add_parser(
        "compare", help="§VI-B comparison vs the hand-written COATCheck suite"
    )
    compare.set_defaults(func=cmd_compare)

    stats = sub.add_parser(
        "stats",
        help="render the run manifests recorded in a cache dir "
        "(counters, stage times, artifact digests)",
    )
    stats.add_argument(
        "--cache-dir",
        required=True,
        help="the store whose manifests/ tree to read",
    )
    stats.add_argument(
        "--key",
        default=None,
        help="only manifests whose identity key starts with this prefix",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="dump the matching manifests as a JSON array",
    )
    stats.add_argument(
        "--verbose",
        action="store_true",
        help="also print every deterministic counter and stage time",
    )
    stats.set_defaults(func=cmd_stats)

    store = sub.add_parser(
        "store",
        help="suite-store maintenance (integrity verification and repair)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    verify = store_sub.add_parser(
        "verify",
        help="digest-check every cache entry; exit 1 when damage is found",
    )
    verify.add_argument(
        "--cache-dir",
        required=True,
        help="the store to scan (same directory as --cache-dir elsewhere)",
    )
    verify.add_argument(
        "--repair",
        action="store_true",
        help="move corrupt/orphaned entries into quarantine/ so later "
        "runs recompute them",
    )
    verify.add_argument(
        "--json",
        action="store_true",
        help="machine-readable verification report",
    )
    verify.set_defaults(func=cmd_store_verify)

    explore = sub.add_parser(
        "explore", help="enumerate all outcomes of an ELT program"
    )
    explore.add_argument("file", help="ELT machine-format file, or - for stdin")
    explore.add_argument("--model", default="x86t_elt", choices=sorted(MODELS))
    explore.add_argument("--limit", type=int, default=None)
    explore.add_argument("--verbose", action="store_true")
    explore.set_defaults(func=cmd_explore)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: ``transform-synth`` (alias ``repro``).

Subcommands mirror the framework's workflow:

* ``synthesize`` — run one per-axiom suite at a bound and print the ELTs;
* ``sweep``      — the Fig 9 per-axiom bound sweep (counts + runtimes);
* ``check``      — evaluate an ELT file (machine format) against a model;
* ``compare``    — the §VI-B comparison against the hand-written suite.

``synthesize`` and ``sweep`` scale across cores and invocations through
the :mod:`repro.orchestrate` subsystem: ``--jobs N`` shards the search
over N worker processes (the output suite is identical to the serial
path's, byte for byte), ``--cache-dir`` persists completed shards and
suites, and ``--resume`` re-runs an interrupted command without redoing
finished work.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .litmus import format_execution, parse_elt
from .models import (
    MemoryModel,
    sequential_consistency,
    x86t_amd_bug,
    x86t_elt,
    x86tso,
)
from .reporting import (
    comparison_corpus,
    fig9_sweep,
    render_comparison,
    render_fig9a,
    render_fig9b,
    run_coatcheck_comparison,
)
from .synth import SynthesisConfig, synthesize

MODELS = {
    "x86t_elt": x86t_elt,
    "x86tso": x86tso,
    "sc": sequential_consistency,
    "x86t_amd_bug": x86t_amd_bug,
}


def _model(name: str) -> MemoryModel:
    try:
        return MODELS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown model {name!r}; choose from {sorted(MODELS)}"
        )


def _store(args: argparse.Namespace):
    """Build the suite store requested by --cache-dir/--resume (or None)."""
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be positive, got {args.jobs}")
    if args.shards is not None and args.shards < 1:
        raise SystemExit(f"--shards must be positive, got {args.shards}")
    if getattr(args, "resume", False) and not getattr(args, "cache_dir", None):
        raise SystemExit("--resume requires --cache-dir")
    if getattr(args, "cache_dir", None):
        from .orchestrate import SuiteStore

        return SuiteStore(args.cache_dir)
    return None


def cmd_synthesize(args: argparse.Namespace) -> int:
    model = _model(args.model)
    config = SynthesisConfig(
        bound=args.bound,
        model=model,
        target_axiom=args.axiom,
        max_threads=args.threads,
        mcm_mode=args.mcm,
        time_budget_s=args.budget,
        witness_backend=args.witness_backend,
    )
    store = _store(args)
    orchestrated = None
    if args.jobs > 1 or args.shards is not None or store is not None:
        from .orchestrate import run_sharded

        orchestrated = run_sharded(
            config,
            jobs=args.jobs,
            shard_count=args.shards,
            store=store,
        )
        result = orchestrated.result
    else:
        result = synthesize(config)
    stats = result.stats
    print(
        f"suite[{args.axiom or 'any-axiom'} @ bound {args.bound}]: "
        f"{result.count} unique ELTs "
        f"({stats.programs_enumerated} programs, "
        f"{stats.executions_enumerated} executions, "
        f"{stats.runtime_s:.2f}s"
        f"{', TIMED OUT' if stats.timed_out else ''})"
    )
    if args.witness_backend == "sat":
        print(
            f"sat backend: {stats.sat_decisions} decisions, "
            f"{stats.sat_propagations} propagations, "
            f"{stats.sat_conflicts} conflicts, "
            f"{stats.sat_learned_clauses} learned clauses"
        )
    if orchestrated is not None and (
        orchestrated.shard_results or orchestrated.suite_cache_hit
    ):
        from .reporting import render_shard_runtimes

        print()
        print(render_shard_runtimes(orchestrated))
    for index, elt in enumerate(result.elts):
        print(f"\n--- ELT {index + 1} (violates: {', '.join(elt.violated_axioms)}) ---")
        print(format_execution(elt.execution, show_derived=args.verbose))
    if args.save:
        from .litmus import suite_from_synthesis

        prefix = args.axiom or "elt"
        path = suite_from_synthesis(result, prefix=prefix).save(args.save)
        print(f"\nsuite written to {path}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .models import X86T_ELT_AXIOM_NAMES
    from .reporting import resolve_max_bounds, resolve_sweep_budget

    store = _store(args)
    for axiom in args.axiom or ():
        if axiom not in X86T_ELT_AXIOM_NAMES:
            raise SystemExit(
                f"unknown axiom {axiom!r}; choose from "
                f"{sorted(X86T_ELT_AXIOM_NAMES)}"
            )
    explicit = (
        None
        if args.max_bound is None
        else {axiom: args.max_bound for axiom in X86T_ELT_AXIOM_NAMES}
    )
    bounds = resolve_max_bounds(explicit, axioms=args.axiom or None)
    budget = resolve_sweep_budget(args.budget)
    if args.jobs > 1 or args.shards is not None or store is not None:
        from .orchestrate import run_sweep_sharded
        from .reporting import render_sweep_cache_summary

        sweep, records = run_sweep_sharded(
            SynthesisConfig(
                bound=4, model=x86t_elt(), witness_backend=args.witness_backend
            ),
            axioms=sorted(bounds, key=list(X86T_ELT_AXIOM_NAMES).index),
            min_bound=4,
            max_bound=bounds,
            time_budget_per_run_s=budget,
            jobs=args.jobs,
            shard_count=args.shards,
            store=store,
        )
        print(render_sweep_cache_summary(records))
        print()
    else:
        sweep = fig9_sweep(
            max_bounds=bounds,
            time_budget_per_run_s=budget,
            witness_backend=args.witness_backend,
        )
    print(render_fig9a(sweep))
    print()
    print(render_fig9b(sweep))
    if sweep.skipped:
        print()
        skipped = ", ".join(f"{a}@{b}" for a, b in sweep.skipped)
        print(f"bounds skipped after timeout: {skipped}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    model = _model(args.model)
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as handle:
            text = handle.read()
    execution = parse_elt(text)
    print(format_execution(execution))
    verdict = model.check(execution)
    if args.explain and verdict.forbidden:
        from .models import render_explanations

        print()
        print(render_explanations(execution, model))
    else:
        print(f"\n{verdict}")
    return 0 if verdict.permitted else 1


def cmd_compare(args: argparse.Namespace) -> int:
    corpus = comparison_corpus()
    report = run_coatcheck_comparison(corpus)
    print(render_comparison(report))
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    from .synth import explore_program

    model = _model(args.model)
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as handle:
            text = handle.read()
    execution = parse_elt(text)
    exploration = explore_program(
        execution.program, model, limit=args.limit
    )
    print(exploration.summary())
    if args.verbose:
        for index, outcome in enumerate(exploration.outcomes, start=1):
            print(f"\n--- outcome {index}: {outcome.verdict} ---")
            print(format_execution(outcome.execution, show_derived=False))
    return 0


def _add_orchestration_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--witness-backend",
        choices=("explicit", "sat"),
        default="explicit",
        help="candidate-execution enumerator: the explicit Python "
        "enumerator or the relational SAT (Alloy-port) pipeline; both "
        "yield the same canonical ELT suite (representative witness "
        "details may differ), and each is byte-reproducible",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (shards the search; output stays identical)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="work units to plan (default: 4 per job when parallel)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist completed shards/suites here and reuse them",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run from --cache-dir without redoing "
        "finished work (reuse is automatic whenever --cache-dir is set)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="transform-synth",
        description="TransForm reproduction: formal MTMs and ELT synthesis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synthesize", help="synthesize a per-axiom ELT suite")
    synth.add_argument("--bound", type=int, required=True)
    synth.add_argument("--axiom", default=None, help="axiom to violate")
    synth.add_argument("--model", default="x86t_elt", choices=sorted(MODELS))
    synth.add_argument("--threads", type=int, default=2)
    synth.add_argument("--mcm", action="store_true", help="user-level MCM mode")
    synth.add_argument("--budget", type=float, default=None, help="seconds")
    synth.add_argument("--verbose", action="store_true")
    synth.add_argument("--save", default=None, help="write an .elts suite file")
    _add_orchestration_arguments(synth)
    synth.set_defaults(func=cmd_synthesize)

    sweep = sub.add_parser("sweep", help="Fig 9 per-axiom bound sweep")
    sweep.add_argument("--max-bound", type=int, default=None)
    sweep.add_argument("--budget", type=float, default=None, help="seconds/run")
    sweep.add_argument(
        "--axiom",
        action="append",
        default=None,
        help="restrict to this axiom (repeatable)",
    )
    _add_orchestration_arguments(sweep)
    sweep.set_defaults(func=cmd_sweep)

    check = sub.add_parser("check", help="check an ELT file against a model")
    check.add_argument("file", help="ELT machine-format file, or - for stdin")
    check.add_argument("--model", default="x86t_elt", choices=sorted(MODELS))
    check.add_argument(
        "--explain",
        action="store_true",
        help="print the labeled cycle witnessing each violated axiom",
    )
    check.set_defaults(func=cmd_check)

    compare = sub.add_parser(
        "compare", help="§VI-B comparison vs the hand-written COATCheck suite"
    )
    compare.set_defaults(func=cmd_compare)

    explore = sub.add_parser(
        "explore", help="enumerate all outcomes of an ELT program"
    )
    explore.add_argument("file", help="ELT machine-format file, or - for stdin")
    explore.add_argument("--model", default="x86t_elt", choices=sorted(MODELS))
    explore.add_argument("--limit", type=int, default=None)
    explore.add_argument("--verbose", action="store_true")
    explore.set_defaults(func=cmd_explore)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Shared CDCL search driver (the solver's storage-independent half).

The solver is split into three modules:

* this one — the :class:`CdclCore` base class owning the *search*: the
  solve/enumerate loops, first-UIP conflict analysis with learned-clause
  minimization, the indexed VSIDS max-heap, Luby restarts, assumption
  handling, cooperative-deadline polling, and inprocessing scheduling;
* :mod:`repro.sat.core_object` — clause storage as per-clause Python
  objects with (blocker, clause) watch tuples (the original
  representation, kept as the differential oracle);
* :mod:`repro.sat.core_array` — clause storage as a flat integer arena
  with flat int-pair watch lists (no per-clause objects in the
  propagation loop).

Both cores implement the same abstract storage hooks and *identical*
heuristics, so for a given clause stream they run the same search, make
the same decisions, and report the same statistics — the property the
pipeline's byte-identical-output guarantee rests on, and what lets the
array core be gated by the same committed counter baselines as the
object core.

Inprocessing (:mod:`repro.sat.inprocess`) is scheduled from here: a pass
may run only at decision level 0 and only at query boundaries —
``solve``/``iter_solutions`` entry, enumeration-burst boundaries, and
:class:`repro.relational.translate.ProblemSession` query entry — and
only when enabled and due (see :meth:`CdclCore.maybe_inprocess`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import Iterable, Optional, Sequence

from ..errors import SolverInterrupted
from ..resilience import current_deadline
from .cnf import Cnf

#: How many unit propagations may elapse between cooperative-deadline
#: polls.  Coarse enough that the poll is invisible in profile (one
#: comparison per loop iteration, one clock read per ~budget
#: propagations), fine enough that a stuck query dies within a fraction
#: of a second of its deadline.  The deadline itself is re-read from the
#: ambient scope at *every* poll, so a deadline installed after a solve
#: or enumeration started is still honored (nested sweep budgets).
DEADLINE_POLL_PROPAGATIONS = 20000

#: Inprocessing is considered "due" only once the learned database has
#: at least this many (long) clauses ...
INPROCESS_MIN_LEARNED = 100
#: ... and at least this many conflicts happened since the last pass.
INPROCESS_CONFLICT_INTERVAL = 2000


def luby(index: int) -> int:
    """Return the ``index``-th element (1-based) of the Luby sequence
    1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    >>> [luby(i) for i in range(1, 10)]
    [1, 1, 2, 1, 1, 2, 4, 1, 1]
    """
    while True:
        k = 1
        while (1 << k) - 1 < index:
            k += 1
        if index == (1 << k) - 1:
            return 1 << (k - 1)
        # Here 2^(k-1) - 1 < index < 2^k - 1: recurse into the repeated prefix.
        index -= (1 << (k - 1)) - 1


#: Fields of :class:`SolverStats` that merge by ``max`` instead of ``+``.
#: Everything else is a plain additive counter; :meth:`SolverStats.merge`
#: iterates ``dataclasses.fields()`` so a newly added counter can never
#: be silently dropped from aggregation again.
MAX_MERGED_STAT_FIELDS = frozenset({"max_decision_level"})


@dataclass
class SolverStats:
    """Counters exposed for benchmarks and tests."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    max_decision_level: int = 0
    #: Literals removed from learned clauses by minimization.
    minimized_literals: int = 0
    #: Learned-clause database reductions performed.
    db_reductions: int = 0
    #: Learned clauses deleted by those reductions.
    deleted_clauses: int = 0
    # ---- incremental-session counters (maintained by the session layers:
    # :class:`repro.relational.translate.ProblemSession` and the witness
    # session cache in :mod:`repro.synth.sat_backend`) ------------------
    #: Persistent witness sessions opened (one per translated program).
    sessions: int = 0
    #: Relational-to-CNF translations performed.
    translations: int = 0
    #: Queries served by a live session that a fresh-solver run would
    #: have paid a full translation for.
    translations_avoided: int = 0
    #: Assumption-scoped solves/enumerations answered by a live session
    #: (reusing its translation and accumulated solver state).
    incremental_solves: int = 0
    #: Learned clauses already present (and reused) at the start of each
    #: incremental solve, summed over solves.
    retained_learned_clauses: int = 0
    # ---- symmetry-breaking counters (maintained by the relational
    # translation, :mod:`repro.relational.translate`) --------------------
    #: Static lex-leader symmetry-breaking clauses emitted into the CNF
    #: during translation (see :meth:`repro.relational.Problem.
    #: add_symmetry`).  Deterministic for a fixed problem.
    symmetry_clauses: int = 0
    # ---- inprocessing counters (maintained by
    # :mod:`repro.sat.inprocess`) ----------------------------------------
    #: Inprocessing passes run (subsumption + vivification sweeps).
    inprocessings: int = 0
    #: Learned clauses shortened (or root-satisfied and dropped) by
    #: clause vivification.
    vivified_clauses: int = 0
    #: Learned clauses deleted because another learned clause subsumes
    #: them.
    subsumed_clauses: int = 0
    #: Learned clauses strengthened by self-subsuming resolution (one
    #: literal removed).
    strengthened_clauses: int = 0

    def merge(self, other: "SolverStats") -> None:
        """Accumulate another counter set into this one (used when stats
        from many solver instances are aggregated, e.g. per-program SAT
        witness enumeration inside one synthesis run).

        Driven by ``dataclasses.fields()`` so every counter — including
        any added later — participates: fields named in
        :data:`MAX_MERGED_STAT_FIELDS` merge by ``max``, the rest sum.
        """
        for spec in fields(self):
            name = spec.name
            if name in MAX_MERGED_STAT_FIELDS:
                setattr(self, name, max(getattr(self, name), getattr(other, name)))
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class SatResult:
    """Outcome of a :meth:`CdclCore.solve` call."""

    satisfiable: bool
    model: Optional[dict[int, bool]] = None
    stats: SolverStats = field(default_factory=SolverStats)

    def __bool__(self) -> bool:
        return self.satisfiable


class CdclCore:
    """Storage-independent CDCL search over a :class:`Cnf`.

    Subclasses provide the clause representation by implementing the
    storage hooks (``_init_storage``, ``_attach_clause``, ``_propagate``,
    ``_reason_lits``, ``_reduce_db``, ``_grow_storage``,
    ``learned_count`` and the ``_inprocess_*`` API).  A *reason token* is
    whatever the storage uses to name a clause (the literal list itself
    for the object core, an arena offset for the array core); the base
    class only ever stores and forwards tokens, comparing them against
    the subclass's ``_NO_REASON`` sentinel.

    The solver copies the clauses out of the given CNF, so the CNF may
    keep growing for other purposes afterwards; use :meth:`add_clause`
    to feed additional clauses (e.g. AllSAT blocking clauses) to the
    same solver instance between ``solve`` calls.
    """

    #: Reason sentinel for "decision / no reason"; overridden per core.
    _NO_REASON: object = None

    def __init__(self, cnf: Cnf, inprocess: bool = False) -> None:
        self._nvars = cnf.num_vars
        # Literal encoding: positive literal v -> 2v, negative -> 2v+1.
        size = 2 * self._nvars + 2
        # Literal-indexed truth values: 1 true, -1 false, 0 unassigned.
        self._values: list[int] = [0] * size
        self._max_learned = 2000
        self._level: list[int] = [0] * (self._nvars + 1)
        self._reason: list = [self._NO_REASON] * (self._nvars + 1)
        self._trail: list[int] = []  # literals in assignment order
        self._trail_lim: list[int] = []  # trail indices at each decision level
        self._qhead = 0
        self._activity: list[float] = [0.0] * (self._nvars + 1)
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._saved_phase: list[bool] = [False] * (self._nvars + 1)
        self._seen = bytearray(self._nvars + 1)
        # Indexed max-heap over unassigned variables: ordered by activity,
        # ties broken deterministically by the smaller variable index.
        self._heap: list[int] = []
        self._heap_pos: list[int] = [-1] * (self._nvars + 1)
        for var in range(1, self._nvars + 1):
            self._heap_insert(var)
        self._ok = True
        self._last_model_decisions: list[int] = []
        self.stats = SolverStats()
        self._inprocess_enabled = bool(inprocess)
        self._inprocess_min_learned = INPROCESS_MIN_LEARNED
        self._inprocess_interval = INPROCESS_CONFLICT_INTERVAL
        self._conflicts_at_last_inprocess = 0
        self._vivify_cursor = 0
        self._init_storage(size)
        self._load(cnf.clauses)

    # ------------------------------------------------------------------
    # Storage hooks (implemented by core_object / core_array)
    # ------------------------------------------------------------------
    def _init_storage(self, size: int) -> None:
        raise NotImplementedError

    def _grow_storage(self) -> None:
        """Extend the watch structures for one freshly added variable."""
        raise NotImplementedError

    def _attach_clause(self, lits: list[int], learned: bool = False, lbd: int = 0):
        """Install a clause of >= 2 literals and return its reason token.
        ``lits`` is owned by the storage afterwards."""
        raise NotImplementedError

    def _propagate(self):
        """Unit propagation; returns a conflicting clause's literals
        (a sequence) or None."""
        raise NotImplementedError

    def _reason_lits(self, var: int) -> Optional[Sequence[int]]:
        """The literals of the clause that forced ``var``, or None for a
        decision/assumption."""
        raise NotImplementedError

    def _reduce_db(self) -> None:
        raise NotImplementedError

    @property
    def learned_count(self) -> int:
        """Learned clauses currently retained in the database (what an
        incremental session reuses across queries; binary learned clauses
        live in the binary watch lists and are not counted here)."""
        raise NotImplementedError

    # The _inprocess_* storage API consumed by repro.sat.inprocess:
    def _inprocess_learned(self) -> list:
        """Stable references to the long learned clauses, in DB order."""
        raise NotImplementedError

    def _inprocess_lits(self, ref) -> list[int]:
        raise NotImplementedError

    def _inprocess_locked(self) -> set:
        """References that are currently the reason for a trail literal
        (must never be deleted or strengthened)."""
        raise NotImplementedError

    def _inprocess_apply(self, deletions: set, replacements: dict) -> None:
        """Delete / replace learned clauses in one batch (level 0 only).
        Replacement literal lists have >= 2 literals; a 2-literal
        replacement migrates the clause to the binary watch lists."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Clause database (shared)
    # ------------------------------------------------------------------
    def _load(self, clauses: Iterable[Sequence[int]]) -> None:
        """Bulk-load clauses from a :class:`Cnf`.

        The container guarantees clauses are deduplicated and
        tautology-free, and nothing is assigned yet, so clauses can be
        installed without the per-clause filtering of :meth:`add_clause`;
        unit clauses are enqueued at the end and propagated once.
        """
        units: list[int] = []
        for clause in clauses:
            size = len(clause)
            if size == 0:
                self._ok = False
                return
            if size == 1:
                units.append(clause[0])
            else:
                self._attach_clause(list(clause))
        for lit in units:
            if not self._enqueue(lit, self._NO_REASON):
                self._ok = False
                return
        if self._propagate() is not None:
            self._ok = False

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT.

        Intended for use between solve calls; if the solver was abandoned
        mid-search (an enumeration generator closed early), the search is
        first cancelled back to decision level 0 so the clause — and any
        unit it implies — lands on the root level.  Duplicate literals
        and tautologies are detected in one linear pass.
        """
        if not self._ok:
            return False
        self._cancel_until(0)
        seen: set[int] = set()
        lits: list[int] = []
        max_var = 0
        for lit in literals:
            if -lit in seen:
                return True  # tautology
            if lit not in seen:
                seen.add(lit)
                lits.append(lit)
                var = lit if lit > 0 else -lit
                if var > max_var:
                    max_var = var
        self._grow_to(max_var)
        lits.sort(key=abs)
        # Remove literals already false at level 0; succeed early on a true one.
        values = self._values
        level = self._level
        filtered: list[int] = []
        for lit in lits:
            index = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
            value = values[index]
            if value > 0 and level[abs(lit)] == 0:
                return True
            if value < 0 and level[abs(lit)] == 0:
                continue
            filtered.append(lit)
        if not filtered:
            self._ok = False
            return False
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], self._NO_REASON):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        self._attach_clause(filtered)
        return True

    def _grow_to(self, var: int) -> None:
        while self._nvars < var:
            self._nvars += 1
            self._level.append(0)
            self._reason.append(self._NO_REASON)
            self._activity.append(0.0)
            self._saved_phase.append(False)
            self._heap_pos.append(-1)
            self._values.append(0)
            self._values.append(0)
            self._seen.append(0)
            self._grow_storage()
            self._heap_insert(self._nvars)

    @staticmethod
    def _lit_index(lit: int) -> int:
        return 2 * lit if lit > 0 else -2 * lit + 1

    # ------------------------------------------------------------------
    # Assignment primitives (shared)
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> Optional[bool]:
        value = self._values[(lit << 1) if lit > 0 else ((-lit) << 1) | 1]
        if value == 0:
            return None
        return value > 0

    def _enqueue(self, lit: int, reason) -> bool:
        index = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
        value = self._values[index]
        if value != 0:
            return value > 0
        var = lit if lit > 0 else -lit
        self._values[index] = 1
        self._values[index ^ 1] = -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP; shared)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: Sequence[int]) -> tuple[list[int], int, int]:
        """Derive the first-UIP learned clause; returns (clause, backjump
        level, LBD).  The clause is minimized by self-subsumption: a
        non-asserting literal whose reason clause is entirely covered by
        the other learned literals (or level-0 facts) is redundant."""
        seen = self._seen
        to_clear: list[int] = []
        learned: list[int] = []
        counter = 0
        pivot: Optional[int] = None  # trail literal whose reason is expanded
        reason: Sequence[int] = conflict
        trail = self._trail
        trail_index = len(trail) - 1
        current_level = len(self._trail_lim)
        levels = self._level
        while True:
            for q in reason:
                if pivot is not None and q == pivot:
                    continue
                var = abs(q)
                if not seen[var] and levels[var] > 0:
                    seen[var] = 1
                    to_clear.append(var)
                    self._bump(var)
                    if levels[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            while not seen[abs(trail[trail_index])]:
                trail_index -= 1
            pivot = trail[trail_index]
            var = abs(pivot)
            seen[var] = 0
            counter -= 1
            trail_index -= 1
            if counter == 0:
                break
            clause_reason = self._reason_lits(var)
            assert clause_reason is not None
            reason = clause_reason

        # Minimization.  Every current-level variable has been resolved
        # away, so a learned literal's reason (all at its own, lower,
        # level or below) is checked purely against the seen set — i.e.
        # against the other learned literals and level-0 facts.
        if learned:
            kept: list[int] = []
            for q in learned:
                reason_q = self._reason_lits(abs(q))
                if reason_q is None:
                    kept.append(q)
                    continue
                redundant = True
                for r in reason_q:
                    if r == -q:
                        continue
                    rvar = abs(r)
                    if levels[rvar] > 0 and not seen[rvar]:
                        redundant = False
                        break
                if redundant:
                    self.stats.minimized_literals += 1
                else:
                    kept.append(q)
            learned = kept
        for var in to_clear:
            seen[var] = 0

        learned.insert(0, -pivot)
        if len(learned) == 1:
            return learned, 0, 1
        # Backjump level = max level among the non-asserting literals.
        back_level = 0
        distinct_levels = {current_level}
        for q in learned[1:]:
            q_level = levels[abs(q)]
            distinct_levels.add(q_level)
            if q_level > back_level:
                back_level = q_level
        # Put one literal of the backjump level in watch position 1.
        for pos in range(1, len(learned)):
            if levels[abs(learned[pos])] == back_level:
                learned[1], learned[pos] = learned[pos], learned[1]
                break
        return learned, back_level, len(distinct_levels)

    def _bump(self, var: int) -> None:
        activity = self._activity
        activity[var] += self._var_inc
        if activity[var] > 1e100:
            for index in range(1, self._nvars + 1):
                activity[index] *= 1e-100
            self._var_inc *= 1e-100
            # Uniform rescaling preserves the heap order; no repair needed.
        if self._heap_pos[var] >= 0:
            self._heap_sift_up(self._heap_pos[var])

    def _decay(self) -> None:
        self._var_inc /= self._var_decay

    # ------------------------------------------------------------------
    # VSIDS order heap (indexed binary max-heap; deterministic ties)
    # ------------------------------------------------------------------
    def _heap_before(self, a: int, b: int) -> bool:
        activity = self._activity
        if activity[a] != activity[b]:
            return activity[a] > activity[b]
        return a < b

    def _heap_insert(self, var: int) -> None:
        if self._heap_pos[var] >= 0:
            return
        heap = self._heap
        heap.append(var)
        self._heap_pos[var] = len(heap) - 1
        self._heap_sift_up(len(heap) - 1)

    def _heap_sift_up(self, index: int) -> None:
        heap = self._heap
        pos = self._heap_pos
        var = heap[index]
        while index > 0:
            parent = (index - 1) >> 1
            parent_var = heap[parent]
            if not self._heap_before(var, parent_var):
                break
            heap[index] = parent_var
            pos[parent_var] = index
            index = parent
        heap[index] = var
        pos[var] = index

    def _heap_sift_down(self, index: int) -> None:
        heap = self._heap
        pos = self._heap_pos
        size = len(heap)
        var = heap[index]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size and self._heap_before(heap[right], heap[child]):
                child = right
            child_var = heap[child]
            if not self._heap_before(child_var, var):
                break
            heap[index] = child_var
            pos[child_var] = index
            index = child
        heap[index] = var
        pos[var] = index

    def _heap_pop(self) -> int:
        heap = self._heap
        pos = self._heap_pos
        top = heap[0]
        pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            pos[last] = 0
            self._heap_sift_down(0)
        return top

    # ------------------------------------------------------------------
    # Conflict learning (shared by solve() and iter_solutions())
    # ------------------------------------------------------------------
    def _learn_and_backjump(self, conflict: Sequence[int]) -> Optional[str]:
        """Analyze a conflict at decision level > 0, install the learned
        clause and backjump.  Returns None when the formula became
        unsatisfiable, ``"unit"`` when a unit was learned (the solver is
        back at level 0), ``"clause"`` otherwise."""
        learned, back_level, lbd = self._analyze(conflict)
        self._cancel_until(back_level)
        if len(learned) == 1:
            self._cancel_until(0)
            if not self._enqueue(learned[0], self._NO_REASON):
                self._ok = False
                return None
            if self._propagate() is not None:
                self._ok = False
                return None
            self._decay()
            return "unit"
        token = self._attach_clause(learned, learned=True, lbd=lbd)
        self.stats.learned_clauses += 1
        self._enqueue(learned[0], token)
        self._decay()
        return "clause"

    def _restart(self) -> None:
        """Cancel to level 0 and, if due, reduce the learned database.

        Inprocessing deliberately does *not* run here: a restart is the
        middle of a hot search, and rewriting the learned database there
        perturbs the trajectory the restart is trying to exploit.  Passes
        run at query boundaries instead (see :meth:`maybe_inprocess`)."""
        self.stats.restarts += 1
        self._cancel_until(0)
        if self.learned_count > self._max_learned:
            self._reduce_db()

    # ------------------------------------------------------------------
    # Inprocessing scheduling
    # ------------------------------------------------------------------
    def maybe_inprocess(self) -> bool:
        """Run one inprocessing pass (subsumption + vivification over the
        learned database) if enabled and due.

        Call sites are query boundaries, where the solver is at decision
        level 0 and no search is in flight: ``solve`` / ``iter_solutions``
        entry, between enumeration bursts (a level-0 backjump after a
        yielded model), and session query boundaries
        (:class:`repro.relational.translate.ProblemSession`).  The pass
        never touches problem clauses — which is what AllSAT blocking
        clauses are — nor clauses locked as trail reasons, so it is sound
        mid-enumeration.  Calling it at decision level > 0 is a no-op.
        Returns True when a pass actually ran.
        """
        if not self._inprocess_enabled or not self._ok or self._trail_lim:
            return False
        if self.learned_count < self._inprocess_min_learned:
            return False
        if (
            self.stats.conflicts - self._conflicts_at_last_inprocess
            < self._inprocess_interval
        ):
            return False
        from .inprocess import run_inprocessing

        run_inprocessing(self)
        self._conflicts_at_last_inprocess = self.stats.conflicts
        return True

    @property
    def inprocessing_enabled(self) -> bool:
        return self._inprocess_enabled

    # ------------------------------------------------------------------
    # Backtracking (shared)
    # ------------------------------------------------------------------
    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        values = self._values
        no_reason = self._NO_REASON
        for index in range(len(self._trail) - 1, limit - 1, -1):
            lit = self._trail[index]
            var = lit if lit > 0 else -lit
            self._saved_phase[var] = lit > 0
            lit_idx = (lit << 1) if lit > 0 else (var << 1) | 1
            values[lit_idx] = 0
            values[lit_idx ^ 1] = 0
            self._reason[var] = no_reason
            if self._heap_pos[var] < 0:
                self._heap_insert(var)
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _decide(self) -> Optional[int]:
        values = self._values
        heap = self._heap
        while heap:
            var = self._heap_pop()
            if values[var << 1] == 0:
                return var if self._saved_phase[var] else -var
        return None

    # ------------------------------------------------------------------
    # Main search loop (shared)
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Search for a model extending ``assumptions``.

        Assumptions are literals treated as decisions; if the formula is
        unsatisfiable only under the assumptions, the result is UNSAT but the
        solver stays usable for further calls.
        """
        if not self._ok:
            return SatResult(False, stats=self.stats)
        for lit in assumptions:
            self._grow_to(abs(lit))
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return SatResult(False, stats=self.stats)
        if self.learned_count > self._max_learned:
            # Incremental use (AllSAT blocking loops) adds clauses between
            # many short solve calls; reduce here too, not just at restarts.
            self._reduce_db()
        self.maybe_inprocess()
        if not self._ok:
            return SatResult(False, stats=self.stats)

        restart_index = 1
        conflict_budget = 32 * luby(restart_index)
        conflicts_here = 0
        next_poll = self.stats.propagations + DEADLINE_POLL_PROPAGATIONS

        while True:
            if self.stats.propagations >= next_poll:
                next_poll = self.stats.propagations + DEADLINE_POLL_PROPAGATIONS
                # Re-read the ambient deadline every poll: a scope entered
                # after this call started must still interrupt it.
                deadline = current_deadline()
                if deadline is not None and time.monotonic() > deadline:
                    # Backtrack first so the solver stays usable.
                    self._cancel_until(0)
                    raise SolverInterrupted(
                        "SAT solve interrupted by cooperative deadline"
                    )
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                if len(self._trail_lim) == 0:
                    self._cancel_until(0)
                    return SatResult(False, stats=self.stats)
                if not self._all_assumptions_hold(assumptions):
                    # Conflict depends on assumptions only.
                    self._cancel_until(0)
                    return SatResult(False, stats=self.stats)
                outcome = self._learn_and_backjump(conflict)
                if outcome is None:
                    return SatResult(False, stats=self.stats)
                if outcome == "unit" and not self._replay_assumptions(assumptions):
                    return SatResult(False, stats=self.stats)
                if conflicts_here >= conflict_budget:
                    restart_index += 1
                    conflict_budget = 32 * luby(restart_index)
                    conflicts_here = 0
                    self._restart()
                    if not self._ok:
                        return SatResult(False, stats=self.stats)
                    if not self._replay_assumptions(assumptions):
                        return SatResult(False, stats=self.stats)
                continue

            if not self._replay_assumptions(assumptions):
                return SatResult(False, stats=self.stats)
            if self._qhead < len(self._trail):
                continue

            decision = self._decide()
            if decision is None:
                values = self._values
                model = {
                    var: values[var << 1] > 0
                    for var in range(1, self._nvars + 1)
                }
                trail = self._trail
                self._last_model_decisions = [
                    trail[position] for position in self._trail_lim
                ]
                self._cancel_until(0)
                return SatResult(True, model=model, stats=self.stats)
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            if len(self._trail_lim) > self.stats.max_decision_level:
                self.stats.max_decision_level = len(self._trail_lim)
            self._enqueue(decision, self._NO_REASON)

    # ------------------------------------------------------------------
    # Incremental AllSAT (shared)
    # ------------------------------------------------------------------
    def iter_solutions(self, blocking_literals=None, assumptions: Sequence[int] = ()):
        """Enumerate models without restarting the search between them.

        After each yielded model a blocking clause is attached *in place*:
        the solver backjumps only far enough to make the clause assert, so
        the shared prefix of consecutive models (usually almost all of it,
        thanks to phase saving) is never re-propagated.  This is the
        engine behind :func:`repro.sat.enumerate.iter_models` and
        :meth:`repro.relational.translate.Problem.iter_instances`.

        ``blocking_literals``: optional ``callable(model) -> list[int]``
        returning literals, all false under the model, whose clause rules
        it out (e.g. the negated projection values).  The default blocks
        the model's decision literals, which excludes exactly that one
        total model.

        ``assumptions`` scopes the enumeration: the given literals are
        held as pseudo-decisions for the whole run (exactly as in
        :meth:`solve`), and enumeration ends — leaving the solver usable —
        as soon as the formula is exhausted *under the assumptions*.
        Because assumption literals sit on decision levels, the default
        blocking clauses automatically carry their negations, so an
        incremental session that retires one assumption literal (e.g. a
        fresh per-enumeration activation tag asserted false afterwards)
        retracts every blocking clause of that enumeration in one unit
        clause.

        The generator yields each model dict exactly once; the solver must
        not be used for other queries while enumeration is in progress.
        Enumeration is deterministic and complete: it ends when the
        formula plus blocking clauses becomes unsatisfiable (under the
        assumptions, if any).
        """
        if not self._ok:
            return
        for lit in assumptions:
            self._grow_to(abs(lit))
        self._cancel_until(0)
        if self._propagate() is not None:
            self._ok = False
            return
        self.maybe_inprocess()
        if not self._ok:
            return

        restart_index = 1
        conflict_budget = 32 * luby(restart_index)
        conflicts_here = 0
        next_poll = self.stats.propagations + DEADLINE_POLL_PROPAGATIONS

        while True:
            if self.stats.propagations >= next_poll:
                next_poll = self.stats.propagations + DEADLINE_POLL_PROPAGATIONS
                # Re-read the ambient deadline every poll (see solve()).
                deadline = current_deadline()
                if deadline is not None and time.monotonic() > deadline:
                    # Backtrack first so the solver stays usable; an
                    # abandoned enumeration must not poison later queries.
                    self._cancel_until(0)
                    raise SolverInterrupted(
                        "SAT enumeration interrupted by cooperative deadline"
                    )
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                if len(self._trail_lim) == 0:
                    self._cancel_until(0)
                    self._ok = False
                    return
                if assumptions and not self._all_assumptions_hold(assumptions):
                    # The conflict needs an assumption flipped: the model
                    # space under the assumptions is exhausted, but the
                    # solver (and its learned clauses) stay usable.
                    self._cancel_until(0)
                    return
                outcome = self._learn_and_backjump(conflict)
                if outcome is None:
                    return
                if (
                    outcome == "unit"
                    and assumptions
                    and not self._replay_assumptions(assumptions)
                ):
                    return
                if conflicts_here >= conflict_budget:
                    restart_index += 1
                    conflict_budget = 32 * luby(restart_index)
                    conflicts_here = 0
                    self._restart()
                    if not self._ok:
                        return
                    if assumptions and not self._replay_assumptions(assumptions):
                        return
                continue

            if assumptions:
                if not self._replay_assumptions(assumptions):
                    return
                if self._qhead < len(self._trail):
                    continue

            decision = self._decide()
            if decision is not None:
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                if len(self._trail_lim) > self.stats.max_decision_level:
                    self.stats.max_decision_level = len(self._trail_lim)
                self._enqueue(decision, self._NO_REASON)
                continue

            values = self._values
            model = {
                var: values[var << 1] > 0 for var in range(1, self._nvars + 1)
            }
            trail = self._trail
            self._last_model_decisions = [
                trail[position] for position in self._trail_lim
            ]
            yield model
            if blocking_literals is None:
                lits = [-lit for lit in self._last_model_decisions]
            else:
                lits = blocking_literals(model)
            if not self._block_and_continue(lits):
                self._cancel_until(0)
                return
            if not self._trail_lim:
                # A unit blocking clause (or a learned unit) brought the
                # search back to level 0: an enumeration-burst boundary,
                # the natural place for an inprocessing pass.
                self.maybe_inprocess()
                if not self._ok:
                    return

    def _block_and_continue(self, lits: list[int]) -> bool:
        """Attach a blocking clause mid-search and backjump so the search
        continues past it; returns False when enumeration is complete.

        Every literal must be false under the current (total) assignment.
        Level-0-false literals are dropped; if none survive, every model
        matches the blocked pattern and enumeration is over.
        """
        for lit in lits:
            self._grow_to(abs(lit))
        level = self._level
        live = [lit for lit in lits if level[abs(lit)] > 0]
        if not live:
            return False
        if len(live) == 1:
            self._cancel_until(0)
            if not self._enqueue(live[0], self._NO_REASON) or (
                self._propagate() is not None
            ):
                self._ok = False
                return False
            return True
        live.sort(key=lambda lit: level[abs(lit)], reverse=True)
        top_level = level[abs(live[0])]
        second_level = level[abs(live[1])]
        token = self._attach_clause(live)
        self._cancel_until(top_level - 1)
        if second_level < top_level:
            # The clause is unit now: assert its deepest literal here.
            self._enqueue(live[0], token)
        return True

    def last_model_decisions(self) -> list[int]:
        """The decision (and assumption) literals of the most recent SAT
        result, in trail order.

        Every other literal of that model was forced by unit propagation
        from these, so the model is the *unique* total model extending
        them.  AllSAT loops exploit this: adding the clause that negates
        just the decisions blocks exactly that one model while staying far
        shorter than a full-model blocking clause (see
        :func:`repro.sat.enumerate.iter_models`).
        """
        return list(self._last_model_decisions)

    # ------------------------------------------------------------------
    # Assumption handling (shared)
    # ------------------------------------------------------------------
    def _all_assumptions_hold(self, assumptions: Sequence[int]) -> bool:
        values = self._values
        for lit in assumptions:
            if values[(lit << 1) if lit > 0 else ((-lit) << 1) | 1] < 0:
                return False
        return True

    def _replay_assumptions(self, assumptions: Sequence[int]) -> bool:
        """Ensure every assumption literal is enqueued; returns False on
        conflict with the assumptions."""
        for lit in assumptions:
            value = self._value(lit)
            if value is True:
                continue
            if value is False:
                self._cancel_until(0)
                return False
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, self._NO_REASON)
            conflict = self._propagate()
            if conflict is not None:
                if len(self._trail_lim) == 0:
                    self._ok = False
                self._cancel_until(0)
                return False
        return True

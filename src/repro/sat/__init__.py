"""SAT solving substrate (MiniSat stand-in for the synthesis pipeline).

Public surface:

* :class:`Cnf` — clause container with fresh-variable allocation.
* :class:`CdclSolver` / :func:`solve_cnf` — complete CDCL search.
* :func:`iter_models` / :func:`count_models` — AllSAT enumeration.
* :func:`parse_dimacs` / :func:`dimacs_text` — DIMACS interchange.
"""

from .cnf import Cnf
from .dimacs import dimacs_text, parse_dimacs, read_dimacs, write_dimacs
from .enumerate import count_models, iter_models
from .reference import brute_force_count, brute_force_models, brute_force_satisfiable
from .solver import (
    MAX_MERGED_STAT_FIELDS,
    SOLVER_CORES,
    SOLVER_CORE_NAMES,
    AccelCdclSolver,
    ArrayCdclSolver,
    CdclCore,
    CdclSolver,
    ObjectCdclSolver,
    SatResult,
    SolverStats,
    accel_status,
    create_solver,
    current_solver_preferences,
    default_solver_core,
    luby,
    resolve_solver_core,
    solve_cnf,
    solver_preferences,
)

__all__ = [
    "Cnf",
    "MAX_MERGED_STAT_FIELDS",
    "SOLVER_CORES",
    "SOLVER_CORE_NAMES",
    "CdclCore",
    "CdclSolver",
    "ObjectCdclSolver",
    "ArrayCdclSolver",
    "AccelCdclSolver",
    "accel_status",
    "default_solver_core",
    "resolve_solver_core",
    "create_solver",
    "current_solver_preferences",
    "solver_preferences",
    "SatResult",
    "SolverStats",
    "luby",
    "solve_cnf",
    "iter_models",
    "count_models",
    "parse_dimacs",
    "read_dimacs",
    "write_dimacs",
    "dimacs_text",
    "brute_force_models",
    "brute_force_satisfiable",
    "brute_force_count",
]

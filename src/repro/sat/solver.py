"""The CDCL SAT solver's public face: core selection and preferences.

This is the reproduction's stand-in for MiniSat [17] in the paper's
Alloy -> Kodkod -> SAT pipeline.  The implementation is split across
three modules (see :mod:`repro.sat.core` for the architecture): the
shared search driver, and two interchangeable clause-storage *cores* —

* ``"object"`` — per-clause Python objects (:class:`ObjectCdclSolver`,
  the original representation and the differential oracle);
* ``"array"`` — a flat integer clause arena with flat int watch lists
  (:class:`ArrayCdclSolver`; optionally mypyc-compiled, see
  :mod:`repro.sat.build_compiled`).

Both cores implement identical heuristics and run the same search, so
suites, models, and solver counters are byte-for-byte equal across
cores — ``--solver-core object`` plays the same oracle role as
``--fresh-solver`` and ``--no-symmetry``.

:class:`CdclSolver` remains the object core, so existing constructions
keep their exact historical behavior (no inprocessing, object storage).
Pipeline code builds solvers through :func:`create_solver`, which
resolves unset knobs from the ambient :func:`solver_preferences` scope —
the engine enters that scope from ``SynthesisConfig.solver_core`` /
``SynthesisConfig.inprocessing``, which is how the knobs reach every
solver constructed behind :class:`repro.relational.translate.Problem`
without threading parameters through the whole relational layer.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from .cnf import Cnf
from .core import (
    DEADLINE_POLL_PROPAGATIONS,
    MAX_MERGED_STAT_FIELDS,
    CdclCore,
    SatResult,
    SolverStats,
    luby,
)
from .core_object import ObjectCdclSolver

from . import core_array as _core_array_module
from .core_array import ArrayCdclSolver

#: True when the array core was imported from a mypyc-built extension
#: (see :mod:`repro.sat.build_compiled`); the pure-Python module is the
#: always-available fallback and behaves identically.
COMPILED_ARRAY_CORE = str(getattr(_core_array_module, "__file__", "")).endswith(
    (".so", ".pyd")
)

__all__ = [
    "DEADLINE_POLL_PROPAGATIONS",
    "MAX_MERGED_STAT_FIELDS",
    "SOLVER_CORES",
    "CdclCore",
    "CdclSolver",
    "ObjectCdclSolver",
    "ArrayCdclSolver",
    "SatResult",
    "SolverStats",
    "create_solver",
    "current_solver_preferences",
    "luby",
    "solve_cnf",
    "solver_preferences",
]

#: Selectable propagation cores (`SynthesisConfig.solver_core` /
#: ``--solver-core``).
SOLVER_CORES = ("object", "array")

#: Back-compat name: bare ``CdclSolver(cnf)`` is the object core with
#: inprocessing off — byte-for-byte the historical solver.
CdclSolver = ObjectCdclSolver

_CORE_CLASSES = {"object": ObjectCdclSolver, "array": ArrayCdclSolver}

# Ambient defaults used by create_solver() when a knob is not given
# explicitly.  Module-global (not a contextvar) for the same reason the
# resilience deadline is: solver construction and the scopes that
# configure it live on one thread per process.
_PREFERRED_CORE = "object"
_PREFERRED_INPROCESS = False


def current_solver_preferences() -> tuple[str, bool]:
    """The ambient ``(core, inprocess)`` defaults for :func:`create_solver`."""
    return _PREFERRED_CORE, _PREFERRED_INPROCESS


@contextmanager
def solver_preferences(
    core: Optional[str] = None, inprocess: Optional[bool] = None
) -> Iterator[None]:
    """Scope the defaults :func:`create_solver` resolves unset knobs from.

    ``None`` leaves the corresponding ambient value unchanged.  Scopes
    nest; the previous preferences are restored on exit.
    """
    global _PREFERRED_CORE, _PREFERRED_INPROCESS
    if core is not None and core not in SOLVER_CORES:
        raise ValueError(
            f"unknown solver core: {core!r} (expected one of {SOLVER_CORES})"
        )
    previous = (_PREFERRED_CORE, _PREFERRED_INPROCESS)
    if core is not None:
        _PREFERRED_CORE = core
    if inprocess is not None:
        _PREFERRED_INPROCESS = bool(inprocess)
    try:
        yield
    finally:
        _PREFERRED_CORE, _PREFERRED_INPROCESS = previous


def create_solver(
    cnf: Cnf,
    core: Optional[str] = None,
    inprocess: Optional[bool] = None,
) -> CdclCore:
    """Build a solver over ``cnf`` with the requested (or ambient) core
    and inprocessing setting.

    This is the construction point the relational layer and the AllSAT
    enumerator use; benchmarks and tests may also pass the knobs
    explicitly to pin a configuration regardless of scope.
    """
    if core is None:
        core = _PREFERRED_CORE
    if inprocess is None:
        inprocess = _PREFERRED_INPROCESS
    try:
        solver_class = _CORE_CLASSES[core]
    except KeyError:
        raise ValueError(
            f"unknown solver core: {core!r} (expected one of {SOLVER_CORES})"
        ) from None
    return solver_class(cnf, inprocess=inprocess)


def solve_cnf(cnf: Cnf, assumptions: Sequence[int] = ()) -> SatResult:
    """Convenience helper: build a solver for ``cnf`` and solve once."""
    return create_solver(cnf).solve(assumptions)

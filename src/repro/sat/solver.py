"""A CDCL SAT solver in pure Python.

This is the reproduction's stand-in for MiniSat [17] in the paper's
Alloy -> Kodkod -> SAT pipeline.  It implements the standard modern
architecture:

* two-watched-literal unit propagation with *blocking literals* (a cached
  literal per watch entry whose truth lets propagation skip the clause
  without touching its memory),
* dedicated watch lists for binary clauses (no clause traversal at all),
* first-UIP conflict analysis with clause learning and learned-clause
  minimization (self-subsuming resolution against reason clauses),
* LBD-tagged learned-clause database with periodic reduction — essential
  for AllSAT blocking-clause loops, where a solver instance otherwise
  accumulates learned clauses without bound across thousands of calls,
* VSIDS decision heuristic backed by an indexed max-heap (O(log n) per
  decision/bump instead of an O(n) scan) with deterministic tie-breaking
  on the variable index, plus phase saving,
* Luby-sequence restarts,
* solving under assumptions (used for incremental queries such as the
  minimality checks in the relational synthesis backend).

The solver is complete: on every input it terminates with SAT (plus a total
model) or UNSAT, which is what makes bounded-exhaustive ELT synthesis
meaningful.  Every heuristic is deterministic, so a given clause stream
always produces the same search, the same model, and the same statistics —
the property the synthesis orchestrator's byte-identical-output guarantee
rests on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..errors import SolverInterrupted
from ..resilience import current_deadline
from .cnf import Cnf

#: How many unit propagations may elapse between cooperative-deadline
#: polls.  Coarse enough that the poll is invisible in profile (one
#: comparison per loop iteration, one clock read per ~budget
#: propagations), fine enough that a stuck query dies within a fraction
#: of a second of its deadline.
DEADLINE_POLL_PROPAGATIONS = 20000


def luby(index: int) -> int:
    """Return the ``index``-th element (1-based) of the Luby sequence
    1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    >>> [luby(i) for i in range(1, 10)]
    [1, 1, 2, 1, 1, 2, 4, 1, 1]
    """
    while True:
        k = 1
        while (1 << k) - 1 < index:
            k += 1
        if index == (1 << k) - 1:
            return 1 << (k - 1)
        # Here 2^(k-1) - 1 < index < 2^k - 1: recurse into the repeated prefix.
        index -= (1 << (k - 1)) - 1


@dataclass
class SolverStats:
    """Counters exposed for benchmarks and tests."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    max_decision_level: int = 0
    #: Literals removed from learned clauses by minimization.
    minimized_literals: int = 0
    #: Learned-clause database reductions performed.
    db_reductions: int = 0
    #: Learned clauses deleted by those reductions.
    deleted_clauses: int = 0
    # ---- incremental-session counters (maintained by the session layers:
    # :class:`repro.relational.translate.ProblemSession` and the witness
    # session cache in :mod:`repro.synth.sat_backend`) ------------------
    #: Persistent witness sessions opened (one per translated program).
    sessions: int = 0
    #: Relational-to-CNF translations performed.
    translations: int = 0
    #: Queries served by a live session that a fresh-solver run would
    #: have paid a full translation for.
    translations_avoided: int = 0
    #: Assumption-scoped solves/enumerations answered by a live session
    #: (reusing its translation and accumulated solver state).
    incremental_solves: int = 0
    #: Learned clauses already present (and reused) at the start of each
    #: incremental solve, summed over solves.
    retained_learned_clauses: int = 0
    # ---- symmetry-breaking counters (maintained by the relational
    # translation, :mod:`repro.relational.translate`) --------------------
    #: Static lex-leader symmetry-breaking clauses emitted into the CNF
    #: during translation (see :meth:`repro.relational.Problem.
    #: add_symmetry`).  Deterministic for a fixed problem.
    symmetry_clauses: int = 0

    def merge(self, other: "SolverStats") -> None:
        """Accumulate another counter set into this one (used when stats
        from many solver instances are aggregated, e.g. per-program SAT
        witness enumeration inside one synthesis run)."""
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.conflicts += other.conflicts
        self.restarts += other.restarts
        self.learned_clauses += other.learned_clauses
        self.max_decision_level = max(
            self.max_decision_level, other.max_decision_level
        )
        self.minimized_literals += other.minimized_literals
        self.db_reductions += other.db_reductions
        self.deleted_clauses += other.deleted_clauses
        self.sessions += other.sessions
        self.translations += other.translations
        self.translations_avoided += other.translations_avoided
        self.incremental_solves += other.incremental_solves
        self.retained_learned_clauses += other.retained_learned_clauses
        self.symmetry_clauses += other.symmetry_clauses


@dataclass
class SatResult:
    """Outcome of a :meth:`CdclSolver.solve` call."""

    satisfiable: bool
    model: Optional[dict[int, bool]] = None
    stats: SolverStats = field(default_factory=SolverStats)

    def __bool__(self) -> bool:
        return self.satisfiable


class _Clause:
    """A clause of three or more literals (binary clauses live purely in
    the binary watch lists).  ``lits[0]`` and ``lits[1]`` are the watched
    positions; ``lbd`` is the literal-block-distance quality tag used by
    database reduction (0 for problem clauses, which are never deleted)."""

    __slots__ = ("lits", "learned", "lbd")

    def __init__(self, lits: list[int], learned: bool = False, lbd: int = 0) -> None:
        self.lits = lits
        self.learned = learned
        self.lbd = lbd


class CdclSolver:
    """Conflict-driven clause-learning solver over a :class:`Cnf`.

    The solver copies the clauses out of the given CNF, so the CNF may keep
    growing for other purposes afterwards; use :meth:`add_clause` to feed
    additional clauses (e.g. AllSAT blocking clauses) to the same solver
    instance between ``solve`` calls.
    """

    def __init__(self, cnf: Cnf) -> None:
        self._nvars = cnf.num_vars
        # Literal encoding: positive literal v -> 2v, negative -> 2v+1.
        # _watches[i] holds (blocker, clause) pairs whose watched literal is
        # the negation of literal i; _bin_watches[i] holds (other, lits)
        # pairs for binary clauses (-lit(i), other).
        size = 2 * self._nvars + 2
        self._watches: list[list[tuple[int, _Clause]]] = [[] for _ in range(size)]
        self._bin_watches: list[list[tuple[int, list[int]]]] = [
            [] for _ in range(size)
        ]
        # Literal-indexed truth values: 1 true, -1 false, 0 unassigned.
        self._values: list[int] = [0] * size
        self._long_clauses: list[_Clause] = []
        self._learned: list[_Clause] = []
        self._max_learned = 2000
        self._level: list[int] = [0] * (self._nvars + 1)
        self._reason: list[Optional[list[int]]] = [None] * (self._nvars + 1)
        self._trail: list[int] = []  # literals in assignment order
        self._trail_lim: list[int] = []  # trail indices at each decision level
        self._qhead = 0
        self._activity: list[float] = [0.0] * (self._nvars + 1)
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._saved_phase: list[bool] = [False] * (self._nvars + 1)
        self._seen = bytearray(self._nvars + 1)
        # Indexed max-heap over unassigned variables: ordered by activity,
        # ties broken deterministically by the smaller variable index.
        self._heap: list[int] = []
        self._heap_pos: list[int] = [-1] * (self._nvars + 1)
        for var in range(1, self._nvars + 1):
            self._heap_insert(var)
        self._ok = True
        self._last_model_decisions: list[int] = []
        self.stats = SolverStats()
        self._load(cnf.clauses)

    def _load(self, clauses: Iterable[Sequence[int]]) -> None:
        """Bulk-load clauses from a :class:`Cnf`.

        The container guarantees clauses are deduplicated and
        tautology-free, and nothing is assigned yet, so clauses can be
        installed without the per-clause filtering of :meth:`add_clause`;
        unit clauses are enqueued at the end and propagated once.
        """
        units: list[int] = []
        for clause in clauses:
            size = len(clause)
            if size == 0:
                self._ok = False
                return
            if size == 1:
                units.append(clause[0])
            elif size == 2:
                self._watch_binary(list(clause))
            else:
                long_clause = _Clause(list(clause))
                self._long_clauses.append(long_clause)
                self._watch(long_clause)
        for lit in units:
            if not self._enqueue(lit, None):
                self._ok = False
                return
        if self._propagate() is not None:
            self._ok = False

    # ------------------------------------------------------------------
    # Clause database
    # ------------------------------------------------------------------
    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT.

        Intended for use between solve calls; if the solver was abandoned
        mid-search (an enumeration generator closed early), the search is
        first cancelled back to decision level 0 so the clause — and any
        unit it implies — lands on the root level.  Duplicate literals
        and tautologies are detected in one linear pass.
        """
        if not self._ok:
            return False
        self._cancel_until(0)
        seen: set[int] = set()
        lits: list[int] = []
        max_var = 0
        for lit in literals:
            if -lit in seen:
                return True  # tautology
            if lit not in seen:
                seen.add(lit)
                lits.append(lit)
                var = lit if lit > 0 else -lit
                if var > max_var:
                    max_var = var
        self._grow_to(max_var)
        lits.sort(key=abs)
        # Remove literals already false at level 0; succeed early on a true one.
        values = self._values
        level = self._level
        filtered: list[int] = []
        for lit in lits:
            index = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
            value = values[index]
            if value > 0 and level[abs(lit)] == 0:
                return True
            if value < 0 and level[abs(lit)] == 0:
                continue
            filtered.append(lit)
        if not filtered:
            self._ok = False
            return False
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        if len(filtered) == 2:
            self._watch_binary(filtered)
            return True
        clause = _Clause(list(filtered))
        self._long_clauses.append(clause)
        self._watch(clause)
        return True

    def _grow_to(self, var: int) -> None:
        while self._nvars < var:
            self._nvars += 1
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._saved_phase.append(False)
            self._heap_pos.append(-1)
            self._watches.append([])
            self._watches.append([])
            self._bin_watches.append([])
            self._bin_watches.append([])
            self._values.append(0)
            self._values.append(0)
            self._seen.append(0)
            self._heap_insert(self._nvars)

    def _watch(self, clause: _Clause) -> None:
        lits = clause.lits
        self._watches[self._lit_index(-lits[0])].append((lits[1], clause))
        self._watches[self._lit_index(-lits[1])].append((lits[0], clause))

    def _watch_binary(self, lits: list[int]) -> None:
        a, b = lits
        self._bin_watches[self._lit_index(-a)].append((b, lits))
        self._bin_watches[self._lit_index(-b)].append((a, lits))

    @staticmethod
    def _lit_index(lit: int) -> int:
        return 2 * lit if lit > 0 else -2 * lit + 1

    # ------------------------------------------------------------------
    # Learned-clause database reduction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        """Drop the worst half of the learned clauses (must be called at
        decision level 0, where no learned clause can be a reason for a
        surviving assignment that conflict analysis might expand).

        Clauses are ranked by (LBD, length, age); "glue" clauses with
        LBD <= 2 are always kept, the standard heuristic for clauses that
        connect decision levels and get reused constantly."""
        learned = self._learned
        ranked = sorted(
            range(len(learned)),
            key=lambda i: (learned[i].lbd, len(learned[i].lits), i),
        )
        keep_indices = set(ranked[: len(learned) // 2])
        kept: list[_Clause] = []
        deleted = 0
        for i, clause in enumerate(learned):
            if i in keep_indices or clause.lbd <= 2:
                kept.append(clause)
            else:
                deleted += 1
        self._learned = kept
        self._rebuild_watches()
        self.stats.db_reductions += 1
        self.stats.deleted_clauses += deleted
        self._max_learned = self._max_learned + self._max_learned // 2

    def _rebuild_watches(self) -> None:
        for watch_list in self._watches:
            del watch_list[:]
        for clause in self._long_clauses:
            self._watch(clause)
        for clause in self._learned:
            self._watch(clause)

    # ------------------------------------------------------------------
    # Assignment primitives
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> Optional[bool]:
        value = self._values[(lit << 1) if lit > 0 else ((-lit) << 1) | 1]
        if value == 0:
            return None
        return value > 0

    def _enqueue(self, lit: int, reason: Optional[list[int]]) -> bool:
        index = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
        value = self._values[index]
        if value != 0:
            return value > 0
        var = lit if lit > 0 else -lit
        self._values[index] = 1
        self._values[index ^ 1] = -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[list[int]]:
        """Unit propagation; returns a conflicting clause's literals or None.

        The hot loop: truth values are read straight out of the
        literal-indexed array (no method call), blocking literals short-cut
        satisfied clauses, and binary clauses propagate from their own
        watch lists without touching clause objects at all.
        """
        values = self._values
        trail = self._trail
        watches = self._watches
        bin_watches = self._bin_watches
        level_now = len(self._trail_lim)
        levels = self._level
        reasons = self._reason
        qhead = self._qhead
        processed = 0
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            processed += 1
            lit_idx = (lit << 1) if lit > 0 else ((-lit) << 1) | 1

            for other, bin_lits in bin_watches[lit_idx]:
                other_idx = (other << 1) if other > 0 else ((-other) << 1) | 1
                value = values[other_idx]
                if value < 0:
                    self._qhead = len(trail)
                    self.stats.propagations += processed
                    return bin_lits
                if value == 0:
                    values[other_idx] = 1
                    values[other_idx ^ 1] = -1
                    var = other if other > 0 else -other
                    levels[var] = level_now
                    reasons[var] = bin_lits
                    trail.append(other)

            watch_list = watches[lit_idx]
            neg_lit = -lit
            i = 0
            j = 0
            end = len(watch_list)
            while i < end:
                # Watch entries are (blocker, clause) tuples; the blocker is
                # *some* literal of the clause whose truth proves the clause
                # satisfied without touching it.  Entries are reused verbatim
                # on the keep path — no allocation in the hot loop.
                entry = watch_list[i]
                i += 1
                blocker = entry[0]
                if values[(blocker << 1) if blocker > 0 else ((-blocker) << 1) | 1] > 0:
                    watch_list[j] = entry
                    j += 1
                    continue
                clause = entry[1]
                lits = clause.lits
                # Normalize: the false literal goes to position 1.
                if lits[0] == neg_lit:
                    lits[0] = lits[1]
                    lits[1] = neg_lit
                first = lits[0]
                first_idx = (first << 1) if first > 0 else ((-first) << 1) | 1
                if values[first_idx] > 0:
                    watch_list[j] = entry
                    j += 1
                    continue
                # Look for a replacement watch.
                moved = False
                for pos in range(2, len(lits)):
                    cand = lits[pos]
                    cand_idx = (cand << 1) if cand > 0 else ((-cand) << 1) | 1
                    if values[cand_idx] >= 0:
                        lits[1] = cand
                        lits[pos] = neg_lit
                        watches[cand_idx ^ 1].append(entry)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                watch_list[j] = entry
                j += 1
                if values[first_idx] < 0:
                    while i < end:
                        watch_list[j] = watch_list[i]
                        j += 1
                        i += 1
                    del watch_list[j:]
                    self._qhead = len(trail)
                    self.stats.propagations += processed
                    return lits
                values[first_idx] = 1
                values[first_idx ^ 1] = -1
                var = first if first > 0 else -first
                levels[var] = level_now
                reasons[var] = lits
                trail.append(first)
            del watch_list[j:]
        self._qhead = qhead
        self.stats.propagations += processed
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: list[int]) -> tuple[list[int], int, int]:
        """Derive the first-UIP learned clause; returns (clause, backjump
        level, LBD).  The clause is minimized by self-subsumption: a
        non-asserting literal whose reason clause is entirely covered by
        the other learned literals (or level-0 facts) is redundant."""
        seen = self._seen
        to_clear: list[int] = []
        learned: list[int] = []
        counter = 0
        pivot: Optional[int] = None  # trail literal whose reason is expanded
        reason: Sequence[int] = conflict
        trail = self._trail
        trail_index = len(trail) - 1
        current_level = len(self._trail_lim)
        levels = self._level
        while True:
            for q in reason:
                if pivot is not None and q == pivot:
                    continue
                var = abs(q)
                if not seen[var] and levels[var] > 0:
                    seen[var] = 1
                    to_clear.append(var)
                    self._bump(var)
                    if levels[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            while not seen[abs(trail[trail_index])]:
                trail_index -= 1
            pivot = trail[trail_index]
            var = abs(pivot)
            seen[var] = 0
            counter -= 1
            trail_index -= 1
            if counter == 0:
                break
            clause_reason = self._reason[var]
            assert clause_reason is not None
            reason = clause_reason

        # Minimization.  Every current-level variable has been resolved
        # away, so a learned literal's reason (all at its own, lower,
        # level or below) is checked purely against the seen set — i.e.
        # against the other learned literals and level-0 facts.
        if learned:
            reasons = self._reason
            kept: list[int] = []
            for q in learned:
                reason_q = reasons[abs(q)]
                if reason_q is None:
                    kept.append(q)
                    continue
                redundant = True
                for r in reason_q:
                    if r == -q:
                        continue
                    rvar = abs(r)
                    if levels[rvar] > 0 and not seen[rvar]:
                        redundant = False
                        break
                if redundant:
                    self.stats.minimized_literals += 1
                else:
                    kept.append(q)
            learned = kept
        for var in to_clear:
            seen[var] = 0

        learned.insert(0, -pivot)
        if len(learned) == 1:
            return learned, 0, 1
        # Backjump level = max level among the non-asserting literals.
        back_level = 0
        distinct_levels = {current_level}
        for q in learned[1:]:
            q_level = levels[abs(q)]
            distinct_levels.add(q_level)
            if q_level > back_level:
                back_level = q_level
        # Put one literal of the backjump level in watch position 1.
        for pos in range(1, len(learned)):
            if levels[abs(learned[pos])] == back_level:
                learned[1], learned[pos] = learned[pos], learned[1]
                break
        return learned, back_level, len(distinct_levels)

    def _bump(self, var: int) -> None:
        activity = self._activity
        activity[var] += self._var_inc
        if activity[var] > 1e100:
            for index in range(1, self._nvars + 1):
                activity[index] *= 1e-100
            self._var_inc *= 1e-100
            # Uniform rescaling preserves the heap order; no repair needed.
        if self._heap_pos[var] >= 0:
            self._heap_sift_up(self._heap_pos[var])

    def _decay(self) -> None:
        self._var_inc /= self._var_decay

    # ------------------------------------------------------------------
    # VSIDS order heap (indexed binary max-heap; deterministic ties)
    # ------------------------------------------------------------------
    def _heap_before(self, a: int, b: int) -> bool:
        activity = self._activity
        if activity[a] != activity[b]:
            return activity[a] > activity[b]
        return a < b

    def _heap_insert(self, var: int) -> None:
        if self._heap_pos[var] >= 0:
            return
        heap = self._heap
        heap.append(var)
        self._heap_pos[var] = len(heap) - 1
        self._heap_sift_up(len(heap) - 1)

    def _heap_sift_up(self, index: int) -> None:
        heap = self._heap
        pos = self._heap_pos
        var = heap[index]
        while index > 0:
            parent = (index - 1) >> 1
            parent_var = heap[parent]
            if not self._heap_before(var, parent_var):
                break
            heap[index] = parent_var
            pos[parent_var] = index
            index = parent
        heap[index] = var
        pos[var] = index

    def _heap_sift_down(self, index: int) -> None:
        heap = self._heap
        pos = self._heap_pos
        size = len(heap)
        var = heap[index]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size and self._heap_before(heap[right], heap[child]):
                child = right
            child_var = heap[child]
            if not self._heap_before(child_var, var):
                break
            heap[index] = child_var
            pos[child_var] = index
            index = child
        heap[index] = var
        pos[var] = index

    def _heap_pop(self) -> int:
        heap = self._heap
        pos = self._heap_pos
        top = heap[0]
        pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            pos[last] = 0
            self._heap_sift_down(0)
        return top

    # ------------------------------------------------------------------
    # Conflict learning (shared by solve() and iter_solutions())
    # ------------------------------------------------------------------
    def _learn_and_backjump(self, conflict: list[int]) -> Optional[str]:
        """Analyze a conflict at decision level > 0, install the learned
        clause and backjump.  Returns None when the formula became
        unsatisfiable, ``"unit"`` when a unit was learned (the solver is
        back at level 0), ``"clause"`` otherwise."""
        learned, back_level, lbd = self._analyze(conflict)
        self._cancel_until(back_level)
        if len(learned) == 1:
            self._cancel_until(0)
            if not self._enqueue(learned[0], None):
                self._ok = False
                return None
            if self._propagate() is not None:
                self._ok = False
                return None
            self._decay()
            return "unit"
        if len(learned) == 2:
            self._watch_binary(learned)
        else:
            clause = _Clause(learned, learned=True, lbd=lbd)
            self._learned.append(clause)
            self._watch(clause)
        self.stats.learned_clauses += 1
        self._enqueue(learned[0], learned)
        self._decay()
        return "clause"

    def _restart(self) -> None:
        """Cancel to level 0 and, if due, reduce the learned database."""
        self.stats.restarts += 1
        self._cancel_until(0)
        if len(self._learned) > self._max_learned:
            self._reduce_db()

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        values = self._values
        for index in range(len(self._trail) - 1, limit - 1, -1):
            lit = self._trail[index]
            var = lit if lit > 0 else -lit
            self._saved_phase[var] = lit > 0
            lit_idx = (lit << 1) if lit > 0 else (var << 1) | 1
            values[lit_idx] = 0
            values[lit_idx ^ 1] = 0
            self._reason[var] = None
            if self._heap_pos[var] < 0:
                self._heap_insert(var)
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _decide(self) -> Optional[int]:
        values = self._values
        heap = self._heap
        while heap:
            var = self._heap_pop()
            if values[var << 1] == 0:
                return var if self._saved_phase[var] else -var
        return None

    # ------------------------------------------------------------------
    # Main search loop
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Search for a model extending ``assumptions``.

        Assumptions are literals treated as decisions; if the formula is
        unsatisfiable only under the assumptions, the result is UNSAT but the
        solver stays usable for further calls.
        """
        if not self._ok:
            return SatResult(False, stats=self.stats)
        for lit in assumptions:
            self._grow_to(abs(lit))
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return SatResult(False, stats=self.stats)
        if len(self._learned) > self._max_learned:
            # Incremental use (AllSAT blocking loops) adds clauses between
            # many short solve calls; reduce here too, not just at restarts.
            self._reduce_db()

        restart_index = 1
        conflict_budget = 32 * luby(restart_index)
        conflicts_here = 0
        deadline = current_deadline()
        next_poll = self.stats.propagations + DEADLINE_POLL_PROPAGATIONS

        while True:
            if deadline is not None and self.stats.propagations >= next_poll:
                next_poll = self.stats.propagations + DEADLINE_POLL_PROPAGATIONS
                if time.monotonic() > deadline:
                    # Backtrack first so the solver stays usable.
                    self._cancel_until(0)
                    raise SolverInterrupted(
                        "SAT solve interrupted by cooperative deadline"
                    )
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                if len(self._trail_lim) == 0:
                    self._cancel_until(0)
                    return SatResult(False, stats=self.stats)
                if not self._all_assumptions_hold(assumptions):
                    # Conflict depends on assumptions only.
                    self._cancel_until(0)
                    return SatResult(False, stats=self.stats)
                outcome = self._learn_and_backjump(conflict)
                if outcome is None:
                    return SatResult(False, stats=self.stats)
                if outcome == "unit" and not self._replay_assumptions(assumptions):
                    return SatResult(False, stats=self.stats)
                if conflicts_here >= conflict_budget:
                    restart_index += 1
                    conflict_budget = 32 * luby(restart_index)
                    conflicts_here = 0
                    self._restart()
                    if not self._replay_assumptions(assumptions):
                        return SatResult(False, stats=self.stats)
                continue

            if not self._replay_assumptions(assumptions):
                return SatResult(False, stats=self.stats)
            if self._qhead < len(self._trail):
                continue

            decision = self._decide()
            if decision is None:
                values = self._values
                model = {
                    var: values[var << 1] > 0
                    for var in range(1, self._nvars + 1)
                }
                trail = self._trail
                self._last_model_decisions = [
                    trail[position] for position in self._trail_lim
                ]
                self._cancel_until(0)
                return SatResult(True, model=model, stats=self.stats)
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            if len(self._trail_lim) > self.stats.max_decision_level:
                self.stats.max_decision_level = len(self._trail_lim)
            self._enqueue(decision, None)

    # ------------------------------------------------------------------
    # Incremental AllSAT
    # ------------------------------------------------------------------
    def iter_solutions(self, blocking_literals=None, assumptions: Sequence[int] = ()):
        """Enumerate models without restarting the search between them.

        After each yielded model a blocking clause is attached *in place*:
        the solver backjumps only far enough to make the clause assert, so
        the shared prefix of consecutive models (usually almost all of it,
        thanks to phase saving) is never re-propagated.  This is the
        engine behind :func:`repro.sat.enumerate.iter_models` and
        :meth:`repro.relational.translate.Problem.iter_instances`.

        ``blocking_literals``: optional ``callable(model) -> list[int]``
        returning literals, all false under the model, whose clause rules
        it out (e.g. the negated projection values).  The default blocks
        the model's decision literals, which excludes exactly that one
        total model.

        ``assumptions`` scopes the enumeration: the given literals are
        held as pseudo-decisions for the whole run (exactly as in
        :meth:`solve`), and enumeration ends — leaving the solver usable —
        as soon as the formula is exhausted *under the assumptions*.
        Because assumption literals sit on decision levels, the default
        blocking clauses automatically carry their negations, so an
        incremental session that retires one assumption literal (e.g. a
        fresh per-enumeration activation tag asserted false afterwards)
        retracts every blocking clause of that enumeration in one unit
        clause.

        The generator yields each model dict exactly once; the solver must
        not be used for other queries while enumeration is in progress.
        Enumeration is deterministic and complete: it ends when the
        formula plus blocking clauses becomes unsatisfiable (under the
        assumptions, if any).
        """
        if not self._ok:
            return
        for lit in assumptions:
            self._grow_to(abs(lit))
        self._cancel_until(0)
        if self._propagate() is not None:
            self._ok = False
            return

        restart_index = 1
        conflict_budget = 32 * luby(restart_index)
        conflicts_here = 0
        deadline = current_deadline()
        next_poll = self.stats.propagations + DEADLINE_POLL_PROPAGATIONS

        while True:
            if deadline is not None and self.stats.propagations >= next_poll:
                next_poll = self.stats.propagations + DEADLINE_POLL_PROPAGATIONS
                if time.monotonic() > deadline:
                    # Backtrack first so the solver stays usable; an
                    # abandoned enumeration must not poison later queries.
                    self._cancel_until(0)
                    raise SolverInterrupted(
                        "SAT enumeration interrupted by cooperative deadline"
                    )
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                if len(self._trail_lim) == 0:
                    self._cancel_until(0)
                    self._ok = False
                    return
                if assumptions and not self._all_assumptions_hold(assumptions):
                    # The conflict needs an assumption flipped: the model
                    # space under the assumptions is exhausted, but the
                    # solver (and its learned clauses) stay usable.
                    self._cancel_until(0)
                    return
                outcome = self._learn_and_backjump(conflict)
                if outcome is None:
                    return
                if (
                    outcome == "unit"
                    and assumptions
                    and not self._replay_assumptions(assumptions)
                ):
                    return
                if conflicts_here >= conflict_budget:
                    restart_index += 1
                    conflict_budget = 32 * luby(restart_index)
                    conflicts_here = 0
                    self._restart()
                    if assumptions and not self._replay_assumptions(assumptions):
                        return
                continue

            if assumptions:
                if not self._replay_assumptions(assumptions):
                    return
                if self._qhead < len(self._trail):
                    continue

            decision = self._decide()
            if decision is not None:
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                if len(self._trail_lim) > self.stats.max_decision_level:
                    self.stats.max_decision_level = len(self._trail_lim)
                self._enqueue(decision, None)
                continue

            values = self._values
            model = {
                var: values[var << 1] > 0 for var in range(1, self._nvars + 1)
            }
            trail = self._trail
            self._last_model_decisions = [
                trail[position] for position in self._trail_lim
            ]
            yield model
            if blocking_literals is None:
                lits = [-lit for lit in self._last_model_decisions]
            else:
                lits = blocking_literals(model)
            if not self._block_and_continue(lits):
                self._cancel_until(0)
                return

    def _block_and_continue(self, lits: list[int]) -> bool:
        """Attach a blocking clause mid-search and backjump so the search
        continues past it; returns False when enumeration is complete.

        Every literal must be false under the current (total) assignment.
        Level-0-false literals are dropped; if none survive, every model
        matches the blocked pattern and enumeration is over.
        """
        for lit in lits:
            self._grow_to(abs(lit))
        level = self._level
        live = [lit for lit in lits if level[abs(lit)] > 0]
        if not live:
            return False
        if len(live) == 1:
            self._cancel_until(0)
            if not self._enqueue(live[0], None) or self._propagate() is not None:
                self._ok = False
                return False
            return True
        live.sort(key=lambda lit: level[abs(lit)], reverse=True)
        top_level = level[abs(live[0])]
        second_level = level[abs(live[1])]
        if len(live) == 2:
            self._watch_binary(live)
        else:
            clause = _Clause(live)
            self._long_clauses.append(clause)
            self._watch(clause)
        self._cancel_until(top_level - 1)
        if second_level < top_level:
            # The clause is unit now: assert its deepest literal here.
            self._enqueue(live[0], live)
        return True

    def last_model_decisions(self) -> list[int]:
        """The decision (and assumption) literals of the most recent SAT
        result, in trail order.

        Every other literal of that model was forced by unit propagation
        from these, so the model is the *unique* total model extending
        them.  AllSAT loops exploit this: adding the clause that negates
        just the decisions blocks exactly that one model while staying far
        shorter than a full-model blocking clause (see
        :func:`repro.sat.enumerate.iter_models`).
        """
        return list(self._last_model_decisions)

    @property
    def learned_count(self) -> int:
        """Learned clauses currently retained in the database (what an
        incremental session reuses across queries; binary learned clauses
        live in the binary watch lists and are not counted here)."""
        return len(self._learned)

    # ------------------------------------------------------------------
    # Assumption handling
    # ------------------------------------------------------------------
    def _all_assumptions_hold(self, assumptions: Sequence[int]) -> bool:
        values = self._values
        for lit in assumptions:
            if values[(lit << 1) if lit > 0 else ((-lit) << 1) | 1] < 0:
                return False
        return True

    def _replay_assumptions(self, assumptions: Sequence[int]) -> bool:
        """Ensure every assumption literal is enqueued; returns False on
        conflict with the assumptions."""
        for lit in assumptions:
            value = self._value(lit)
            if value is True:
                continue
            if value is False:
                self._cancel_until(0)
                return False
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)
            conflict = self._propagate()
            if conflict is not None:
                if len(self._trail_lim) == 0:
                    self._ok = False
                self._cancel_until(0)
                return False
        return True


def solve_cnf(cnf: Cnf, assumptions: Sequence[int] = ()) -> SatResult:
    """Convenience helper: build a solver for ``cnf`` and solve once."""
    return CdclSolver(cnf).solve(assumptions)

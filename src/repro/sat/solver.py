"""The CDCL SAT solver's public face: core selection and preferences.

This is the reproduction's stand-in for MiniSat [17] in the paper's
Alloy -> Kodkod -> SAT pipeline.  The implementation is split across
three modules (see :mod:`repro.sat.core` for the architecture): the
shared search driver, and two interchangeable clause-storage *cores* —

* ``"object"`` — per-clause Python objects (:class:`ObjectCdclSolver`,
  the original representation and the differential oracle);
* ``"array"`` — a flat integer clause arena with flat int watch lists
  (:class:`ArrayCdclSolver`; optionally mypyc-compiled, see
  :mod:`repro.sat.build_compiled`);
* ``"accel"`` — the same arena held in ``array('i')`` storage with the
  inner loops dispatched to the hand-written C extension
  :mod:`repro.sat._accel` (:class:`AccelCdclSolver`; built on demand by
  :mod:`repro.sat.build_accel`, only selectable when the extension
  imported — see :data:`SOLVER_CORES` vs :data:`SOLVER_CORE_NAMES`).

The cores implement identical heuristics and run the same search, so
suites, models, and solver counters are byte-for-byte equal across
cores — ``--solver-core object`` plays the same oracle role as
``--fresh-solver`` and ``--no-symmetry``.  The pseudo-core ``"auto"``
resolves to the fastest core available in this environment
(:func:`default_solver_core`: ``accel`` when built, else ``array``);
:func:`accel_status` reports which one that is, and is surfaced by
``repro stats``, the run manifests, and every benchmark JSON.

:class:`CdclSolver` remains the object core, so existing constructions
keep their exact historical behavior (no inprocessing, object storage).
Pipeline code builds solvers through :func:`create_solver`, which
resolves unset knobs from the ambient :func:`solver_preferences` scope —
the engine enters that scope from ``SynthesisConfig.solver_core`` /
``SynthesisConfig.inprocessing``, which is how the knobs reach every
solver constructed behind :class:`repro.relational.translate.Problem`
without threading parameters through the whole relational layer.
"""

from __future__ import annotations

from contextlib import contextmanager
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterator, Optional, Sequence

from ..errors import AccelUnavailableError
from .cnf import Cnf
from .core import (
    DEADLINE_POLL_PROPAGATIONS,
    MAX_MERGED_STAT_FIELDS,
    CdclCore,
    SatResult,
    SolverStats,
    luby,
)
from .core_object import ObjectCdclSolver

from . import core_array as _core_array_module
from .core_array import ArrayCdclSolver
from .core_accel import AccelCdclSolver, accel_available, extension_file

#: True when the array core was imported from a mypyc-built extension
#: (see :mod:`repro.sat.build_compiled`); the pure-Python module is the
#: always-available fallback and behaves identically.
COMPILED_ARRAY_CORE = str(getattr(_core_array_module, "__file__", "")).endswith(
    (".so", ".pyd")
)

__all__ = [
    "DEADLINE_POLL_PROPAGATIONS",
    "MAX_MERGED_STAT_FIELDS",
    "SOLVER_CORES",
    "SOLVER_CORE_NAMES",
    "AccelCdclSolver",
    "CdclCore",
    "CdclSolver",
    "ObjectCdclSolver",
    "ArrayCdclSolver",
    "SatResult",
    "SolverStats",
    "accel_status",
    "create_solver",
    "current_solver_preferences",
    "default_solver_core",
    "luby",
    "resolve_solver_core",
    "solve_cnf",
    "solver_preferences",
]

#: Every named propagation core, selectable or not in this environment.
SOLVER_CORE_NAMES = ("object", "array", "accel")

#: The cores actually runnable here (`SynthesisConfig.solver_core` /
#: ``--solver-core``): ``accel`` appears only when the native extension
#: imported, so parametrizing over this tuple is automatically
#: skip-safe in environments that never built it.
SOLVER_CORES = tuple(
    name
    for name in SOLVER_CORE_NAMES
    if name != "accel" or accel_available()
)


def default_solver_core() -> str:
    """What the pseudo-core ``"auto"`` resolves to: the fastest core
    available in this environment (``accel`` when built, else ``array``)."""
    return "accel" if accel_available() else "array"


def resolve_solver_core(core: Optional[str]) -> str:
    """Resolve a requested core name (``None``/``"auto"`` included) to a
    concrete runnable core; raise for unknown or unavailable cores."""
    if core is None or core == "auto":
        return default_solver_core()
    if core not in SOLVER_CORE_NAMES:
        raise ValueError(
            f"unknown solver core: {core!r} "
            f"(expected one of {('auto',) + SOLVER_CORE_NAMES})"
        )
    if core not in SOLVER_CORES:
        from .core_accel import BUILD_HINT

        raise AccelUnavailableError(
            f'solver core "{core}" requested but the native extension '
            f"repro.sat._accel is not built; {BUILD_HINT} or select "
            "--solver-core array"
        )
    return core


def accel_status() -> dict:
    """Which propagation backend this process runs on (see module doc).

    The dict is JSON-ready and stable-keyed; it is surfaced by
    ``repro stats``, recorded in :mod:`repro.obs` run manifests, and
    stamped into every benchmark JSON so baselines are attributable to
    the core that produced them.
    """
    path = extension_file()
    built_at = None
    if path:
        try:
            built_at = datetime.fromtimestamp(
                Path(path).stat().st_mtime, timezone.utc
            ).isoformat(timespec="seconds")
        except OSError:  # pragma: no cover - racing a concurrent clean
            pass
    return {
        "available": accel_available(),
        "extension": Path(path).name if path else None,
        "built_at": built_at,
        "default_core": default_solver_core(),
        "compiled_array_core": COMPILED_ARRAY_CORE,
    }

#: Back-compat name: bare ``CdclSolver(cnf)`` is the object core with
#: inprocessing off — byte-for-byte the historical solver.
CdclSolver = ObjectCdclSolver

_CORE_CLASSES = {
    "object": ObjectCdclSolver,
    "array": ArrayCdclSolver,
    "accel": AccelCdclSolver,
}

# Ambient defaults used by create_solver() when a knob is not given
# explicitly.  Module-global (not a contextvar) for the same reason the
# resilience deadline is: solver construction and the scopes that
# configure it live on one thread per process.
_PREFERRED_CORE = "object"
_PREFERRED_INPROCESS = False


def current_solver_preferences() -> tuple[str, bool]:
    """The ambient ``(core, inprocess)`` defaults for :func:`create_solver`."""
    return _PREFERRED_CORE, _PREFERRED_INPROCESS


@contextmanager
def solver_preferences(
    core: Optional[str] = None, inprocess: Optional[bool] = None
) -> Iterator[None]:
    """Scope the defaults :func:`create_solver` resolves unset knobs from.

    ``None`` leaves the corresponding ambient value unchanged.  Scopes
    nest; the previous preferences are restored on exit.
    """
    global _PREFERRED_CORE, _PREFERRED_INPROCESS
    if core is not None:
        # "auto" resolves at scope entry, so every solver constructed
        # under the scope uses one concrete core; an unavailable accel
        # request fails here with the build hint, not deep in a worker.
        core = resolve_solver_core(core)
    previous = (_PREFERRED_CORE, _PREFERRED_INPROCESS)
    if core is not None:
        _PREFERRED_CORE = core
    if inprocess is not None:
        _PREFERRED_INPROCESS = bool(inprocess)
    try:
        yield
    finally:
        _PREFERRED_CORE, _PREFERRED_INPROCESS = previous


def create_solver(
    cnf: Cnf,
    core: Optional[str] = None,
    inprocess: Optional[bool] = None,
) -> CdclCore:
    """Build a solver over ``cnf`` with the requested (or ambient) core
    and inprocessing setting.

    This is the construction point the relational layer and the AllSAT
    enumerator use; benchmarks and tests may also pass the knobs
    explicitly to pin a configuration regardless of scope.
    """
    if core is None:
        core = _PREFERRED_CORE
    else:
        core = resolve_solver_core(core)
    if inprocess is None:
        inprocess = _PREFERRED_INPROCESS
    try:
        solver_class = _CORE_CLASSES[core]
    except KeyError:
        raise ValueError(
            f"unknown solver core: {core!r} (expected one of {SOLVER_CORES})"
        ) from None
    return solver_class(cnf, inprocess=inprocess)


def solve_cnf(cnf: Cnf, assumptions: Sequence[int] = ()) -> SatResult:
    """Convenience helper: build a solver for ``cnf`` and solve once."""
    return create_solver(cnf).solve(assumptions)

"""A CDCL SAT solver in pure Python.

This is the reproduction's stand-in for MiniSat [17] in the paper's
Alloy -> Kodkod -> SAT pipeline.  It implements the standard modern
architecture:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style decision heuristic with exponential decay and phase saving,
* Luby-sequence restarts,
* solving under assumptions (used for incremental queries such as the
  minimality checks in the relational synthesis backend).

The solver is complete: on every input it terminates with SAT (plus a total
model) or UNSAT, which is what makes bounded-exhaustive ELT synthesis
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .cnf import Cnf

_UNASSIGNED = -1


def luby(index: int) -> int:
    """Return the ``index``-th element (1-based) of the Luby sequence
    1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    >>> [luby(i) for i in range(1, 10)]
    [1, 1, 2, 1, 1, 2, 4, 1, 1]
    """
    while True:
        k = 1
        while (1 << k) - 1 < index:
            k += 1
        if index == (1 << k) - 1:
            return 1 << (k - 1)
        # Here 2^(k-1) - 1 < index < 2^k - 1: recurse into the repeated prefix.
        index -= (1 << (k - 1)) - 1


@dataclass
class SolverStats:
    """Counters exposed for benchmarks and tests."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    max_decision_level: int = 0


@dataclass
class SatResult:
    """Outcome of a :meth:`CdclSolver.solve` call."""

    satisfiable: bool
    model: Optional[dict[int, bool]] = None
    stats: SolverStats = field(default_factory=SolverStats)

    def __bool__(self) -> bool:
        return self.satisfiable


class CdclSolver:
    """Conflict-driven clause-learning solver over a :class:`Cnf`.

    The solver copies the clauses out of the given CNF, so the CNF may keep
    growing for other purposes afterwards; use :meth:`add_clause` to feed
    additional clauses (e.g. AllSAT blocking clauses) to the same solver
    instance between ``solve`` calls.
    """

    def __init__(self, cnf: Cnf) -> None:
        self._nvars = cnf.num_vars
        # Literal encoding: positive literal v -> 2v, negative -> 2v+1.
        self._watches: list[list[list[int]]] = [[] for _ in range(2 * self._nvars + 2)]
        self._clauses: list[list[int]] = []
        self._assign: list[int] = [_UNASSIGNED] * (self._nvars + 1)
        self._level: list[int] = [0] * (self._nvars + 1)
        self._reason: list[Optional[list[int]]] = [None] * (self._nvars + 1)
        self._trail: list[int] = []  # literals in assignment order
        self._trail_lim: list[int] = []  # trail indices at each decision level
        self._qhead = 0
        self._activity: list[float] = [0.0] * (self._nvars + 1)
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._saved_phase: list[bool] = [False] * (self._nvars + 1)
        self._ok = True
        self.stats = SolverStats()
        for clause in cnf.clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # Clause database
    # ------------------------------------------------------------------
    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT.

        Must be called at decision level 0 (i.e. between solve calls).
        """
        if not self._ok:
            return False
        lits = sorted(set(literals), key=abs)
        for lit in lits:
            if -lit in lits:
                return True  # tautology
            self._grow_to(abs(lit))
        # Remove literals already false at level 0; succeed early on a true one.
        filtered: list[int] = []
        for lit in lits:
            value = self._value(lit)
            if value is True and self._level[abs(lit)] == 0:
                return True
            if value is False and self._level[abs(lit)] == 0:
                continue
            filtered.append(lit)
        if not filtered:
            self._ok = False
            return False
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        clause = list(filtered)
        self._clauses.append(clause)
        self._watch(clause)
        return True

    def _grow_to(self, var: int) -> None:
        while self._nvars < var:
            self._nvars += 1
            self._assign.append(_UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._saved_phase.append(False)
            self._watches.append([])
            self._watches.append([])
        while len(self._watches) < 2 * self._nvars + 2:
            self._watches.append([])

    def _watch(self, clause: list[int]) -> None:
        self._watches[self._lit_index(-clause[0])].append(clause)
        self._watches[self._lit_index(-clause[1])].append(clause)

    @staticmethod
    def _lit_index(lit: int) -> int:
        return 2 * lit if lit > 0 else -2 * lit + 1

    # ------------------------------------------------------------------
    # Assignment primitives
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> Optional[bool]:
        assigned = self._assign[abs(lit)]
        if assigned == _UNASSIGNED:
            return None
        return bool(assigned) == (lit > 0)

    def _enqueue(self, lit: int, reason: Optional[list[int]]) -> bool:
        value = self._value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[list[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            watch_list = self._watches[self._lit_index(lit)]
            index = 0
            while index < len(watch_list):
                clause = watch_list[index]
                # Normalize: the false literal goes to position 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    index += 1
                    continue
                # Look for a replacement watch.
                moved = False
                for pos in range(2, len(clause)):
                    if self._value(clause[pos]) is not False:
                        clause[1], clause[pos] = clause[pos], clause[1]
                        self._watches[self._lit_index(-clause[1])].append(clause)
                        watch_list[index] = watch_list[-1]
                        watch_list.pop()
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if self._value(first) is False:
                    self._qhead = len(self._trail)
                    return clause
                self._enqueue(first, clause)
                index += 1
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        learned: list[int] = []
        seen = [False] * (self._nvars + 1)
        counter = 0
        pivot: Optional[int] = None  # trail literal whose reason is expanded
        reason: Sequence[int] = conflict
        trail_index = len(self._trail) - 1
        current_level = len(self._trail_lim)
        while True:
            for q in reason:
                if pivot is not None and q == pivot:
                    continue
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            pivot = self._trail[trail_index]
            var = abs(pivot)
            seen[var] = False
            counter -= 1
            trail_index -= 1
            if counter == 0:
                break
            clause_reason = self._reason[var]
            assert clause_reason is not None
            reason = clause_reason
        learned.insert(0, -pivot)
        if len(learned) == 1:
            return learned, 0
        # Backjump level = max level among the non-asserting literals.
        back_level = max(self._level[abs(q)] for q in learned[1:])
        # Put one literal of the backjump level in watch position 1.
        for pos in range(1, len(learned)):
            if self._level[abs(learned[pos])] == back_level:
                learned[1], learned[pos] = learned[pos], learned[1]
                break
        return learned, back_level

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for index in range(1, self._nvars + 1):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100

    def _decay(self) -> None:
        self._var_inc /= self._var_decay

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for index in range(len(self._trail) - 1, limit - 1, -1):
            lit = self._trail[index]
            var = abs(lit)
            self._saved_phase[var] = lit > 0
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _decide(self) -> Optional[int]:
        best_var = 0
        best_activity = -1.0
        for var in range(1, self._nvars + 1):
            if self._assign[var] == _UNASSIGNED and self._activity[var] > best_activity:
                best_activity = self._activity[var]
                best_var = var
        if best_var == 0:
            return None
        return best_var if self._saved_phase[best_var] else -best_var

    # ------------------------------------------------------------------
    # Main search loop
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Search for a model extending ``assumptions``.

        Assumptions are literals treated as decisions; if the formula is
        unsatisfiable only under the assumptions, the result is UNSAT but the
        solver stays usable for further calls.
        """
        if not self._ok:
            return SatResult(False, stats=self.stats)
        for lit in assumptions:
            self._grow_to(abs(lit))
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return SatResult(False, stats=self.stats)

        restart_index = 1
        conflict_budget = 32 * luby(restart_index)
        conflicts_here = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                if len(self._trail_lim) == 0:
                    self._cancel_until(0)
                    return SatResult(False, stats=self.stats)
                if not self._all_assumptions_hold(assumptions):
                    # Conflict depends on assumptions only.
                    self._cancel_until(0)
                    return SatResult(False, stats=self.stats)
                learned, back_level = self._analyze(conflict)
                self._cancel_until(max(back_level, self._assumption_level(assumptions)))
                if len(learned) == 1:
                    self._cancel_until(0)
                    if not self._enqueue(learned[0], None):
                        self._ok = False
                        return SatResult(False, stats=self.stats)
                    if self._propagate() is not None:
                        self._ok = False
                        return SatResult(False, stats=self.stats)
                    if not self._replay_assumptions(assumptions):
                        return SatResult(False, stats=self.stats)
                else:
                    self._clauses.append(learned)
                    self._watch(learned)
                    self.stats.learned_clauses += 1
                    self._enqueue(learned[0], learned)
                self._decay()
                if conflicts_here >= conflict_budget:
                    self.stats.restarts += 1
                    restart_index += 1
                    conflict_budget = 32 * luby(restart_index)
                    conflicts_here = 0
                    self._cancel_until(0)
                    if not self._replay_assumptions(assumptions):
                        return SatResult(False, stats=self.stats)
                continue

            if not self._replay_assumptions(assumptions):
                return SatResult(False, stats=self.stats)
            if self._qhead < len(self._trail):
                continue

            decision = self._decide()
            if decision is None:
                model = {
                    var: bool(self._assign[var]) for var in range(1, self._nvars + 1)
                }
                self._cancel_until(0)
                return SatResult(True, model=model, stats=self.stats)
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, len(self._trail_lim)
            )
            self._enqueue(decision, None)

    # ------------------------------------------------------------------
    # Assumption handling
    # ------------------------------------------------------------------
    def _assumption_level(self, assumptions: Sequence[int]) -> int:
        return 0

    def _all_assumptions_hold(self, assumptions: Sequence[int]) -> bool:
        return all(self._value(lit) is not False for lit in assumptions)

    def _replay_assumptions(self, assumptions: Sequence[int]) -> bool:
        """Ensure every assumption literal is enqueued; returns False on
        conflict with the assumptions."""
        for lit in assumptions:
            value = self._value(lit)
            if value is True:
                continue
            if value is False:
                self._cancel_until(0)
                return False
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)
            conflict = self._propagate()
            if conflict is not None:
                if len(self._trail_lim) == 0:
                    self._ok = False
                self._cancel_until(0)
                return False
        return True


def solve_cnf(cnf: Cnf, assumptions: Sequence[int] = ()) -> SatResult:
    """Convenience helper: build a solver for ``cnf`` and solve once."""
    return CdclSolver(cnf).solve(assumptions)

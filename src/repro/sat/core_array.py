"""Array-based clause storage for the CDCL core (no per-clause objects).

Every clause lives in one flat integer *arena*:

    ... | size | flags | lit0 | lit1 | ... | lit_{size-1} | ...
                        ^
                        cref (clause reference = arena index of lit0)

``flags`` packs the LBD quality tag and the learned bit
(``lbd << 1 | learned``).  Watch lists are flat integer lists of
``blocker, cref`` pairs (``other, cref`` pairs for the dedicated binary
watch lists), and a propagation *reason* is just the forcing clause's
``cref`` (−1 for decisions).  The inner propagation loop therefore
touches only integer lists — no tuples, no clause objects, no attribute
loads — which is what makes this module a worthwhile mypyc target (see
``repro.sat.build_compiled``).

The search heuristics are inherited unchanged from
:class:`repro.sat.core.CdclCore` and the storage mirrors
:mod:`repro.sat.core_object` operation for operation (same watch-list
orders, same database-reduction ranking, same rebuild order after
reduction/inprocessing), so both cores run byte-for-byte the same
search and report identical statistics — the object core is the
differential oracle for this one.

Clause deletion (database reduction, inprocessing) compacts the arena:
surviving clauses are copied to a fresh arena, every ``cref`` — clause
lists, watch lists, trail reasons — is remapped, and the old arena is
dropped.  Locked clauses (reasons of trail literals) are always kept
alive by :meth:`_reduce_db`, so remapping a reason can never dangle.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .core import CdclCore


class ArrayCdclSolver(CdclCore):
    """CDCL solver with flat-arena clause storage (see module docstring)."""

    _NO_REASON = -1

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def _init_storage(self, size: int) -> None:
        # Arena slot 0/1 are padding so that no real cref is ever <= 1:
        # cref 0 would collide with header reads at cref-2.
        self._arena: list[int] = [0, 0]
        # _watches[i]: flat (blocker, cref) pairs whose watched literal is
        # the negation of literal i; _bin_watches[i]: (other, cref) int
        # tuples for binary clauses (-lit(i), other) — tuples of two ints,
        # not objects, so the binary loop unpacks them at C speed.
        self._watches: list[list[int]] = [[] for _ in range(size)]
        self._bin_watches: list[list[tuple[int, int]]] = [[] for _ in range(size)]
        self._long_crefs: list[int] = []
        self._learned_crefs: list[int] = []
        self._bin_crefs: list[int] = []

    def _grow_storage(self) -> None:
        self._watches.append([])
        self._watches.append([])
        self._bin_watches.append([])
        self._bin_watches.append([])

    def _alloc(self, lits: list[int], learned: bool, lbd: int) -> int:
        arena = self._arena
        arena.append(len(lits))
        arena.append((lbd << 1) | (1 if learned else 0))
        cref = len(arena)
        arena.extend(lits)
        return cref

    def _attach_clause(self, lits: list[int], learned: bool = False, lbd: int = 0):
        cref = self._alloc(lits, learned, lbd)
        if len(lits) == 2:
            self._bin_crefs.append(cref)
            self._watch_binary(cref)
        else:
            if learned:
                self._learned_crefs.append(cref)
            else:
                self._long_crefs.append(cref)
            self._watch(cref)
        return cref

    def _watch(self, cref: int) -> None:
        arena = self._arena
        first = arena[cref]
        second = arena[cref + 1]
        watch = self._watches[self._lit_index(-first)]
        watch.append(second)
        watch.append(cref)
        watch = self._watches[self._lit_index(-second)]
        watch.append(first)
        watch.append(cref)

    def _watch_binary(self, cref: int) -> None:
        arena = self._arena
        a = arena[cref]
        b = arena[cref + 1]
        self._bin_watches[self._lit_index(-a)].append((b, cref))
        self._bin_watches[self._lit_index(-b)].append((a, cref))

    def _reason_lits(self, var: int) -> Optional[Sequence[int]]:
        cref = self._reason[var]
        if cref < 0:
            return None
        arena = self._arena
        return arena[cref : cref + arena[cref - 2]]

    @property
    def learned_count(self) -> int:
        return len(self._learned_crefs)

    # ------------------------------------------------------------------
    # Learned-clause database reduction + arena compaction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        """Same policy as the object core (rank by LBD/length/age, keep
        the best half plus glue and *locked* clauses), then compact the
        arena so deleted clauses stop occupying memory."""
        arena = self._arena
        learned = self._learned_crefs
        reasons = self._reason
        locked: set[int] = set()
        for lit in self._trail:
            cref = reasons[lit if lit > 0 else -lit]
            if cref >= 0:
                locked.add(cref)
        ranked = sorted(
            range(len(learned)),
            key=lambda i: (arena[learned[i] - 1] >> 1, arena[learned[i] - 2], i),
        )
        keep_indices = set(ranked[: len(learned) // 2])
        kept: list[int] = []
        deleted = 0
        for i, cref in enumerate(learned):
            if i in keep_indices or (arena[cref - 1] >> 1) <= 2 or cref in locked:
                kept.append(cref)
            else:
                deleted += 1
        self._learned_crefs = kept
        self._compact_and_rebuild()
        self.stats.db_reductions += 1
        self.stats.deleted_clauses += deleted
        self._max_learned = self._max_learned + self._max_learned // 2

    def _compact_and_rebuild(self) -> None:
        """Copy surviving clauses into a fresh arena, remap every cref
        (clause lists, trail reasons), and rebuild all watch lists in the
        same order the object core's ``_rebuild_watches`` uses."""
        old = self._arena
        new: list[int] = [0, 0]
        remap: dict[int, int] = {}
        for crefs in (self._bin_crefs, self._long_crefs, self._learned_crefs):
            for cref in crefs:
                size = old[cref - 2]
                new.append(size)
                new.append(old[cref - 1])
                remap[cref] = len(new)
                new.extend(old[cref : cref + size])
        self._arena = new
        self._bin_crefs = [remap[c] for c in self._bin_crefs]
        self._long_crefs = [remap[c] for c in self._long_crefs]
        self._learned_crefs = [remap[c] for c in self._learned_crefs]
        reasons = self._reason
        for var in range(1, self._nvars + 1):
            cref = reasons[var]
            if cref >= 0:
                # Locked clauses are always kept, so this never dangles.
                reasons[var] = remap[cref]
        for watch_list in self._watches:
            del watch_list[:]
        for cref in self._long_crefs:
            self._watch(cref)
        for cref in self._learned_crefs:
            self._watch(cref)
        # Binary watch lists are rebuilt in chronological clause order —
        # the same per-literal order the object core reaches by never
        # rebuilding them at all.
        for watch_list in self._bin_watches:
            del watch_list[:]
        for cref in self._bin_crefs:
            self._watch_binary(cref)

    # ------------------------------------------------------------------
    # Inprocessing storage API (see repro.sat.inprocess)
    # ------------------------------------------------------------------
    def _inprocess_learned(self) -> list:
        return list(self._learned_crefs)

    def _inprocess_lits(self, ref) -> list[int]:
        arena = self._arena
        return arena[ref : ref + arena[ref - 2]]

    def _inprocess_locked(self) -> set:
        reasons = self._reason
        learned = set(self._learned_crefs)
        locked: set[int] = set()
        for lit in self._trail:
            cref = reasons[lit if lit > 0 else -lit]
            if cref >= 0 and cref in learned:
                locked.add(cref)
        return locked

    def _inprocess_apply(self, deletions: set, replacements: dict) -> None:
        arena = self._arena
        kept: list[int] = []
        for cref in self._learned_crefs:
            if cref in deletions:
                continue
            new_lits = replacements.get(cref)
            if new_lits is None:
                kept.append(cref)
            elif len(new_lits) == 2:
                # Shrunk to binary: migrate to the binary watch lists,
                # exactly like the object core.
                self._attach_clause(list(new_lits))
            else:
                lbd = arena[cref - 1] >> 1
                if lbd > len(new_lits) - 1:
                    lbd = len(new_lits) - 1
                kept.append(self._alloc(list(new_lits), True, lbd))
        self._learned_crefs = kept
        self._compact_and_rebuild()

    # ------------------------------------------------------------------
    # Unit propagation (the hot loop)
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[list[int]]:
        """Unit propagation; returns a conflicting clause's literals or None.

        Mirrors the object core's loop exactly — same blocking-literal
        short-cuts, same watch-entry orders — but every structure it
        touches is a flat integer list."""
        values = self._values
        trail = self._trail
        watches = self._watches
        bin_watches = self._bin_watches
        arena = self._arena
        level_now = len(self._trail_lim)
        levels = self._level
        reasons = self._reason
        qhead = self._qhead
        start = qhead
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            lit_idx = (lit << 1) if lit > 0 else ((-lit) << 1) | 1

            for other, bin_cref in bin_watches[lit_idx]:
                other_idx = (other << 1) if other > 0 else ((-other) << 1) | 1
                value = values[other_idx]
                if value < 0:
                    self._qhead = len(trail)
                    self.stats.propagations += qhead - start
                    return arena[bin_cref : bin_cref + 2]
                if value == 0:
                    values[other_idx] = 1
                    values[other_idx ^ 1] = -1
                    var = other if other > 0 else -other
                    levels[var] = level_now
                    reasons[var] = bin_cref
                    trail.append(other)

            watch_list = watches[lit_idx]
            neg_lit = -lit
            i = 0
            j = 0
            end = len(watch_list)
            while i < end:
                # Watch entries are flat (blocker, cref) pairs; the
                # blocker is *some* literal of the clause whose truth
                # proves the clause satisfied without touching the arena.
                # Compaction writes are skipped while i == j (nothing has
                # moved out of this list yet) — the common case.
                blocker = watch_list[i]
                if values[(blocker << 1) if blocker > 0 else ((-blocker) << 1) | 1] > 0:
                    if i != j:
                        watch_list[j] = blocker
                        watch_list[j + 1] = watch_list[i + 1]
                    i += 2
                    j += 2
                    continue
                cref = watch_list[i + 1]
                i += 2
                # Normalize: the false literal goes to position 1.
                if arena[cref] == neg_lit:
                    arena[cref] = arena[cref + 1]
                    arena[cref + 1] = neg_lit
                first = arena[cref]
                first_idx = (first << 1) if first > 0 else ((-first) << 1) | 1
                if values[first_idx] > 0:
                    if i != j + 2:
                        watch_list[j] = blocker
                        watch_list[j + 1] = cref
                    j += 2
                    continue
                # Look for a replacement watch.
                moved = False
                for pos in range(cref + 2, cref + arena[cref - 2]):
                    cand = arena[pos]
                    cand_idx = (cand << 1) if cand > 0 else ((-cand) << 1) | 1
                    if values[cand_idx] >= 0:
                        arena[cref + 1] = cand
                        arena[pos] = neg_lit
                        moved_watch = watches[cand_idx ^ 1]
                        moved_watch.append(blocker)
                        moved_watch.append(cref)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if i != j + 2:
                    watch_list[j] = blocker
                    watch_list[j + 1] = cref
                j += 2
                if values[first_idx] < 0:
                    if i != j:
                        while i < end:
                            watch_list[j] = watch_list[i]
                            watch_list[j + 1] = watch_list[i + 1]
                            i += 2
                            j += 2
                        del watch_list[j:]
                    self._qhead = len(trail)
                    self.stats.propagations += qhead - start
                    return arena[cref : cref + arena[cref - 2]]
                values[first_idx] = 1
                values[first_idx ^ 1] = -1
                var = first if first > 0 else -first
                levels[var] = level_now
                reasons[var] = cref
                trail.append(first)
            if j != end:
                del watch_list[j:]
        self._qhead = qhead
        self.stats.propagations += qhead - start
        return None

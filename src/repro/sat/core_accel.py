"""Native-accelerated clause storage: the arena core over C inner loops.

:class:`AccelCdclSolver` is the third interchangeable storage backend
behind :class:`repro.sat.core.CdclCore` (``solver_core=accel``).  It
reuses the flat-int clause arena of :class:`ArrayCdclSolver` unchanged —
same layout, same watch-entry orders, same compaction — but keeps every
hot structure in ``array('i')`` objects and dispatches the inner loops
(`_propagate`, `_enqueue`, the arena walk of `_compact_and_rebuild`) to
the hand-written CPython extension :mod:`repro.sat._accel`.

The extension operates on the solver's arrays **in place** through the
buffer protocol: Python and C views are the same memory, so there is no
per-call marshalling and the pure-Python driver (decisions, conflict
analysis, restarts, inprocessing) reads C-written state directly.  The
memory-layout contract is documented in ``docs/SAT_SUBSTRATE.md``
("Native acceleration").

Lockstep contract: searches, model orders, and every
:class:`~repro.sat.core.SolverStats` counter are byte-identical to the
``object`` and ``array`` cores — the object core remains the always-on
differential oracle, and the golden-digest suite plus the Hypothesis
differential fuzz pin the equivalence.

The extension is optional.  Build it on demand with
``python -m repro.sat.build_accel`` (system C compiler, no new Python
dependencies); when it is absent this module still imports cleanly,
``accel_available()`` returns False, and constructing the solver raises
:class:`repro.errors.AccelUnavailableError` with the build hint — the
pure-Python cores remain fully functional (same contract as
:mod:`repro.sat.build_compiled`).
"""

from __future__ import annotations

from array import array
from typing import Optional

from ..errors import AccelUnavailableError
from .core_array import ArrayCdclSolver

try:  # pragma: no cover - exercised via accel_available() either way
    from . import _accel as _accel_module
except ImportError:  # pragma: no cover
    _accel_module = None

#: Hint printed whenever the accel core is requested but not built.
BUILD_HINT = "build it with `python -m repro.sat.build_accel`"


def accel_available() -> bool:
    """True when the compiled :mod:`repro.sat._accel` extension imported."""
    return _accel_module is not None


def extension_file() -> Optional[str]:
    """Filesystem path of the loaded extension, or None when unbuilt."""
    if _accel_module is None:
        return None
    return getattr(_accel_module, "__file__", None)


class AccelCdclSolver(ArrayCdclSolver):
    """Arena-storage CDCL solver with C-accelerated inner loops."""

    def __init__(self, *args, **kwargs) -> None:
        if _accel_module is None:
            raise AccelUnavailableError(
                'solver core "accel" requested but the native extension '
                f"repro.sat._accel is not built; {BUILD_HINT} or select "
                "--solver-core array"
            )
        super().__init__(*args, **kwargs)

    # ------------------------------------------------------------------
    # Storage: same flat arena, held in typed int arrays so the C side
    # shares the memory through the buffer protocol (zero copies).
    # ------------------------------------------------------------------
    def _init_storage(self, size: int) -> None:
        super()._init_storage(size)
        self._arena = array("i", (0, 0))
        # Driver-side assignment state converts to arrays too: _enqueue
        # and _propagate write values/levels/reasons from C.
        self._values = array("i", self._values)
        self._level = array("i", self._level)
        self._reason = array("i", self._reason)
        # Watch lists are flat int pairs like the array core's, but each
        # per-literal list is an array('i'); the binary lists drop the
        # tuples for flat (other, cref) pairs so C scans raw ints.
        self._watches = [array("i") for _ in range(size)]
        self._bin_watches = [array("i") for _ in range(size)]

    def _grow_storage(self) -> None:
        self._watches.append(array("i"))
        self._watches.append(array("i"))
        self._bin_watches.append(array("i"))
        self._bin_watches.append(array("i"))

    def _watch_binary(self, cref: int) -> None:
        arena = self._arena
        a = arena[cref]
        b = arena[cref + 1]
        watch = self._bin_watches[self._lit_index(-a)]
        watch.append(b)
        watch.append(cref)
        watch = self._bin_watches[self._lit_index(-b)]
        watch.append(a)
        watch.append(cref)

    # ------------------------------------------------------------------
    # Hot loops: dispatch to the C extension (in-place, lockstep).
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[list[int]]:
        return _accel_module.propagate(self)

    def _enqueue(self, lit: int, reason) -> bool:
        return _accel_module.enqueue(self, lit, reason)

    def _compact_and_rebuild(self) -> None:
        # C walks the arena (copy survivors, remap cref lists and trail
        # reasons); the watch-list rebuild stays in Python — it is the
        # cold path and must mirror the array core's rebuild order.
        _accel_module.compact(self)
        for watch_list in self._watches:
            del watch_list[:]
        for cref in self._long_crefs:
            self._watch(cref)
        for cref in self._learned_crefs:
            self._watch(cref)
        for watch_list in self._bin_watches:
            del watch_list[:]
        for cref in self._bin_crefs:
            self._watch_binary(cref)

"""Model enumeration (AllSAT) on top of the CDCL solver.

ELT synthesis needs *all* models of a bounded encoding, not just one.  The
standard blocking-clause loop is used: after each model, a clause
forbidding that model is added and the solver is re-run.  Because learned
clauses persist across calls (and the solver's clause-database reduction
keeps them bounded), successive models get cheaper to find.

Two blocking strategies are used:

* **no projection** — the clause negates only the *decision literals* of
  the model.  Every propagated literal is forced by the decisions, so the
  model is the unique total model extending them and the short clause
  blocks exactly that model;
* **projection** — the clause negates the model's values on the projected
  variables, blocking the whole equivalence class in one step.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from .cnf import Cnf
from .solver import SolverStats, create_solver


def iter_models(
    cnf: Cnf,
    projection: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
    stats: Optional[SolverStats] = None,
) -> Iterator[dict[int, bool]]:
    """Yield models of ``cnf`` one at a time.

    ``projection`` restricts enumeration to distinct assignments of the
    given variables (other variables take arbitrary consistent values and
    models agreeing on the projection are reported once).  ``limit``
    bounds the number of models yielded.

    Contract: with a projection, each yielded dict maps *exactly the
    projected variables* to their values (computed once per model — the
    full assignment is not copied); without one, it maps every variable of
    the formula.  Either way the dict is freshly allocated and owned by
    the caller.

    ``stats``, when given, becomes the enumerating solver's live
    counter object (see :class:`~repro.sat.SolverStats`), letting callers
    and benchmarks observe decisions/propagations/conflicts.

    >>> cnf = Cnf()
    >>> a, b = cnf.new_var(), cnf.new_var()
    >>> cnf.add_clause([a, b])
    >>> len(list(iter_models(cnf)))
    3
    """
    if limit is not None and limit <= 0:
        return
    solver = create_solver(cnf)
    if stats is not None:
        # Fold in the work already done while loading the CNF (level-0
        # propagation), then make the caller's object the live counter.
        stats.merge(solver.stats)
        solver.stats = stats
    count = 0
    if projection is None:
        # Models come out of the incremental search one per yield; each
        # dict is freshly allocated, so it is handed over without a copy.
        for model in solver.iter_solutions():
            yield model
            count += 1
            if limit is not None and count >= limit:
                return
    else:
        variables = list(projection)
        for var in variables:
            solver._grow_to(var)

        def blocking(model: dict[int, bool]) -> list[int]:
            return [
                (-var if model.get(var, False) else var) for var in variables
            ]

        for model in solver.iter_solutions(blocking_literals=blocking):
            yield {var: model.get(var, False) for var in variables}
            count += 1
            if limit is not None and count >= limit:
                return


def count_models(cnf: Cnf, projection: Optional[Sequence[int]] = None) -> int:
    """Count models of ``cnf`` (projected if requested)."""
    return sum(1 for _ in iter_models(cnf, projection=projection))

"""Model enumeration (AllSAT) on top of the CDCL solver.

ELT synthesis needs *all* models of a bounded encoding, not just one.  The
standard blocking-clause loop is used: after each model, a clause forbidding
that model (projected onto the variables of interest) is added and the
solver is re-run.  Because learned clauses persist across calls, successive
models get cheaper to find.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from .cnf import Cnf
from .solver import CdclSolver


def iter_models(
    cnf: Cnf,
    projection: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
) -> Iterator[dict[int, bool]]:
    """Yield models of ``cnf`` one at a time.

    ``projection`` restricts enumeration to distinct assignments of the given
    variables (other variables take arbitrary consistent values and models
    agreeing on the projection are reported once).  ``limit`` bounds the
    number of models yielded.

    >>> cnf = Cnf()
    >>> a, b = cnf.new_var(), cnf.new_var()
    >>> cnf.add_clause([a, b])
    >>> len(list(iter_models(cnf)))
    3
    """
    solver = CdclSolver(cnf)
    variables = list(projection) if projection is not None else list(
        range(1, cnf.num_vars + 1)
    )
    count = 0
    while limit is None or count < limit:
        result = solver.solve()
        if not result.satisfiable:
            return
        model = result.model
        assert model is not None
        yield dict(model)
        count += 1
        blocking = [(-var if model.get(var, False) else var) for var in variables]
        if not blocking:
            return  # projection empty: a single model class exists
        if not solver.add_clause(blocking):
            return


def count_models(cnf: Cnf, projection: Optional[Sequence[int]] = None) -> int:
    """Count models of ``cnf`` (projected if requested)."""
    return sum(1 for _ in iter_models(cnf, projection=projection))

"""CNF formula container.

Literals follow the DIMACS convention: a variable is a positive integer
``v`` and its negation is ``-v``.  :class:`Cnf` owns variable allocation so
encoders (e.g. the relational-to-SAT translator) can create fresh auxiliary
variables without coordinating a global counter.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..errors import CnfError


class Cnf:
    """A conjunction of clauses over integer literals.

    >>> cnf = Cnf()
    >>> a, b = cnf.new_var(), cnf.new_var()
    >>> cnf.add_clause([a, b])
    >>> cnf.add_clause([-a])
    >>> cnf.num_vars, cnf.num_clauses
    (2, 2)
    """

    def __init__(self, num_vars: int = 0) -> None:
        if num_vars < 0:
            raise CnfError(f"negative variable count: {num_vars}")
        self._num_vars = num_vars
        self._clauses: list[tuple[int, ...]] = []

    # ------------------------------------------------------------------
    # Variable allocation
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Highest allocated variable index (variables are 1..num_vars)."""
        return self._num_vars

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self._num_vars += 1
        return self._num_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables and return them in order."""
        if count < 0:
            raise CnfError(f"negative allocation count: {count}")
        return [self.new_var() for _ in range(count)]

    def ensure_var(self, var: int) -> None:
        """Grow the variable range so that ``var`` is a valid variable."""
        if var <= 0:
            raise CnfError(f"variables must be positive, got {var}")
        self._num_vars = max(self._num_vars, var)

    # ------------------------------------------------------------------
    # Clauses
    # ------------------------------------------------------------------
    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    @property
    def clauses(self) -> Sequence[tuple[int, ...]]:
        return self._clauses

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause (a disjunction of literals).

        Duplicate literals are collapsed; a clause containing both ``v`` and
        ``-v`` is a tautology and is dropped.  An empty clause is allowed and
        makes the formula trivially unsatisfiable.
        """
        seen: set[int] = set()
        out: list[int] = []
        for lit in literals:
            if not isinstance(lit, int) or lit == 0:
                raise CnfError(f"invalid literal: {lit!r}")
            self.ensure_var(abs(lit))
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        self._clauses.append(tuple(out))

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def add_clause_trusted(self, literals: Sequence[int]) -> None:
        """Append a clause without validation, deduplication or tautology
        checks.

        For encoder hot paths (the Tseitin transformation emits millions
        of clauses that are duplicate- and tautology-free by construction).
        The caller vouches that every literal is a nonzero int over
        already-allocated variables; violating that corrupts the formula.
        """
        self._clauses.append(tuple(literals))

    def extend(self, other: "Cnf") -> None:
        """Append all clauses of ``other`` (variable spaces must be shared)."""
        self._num_vars = max(self._num_vars, other.num_vars)
        self._clauses.extend(other.clauses)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cnf(vars={self._num_vars}, clauses={len(self._clauses)})"

    # ------------------------------------------------------------------
    # Evaluation (used by tests and the AllSAT driver)
    # ------------------------------------------------------------------
    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Return True iff ``assignment`` (a total map var -> bool) satisfies
        every clause."""
        for clause in self._clauses:
            for lit in clause:
                value = assignment.get(abs(lit))
                if value is None:
                    raise CnfError(f"assignment missing variable {abs(lit)}")
                if value == (lit > 0):
                    break
            else:
                return False
        return True

/* _accel.c — native inner loops for the flat-arena CDCL core.
 *
 * This module accelerates `repro.sat.core_accel.AccelCdclSolver`, whose
 * storage is the same flat integer arena as the pure-Python
 * `ArrayCdclSolver` but held in `array('i')` objects.  All functions
 * here operate on the solver's storage *in place* through the buffer
 * protocol: Python and C read and write the same memory, there is no
 * per-call marshalling, and any state a function leaves behind is
 * immediately visible to the pure-Python driver code (and vice versa).
 *
 * The contract is strict lockstep with the pure-Python cores:
 * `propagate` is a line-by-line translation of
 * `ArrayCdclSolver._propagate` (same blocking-literal shortcuts, same
 * watch-entry orders, same compaction-write skipping, same statistics
 * accounting), so searches, model orders, and every SolverStats counter
 * stay byte-identical to the object-core oracle.
 *
 * Buffer-safety rules (array('i') refuses to resize while a buffer is
 * exported, and appends may reallocate):
 *   - values/level/reason/arena buffers are held for a whole call; no
 *     code path appends to those arrays while C runs.
 *   - a watch list's buffer is released before `del wl[j:]` truncation.
 *   - a moved watch is appended to a *different* list than the one
 *     being scanned (cand != -lit because cand is non-false while lit
 *     is true), so the held scan buffer is never invalidated.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <string.h>

static PyObject *s_values, *s_level, *s_reason, *s_arena, *s_trail,
    *s_trail_lim, *s_watches, *s_bin_watches, *s_qhead, *s_stats,
    *s_propagations, *s_bin_crefs, *s_long_crefs, *s_learned_crefs,
    *s_nvars, *s_append;

#define LIT_INDEX(lit) \
    ((lit) > 0 ? (Py_ssize_t)((lit) << 1) : (Py_ssize_t)(((-(lit)) << 1) | 1))

/* Acquire a C-int buffer over an array('i'); rejects anything whose
 * item layout does not match the C `int` this module was compiled for. */
static int
acquire_int_buffer(PyObject *obj, Py_buffer *view, int writable)
{
    int flags = PyBUF_FORMAT | (writable ? PyBUF_WRITABLE : PyBUF_SIMPLE);
    if (PyObject_GetBuffer(obj, view, flags) < 0)
        return -1;
    if (view->itemsize != (Py_ssize_t)sizeof(int) || view->format == NULL ||
        view->format[0] != 'i' || view->format[1] != '\0') {
        PyBuffer_Release(view);
        PyErr_SetString(PyExc_TypeError,
                        "repro.sat._accel requires array('i') storage with "
                        "C-int items");
        return -1;
    }
    return 0;
}

static int
append_int(PyObject *arr, long value)
{
    PyObject *obj = PyLong_FromLong(value);
    if (obj == NULL)
        return -1;
    PyObject *result = PyObject_CallMethodObjArgs(arr, s_append, obj, NULL);
    Py_DECREF(obj);
    if (result == NULL)
        return -1;
    Py_DECREF(result);
    return 0;
}

static int
trail_append(PyObject *trail, long lit)
{
    PyObject *obj = PyLong_FromLong(lit);
    if (obj == NULL)
        return -1;
    int status = PyList_Append(trail, obj);
    Py_DECREF(obj);
    return status;
}

static int
set_qhead(PyObject *solver, Py_ssize_t qhead)
{
    PyObject *obj = PyLong_FromSsize_t(qhead);
    if (obj == NULL)
        return -1;
    int status = PyObject_SetAttr(solver, s_qhead, obj);
    Py_DECREF(obj);
    return status;
}

static int
bump_propagations(PyObject *stats, Py_ssize_t delta)
{
    if (delta == 0)
        return 0;
    PyObject *current = PyObject_GetAttr(stats, s_propagations);
    if (current == NULL)
        return -1;
    PyObject *add = PyLong_FromSsize_t(delta);
    if (add == NULL) {
        Py_DECREF(current);
        return -1;
    }
    PyObject *total = PyNumber_Add(current, add);
    Py_DECREF(current);
    Py_DECREF(add);
    if (total == NULL)
        return -1;
    int status = PyObject_SetAttr(stats, s_propagations, total);
    Py_DECREF(total);
    return status;
}

/* A fresh list of `size` clause literals starting at arena[cref]. */
static PyObject *
conflict_list(const int *arena, Py_ssize_t cref, Py_ssize_t size)
{
    PyObject *out = PyList_New(size);
    if (out == NULL)
        return NULL;
    for (Py_ssize_t k = 0; k < size; k++) {
        PyObject *lit = PyLong_FromLong(arena[cref + k]);
        if (lit == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, k, lit);
    }
    return out;
}

/* propagate(solver) -> conflict literal list | None.
 * Exact translation of ArrayCdclSolver._propagate. */
static PyObject *
accel_propagate(PyObject *module, PyObject *solver)
{
    PyObject *values_o = NULL, *level_o = NULL, *reason_o = NULL,
             *arena_o = NULL, *trail = NULL, *trail_lim = NULL,
             *watches = NULL, *bin_watches = NULL, *qhead_o = NULL,
             *stats = NULL, *result = NULL;
    Py_buffer values_b, level_b, reason_b, arena_b;
    int have_values = 0, have_level = 0, have_reason = 0, have_arena = 0;
    int failed = 1;
    Py_ssize_t qhead = 0, start = 0, qhead_final = 0;

    values_o = PyObject_GetAttr(solver, s_values);
    level_o = values_o ? PyObject_GetAttr(solver, s_level) : NULL;
    reason_o = level_o ? PyObject_GetAttr(solver, s_reason) : NULL;
    arena_o = reason_o ? PyObject_GetAttr(solver, s_arena) : NULL;
    trail = arena_o ? PyObject_GetAttr(solver, s_trail) : NULL;
    trail_lim = trail ? PyObject_GetAttr(solver, s_trail_lim) : NULL;
    watches = trail_lim ? PyObject_GetAttr(solver, s_watches) : NULL;
    bin_watches = watches ? PyObject_GetAttr(solver, s_bin_watches) : NULL;
    qhead_o = bin_watches ? PyObject_GetAttr(solver, s_qhead) : NULL;
    stats = qhead_o ? PyObject_GetAttr(solver, s_stats) : NULL;
    if (stats == NULL)
        goto cleanup;

    if (!PyList_Check(trail) || !PyList_Check(trail_lim) ||
        !PyList_Check(watches) || !PyList_Check(bin_watches)) {
        PyErr_SetString(PyExc_TypeError,
                        "_accel.propagate: trail/watch containers must be "
                        "lists");
        goto cleanup;
    }
    qhead = PyLong_AsSsize_t(qhead_o);
    if (qhead == -1 && PyErr_Occurred())
        goto cleanup;
    start = qhead;

    if (acquire_int_buffer(values_o, &values_b, 1) < 0)
        goto cleanup;
    have_values = 1;
    if (acquire_int_buffer(level_o, &level_b, 1) < 0)
        goto cleanup;
    have_level = 1;
    if (acquire_int_buffer(reason_o, &reason_b, 1) < 0)
        goto cleanup;
    have_reason = 1;
    if (acquire_int_buffer(arena_o, &arena_b, 1) < 0)
        goto cleanup;
    have_arena = 1;

    {
        int *values = (int *)values_b.buf;
        int *levels = (int *)level_b.buf;
        int *reasons = (int *)reason_b.buf;
        int *arena = (int *)arena_b.buf;
        int level_now = (int)PyList_GET_SIZE(trail_lim);
        Py_ssize_t nlists = PyList_GET_SIZE(watches);

        while (qhead < PyList_GET_SIZE(trail)) {
            long lit = PyLong_AsLong(PyList_GET_ITEM(trail, qhead));
            if (lit == -1 && PyErr_Occurred())
                goto cleanup;
            qhead++;
            Py_ssize_t lit_idx = LIT_INDEX(lit);
            if (lit_idx >= nlists ||
                lit_idx >= PyList_GET_SIZE(bin_watches)) {
                PyErr_SetString(PyExc_SystemError,
                                "_accel.propagate: literal outside watch "
                                "table");
                goto cleanup;
            }

            /* Binary clauses first, through the dedicated watch lists. */
            {
                PyObject *bw_o = PyList_GET_ITEM(bin_watches, lit_idx);
                Py_buffer bw_b;
                if (acquire_int_buffer(bw_o, &bw_b, 0) < 0)
                    goto cleanup;
                const int *bw = (const int *)bw_b.buf;
                Py_ssize_t bn = bw_b.len / (Py_ssize_t)sizeof(int);
                for (Py_ssize_t k = 0; k + 1 < bn; k += 2) {
                    int other = bw[k];
                    int bin_cref = bw[k + 1];
                    Py_ssize_t other_idx = LIT_INDEX(other);
                    int value = values[other_idx];
                    if (value < 0) {
                        PyBuffer_Release(&bw_b);
                        result = conflict_list(arena, bin_cref, 2);
                        if (result == NULL)
                            goto cleanup;
                        qhead_final = PyList_GET_SIZE(trail);
                        goto conflict_exit;
                    }
                    if (value == 0) {
                        values[other_idx] = 1;
                        values[other_idx ^ 1] = -1;
                        int var = other > 0 ? other : -other;
                        levels[var] = level_now;
                        reasons[var] = bin_cref;
                        if (trail_append(trail, other) < 0) {
                            PyBuffer_Release(&bw_b);
                            goto cleanup;
                        }
                    }
                }
                PyBuffer_Release(&bw_b);
            }

            /* Long clauses through the (blocker, cref) watch pairs. */
            {
                PyObject *wl_o = PyList_GET_ITEM(watches, lit_idx);
                Py_buffer wl_b;
                if (acquire_int_buffer(wl_o, &wl_b, 1) < 0)
                    goto cleanup;
                int *wl = (int *)wl_b.buf;
                Py_ssize_t end = wl_b.len / (Py_ssize_t)sizeof(int);
                int neg_lit = (int)-lit;
                Py_ssize_t i = 0, j = 0;

                while (i < end) {
                    int blocker = wl[i];
                    if (values[LIT_INDEX(blocker)] > 0) {
                        if (i != j) {
                            wl[j] = blocker;
                            wl[j + 1] = wl[i + 1];
                        }
                        i += 2;
                        j += 2;
                        continue;
                    }
                    int cref = wl[i + 1];
                    i += 2;
                    /* Normalize: the false literal goes to position 1. */
                    if (arena[cref] == neg_lit) {
                        arena[cref] = arena[cref + 1];
                        arena[cref + 1] = neg_lit;
                    }
                    int first = arena[cref];
                    Py_ssize_t first_idx = LIT_INDEX(first);
                    if (values[first_idx] > 0) {
                        if (i != j + 2) {
                            wl[j] = blocker;
                            wl[j + 1] = cref;
                        }
                        j += 2;
                        continue;
                    }
                    /* Look for a replacement watch. */
                    int moved = 0;
                    Py_ssize_t limit = (Py_ssize_t)cref + arena[cref - 2];
                    for (Py_ssize_t pos = cref + 2; pos < limit; pos++) {
                        int cand = arena[pos];
                        Py_ssize_t cand_idx = LIT_INDEX(cand);
                        if (values[cand_idx] >= 0) {
                            arena[cref + 1] = cand;
                            arena[pos] = neg_lit;
                            /* cand != -lit, so this is never wl_o and the
                             * buffer held on wl_o stays valid. */
                            PyObject *moved_o =
                                PyList_GET_ITEM(watches, cand_idx ^ 1);
                            if (append_int(moved_o, blocker) < 0 ||
                                append_int(moved_o, cref) < 0) {
                                PyBuffer_Release(&wl_b);
                                goto cleanup;
                            }
                            moved = 1;
                            break;
                        }
                    }
                    if (moved)
                        continue;
                    /* Clause is unit or conflicting. */
                    if (i != j + 2) {
                        wl[j] = blocker;
                        wl[j + 1] = cref;
                    }
                    j += 2;
                    if (values[first_idx] < 0) {
                        int need_trunc = 0;
                        if (i != j) {
                            while (i < end) {
                                wl[j] = wl[i];
                                wl[j + 1] = wl[i + 1];
                                i += 2;
                                j += 2;
                            }
                            need_trunc = 1;
                        }
                        Py_ssize_t csize = arena[cref - 2];
                        PyBuffer_Release(&wl_b);
                        if (need_trunc &&
                            PySequence_DelSlice(wl_o, j, end) < 0)
                            goto cleanup;
                        result = conflict_list(arena, cref, csize);
                        if (result == NULL)
                            goto cleanup;
                        qhead_final = PyList_GET_SIZE(trail);
                        goto conflict_exit;
                    }
                    values[first_idx] = 1;
                    values[first_idx ^ 1] = -1;
                    int var = first > 0 ? first : -first;
                    levels[var] = level_now;
                    reasons[var] = cref;
                    if (trail_append(trail, first) < 0) {
                        PyBuffer_Release(&wl_b);
                        goto cleanup;
                    }
                }
                PyBuffer_Release(&wl_b);
                if (j != end && PySequence_DelSlice(wl_o, j, end) < 0)
                    goto cleanup;
            }
        }
    }

    result = Py_None;
    Py_INCREF(result);
    qhead_final = qhead;

conflict_exit:
    /* On conflict, _qhead jumps to the end of the trail while the
     * propagation counter advances only by the literals scanned —
     * exactly the pure-Python accounting. */
    if (set_qhead(solver, qhead_final) < 0 ||
        bump_propagations(stats, qhead - start) < 0) {
        Py_CLEAR(result);
        goto cleanup;
    }
    failed = 0;

cleanup:
    if (have_arena)
        PyBuffer_Release(&arena_b);
    if (have_reason)
        PyBuffer_Release(&reason_b);
    if (have_level)
        PyBuffer_Release(&level_b);
    if (have_values)
        PyBuffer_Release(&values_b);
    Py_XDECREF(stats);
    Py_XDECREF(qhead_o);
    Py_XDECREF(bin_watches);
    Py_XDECREF(watches);
    Py_XDECREF(trail_lim);
    Py_XDECREF(trail);
    Py_XDECREF(arena_o);
    Py_XDECREF(reason_o);
    Py_XDECREF(level_o);
    Py_XDECREF(values_o);
    if (failed) {
        Py_XDECREF(result);
        return NULL;
    }
    return result;
}

/* enqueue(solver, lit, reason) -> bool.
 * Exact translation of CdclCore._enqueue for int reason tokens. */
static PyObject *
accel_enqueue(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "_accel.enqueue expects (solver, lit, reason)");
        return NULL;
    }
    PyObject *solver = args[0];
    long lit = PyLong_AsLong(args[1]);
    if (lit == -1 && PyErr_Occurred())
        return NULL;
    long reason = PyLong_AsLong(args[2]);
    if (reason == -1 && PyErr_Occurred())
        return NULL;

    PyObject *values_o = PyObject_GetAttr(solver, s_values);
    if (values_o == NULL)
        return NULL;
    Py_buffer values_b;
    if (acquire_int_buffer(values_o, &values_b, 1) < 0) {
        Py_DECREF(values_o);
        return NULL;
    }
    int *values = (int *)values_b.buf;
    Py_ssize_t index = LIT_INDEX(lit);
    int value = values[index];
    if (value != 0) {
        PyBuffer_Release(&values_b);
        Py_DECREF(values_o);
        return PyBool_FromLong(value > 0);
    }

    PyObject *level_o = PyObject_GetAttr(solver, s_level);
    PyObject *reason_o = level_o ? PyObject_GetAttr(solver, s_reason) : NULL;
    PyObject *trail = reason_o ? PyObject_GetAttr(solver, s_trail) : NULL;
    PyObject *trail_lim = trail ? PyObject_GetAttr(solver, s_trail_lim) : NULL;
    Py_buffer level_b, reason_b;
    int ok = 0;
    if (trail_lim != NULL && PyList_Check(trail) && PyList_Check(trail_lim) &&
        acquire_int_buffer(level_o, &level_b, 1) == 0) {
        if (acquire_int_buffer(reason_o, &reason_b, 1) == 0) {
            values[index] = 1;
            values[index ^ 1] = -1;
            long var = lit > 0 ? lit : -lit;
            ((int *)level_b.buf)[var] = (int)PyList_GET_SIZE(trail_lim);
            ((int *)reason_b.buf)[var] = (int)reason;
            ok = PyList_Append(trail, args[1]) == 0;
            PyBuffer_Release(&reason_b);
        }
        PyBuffer_Release(&level_b);
    }
    else if (trail_lim != NULL && (!PyList_Check(trail) ||
                                   !PyList_Check(trail_lim))) {
        PyErr_SetString(PyExc_TypeError,
                        "_accel.enqueue: trail containers must be lists");
    }
    Py_XDECREF(trail_lim);
    Py_XDECREF(trail);
    Py_XDECREF(reason_o);
    Py_XDECREF(level_o);
    PyBuffer_Release(&values_b);
    Py_DECREF(values_o);
    if (!ok)
        return NULL;
    Py_RETURN_TRUE;
}

/* compact(solver) -> None.
 * The arena walk of ArrayCdclSolver._compact_and_rebuild: copy the
 * surviving clauses (binary, long, learned order) into a fresh arena,
 * rewrite the three cref lists in place, and remap trail reasons.
 * Watch-list rebuilding stays in Python (cold path). */
static PyObject *
accel_compact(PyObject *module, PyObject *solver)
{
    PyObject *arena_o = NULL, *reason_o = NULL, *bin_crefs = NULL,
             *long_crefs = NULL, *learned_crefs = NULL, *nvars_o = NULL,
             *new_arena = NULL;
    Py_buffer arena_b, reason_b;
    int have_arena = 0, have_reason = 0, failed = 1;
    int *newbuf = NULL;
    int *remap = NULL;

    arena_o = PyObject_GetAttr(solver, s_arena);
    reason_o = arena_o ? PyObject_GetAttr(solver, s_reason) : NULL;
    bin_crefs = reason_o ? PyObject_GetAttr(solver, s_bin_crefs) : NULL;
    long_crefs = bin_crefs ? PyObject_GetAttr(solver, s_long_crefs) : NULL;
    learned_crefs =
        long_crefs ? PyObject_GetAttr(solver, s_learned_crefs) : NULL;
    nvars_o = learned_crefs ? PyObject_GetAttr(solver, s_nvars) : NULL;
    if (nvars_o == NULL)
        goto cleanup;
    long nvars = PyLong_AsLong(nvars_o);
    if (nvars == -1 && PyErr_Occurred())
        goto cleanup;
    if (!PyList_Check(bin_crefs) || !PyList_Check(long_crefs) ||
        !PyList_Check(learned_crefs)) {
        PyErr_SetString(PyExc_TypeError,
                        "_accel.compact: cref containers must be lists");
        goto cleanup;
    }
    if (acquire_int_buffer(arena_o, &arena_b, 0) < 0)
        goto cleanup;
    have_arena = 1;
    if (acquire_int_buffer(reason_o, &reason_b, 1) < 0)
        goto cleanup;
    have_reason = 1;

    {
        const int *old = (const int *)arena_b.buf;
        Py_ssize_t old_n = arena_b.len / (Py_ssize_t)sizeof(int);
        int *reasons = (int *)reason_b.buf;
        PyObject *lists[3] = {bin_crefs, long_crefs, learned_crefs};
        Py_ssize_t total = 2;

        for (int l = 0; l < 3; l++) {
            Py_ssize_t n = PyList_GET_SIZE(lists[l]);
            for (Py_ssize_t k = 0; k < n; k++) {
                long cref = PyLong_AsLong(PyList_GET_ITEM(lists[l], k));
                if (cref == -1 && PyErr_Occurred())
                    goto cleanup;
                if (cref < 2 || cref >= old_n ||
                    old[cref - 2] < 2 || cref + old[cref - 2] > old_n) {
                    PyErr_SetString(PyExc_SystemError,
                                    "_accel.compact: cref outside arena");
                    goto cleanup;
                }
                total += old[cref - 2] + 2;
            }
        }
        newbuf = PyMem_New(int, (size_t)total);
        remap = PyMem_New(int, (size_t)(old_n > 0 ? old_n : 1));
        if (newbuf == NULL || remap == NULL) {
            PyErr_NoMemory();
            goto cleanup;
        }
        for (Py_ssize_t k = 0; k < old_n; k++)
            remap[k] = -1;
        newbuf[0] = 0;
        newbuf[1] = 0;
        Py_ssize_t pos = 2;
        for (int l = 0; l < 3; l++) {
            Py_ssize_t n = PyList_GET_SIZE(lists[l]);
            for (Py_ssize_t k = 0; k < n; k++) {
                long cref = PyLong_AsLong(PyList_GET_ITEM(lists[l], k));
                int size = old[cref - 2];
                newbuf[pos] = size;
                newbuf[pos + 1] = old[cref - 1];
                memcpy(newbuf + pos + 2, old + cref,
                       (size_t)size * sizeof(int));
                remap[cref] = (int)(pos + 2);
                PyObject *ncref = PyLong_FromSsize_t(pos + 2);
                if (ncref == NULL ||
                    PyList_SetItem(lists[l], k, ncref) < 0)
                    goto cleanup;
                pos += size + 2;
            }
        }
        for (long var = 1; var <= nvars; var++) {
            int r = reasons[var];
            if (r >= 0) {
                /* Locked clauses are always kept, so this never dangles. */
                if (r >= old_n || remap[r] < 0) {
                    PyErr_SetString(PyExc_SystemError,
                                    "_accel.compact: dangling reason cref");
                    goto cleanup;
                }
                reasons[var] = remap[r];
            }
        }
        new_arena = PyObject_CallFunction(
            (PyObject *)Py_TYPE(arena_o), "sy#", "i", (const char *)newbuf,
            (Py_ssize_t)(total * (Py_ssize_t)sizeof(int)));
        if (new_arena == NULL)
            goto cleanup;
        if (PyObject_SetAttr(solver, s_arena, new_arena) < 0)
            goto cleanup;
    }
    failed = 0;

cleanup:
    PyMem_Free(remap);
    PyMem_Free(newbuf);
    if (have_reason)
        PyBuffer_Release(&reason_b);
    if (have_arena)
        PyBuffer_Release(&arena_b);
    Py_XDECREF(new_arena);
    Py_XDECREF(nvars_o);
    Py_XDECREF(learned_crefs);
    Py_XDECREF(long_crefs);
    Py_XDECREF(bin_crefs);
    Py_XDECREF(reason_o);
    Py_XDECREF(arena_o);
    if (failed)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef accel_methods[] = {
    {"propagate", (PyCFunction)accel_propagate, METH_O,
     "propagate(solver) -> conflict literal list or None"},
    {"enqueue", (PyCFunction)(void (*)(void))accel_enqueue, METH_FASTCALL,
     "enqueue(solver, lit, reason) -> bool"},
    {"compact", (PyCFunction)accel_compact, METH_O,
     "compact(solver) -> None (arena walk of _compact_and_rebuild)"},
    {NULL, NULL, 0, NULL},
};

static int
intern_names(void)
{
#define INTERN(var, text)                    \
    do {                                     \
        var = PyUnicode_InternFromString(text); \
        if (var == NULL)                     \
            return -1;                       \
    } while (0)
    INTERN(s_values, "_values");
    INTERN(s_level, "_level");
    INTERN(s_reason, "_reason");
    INTERN(s_arena, "_arena");
    INTERN(s_trail, "_trail");
    INTERN(s_trail_lim, "_trail_lim");
    INTERN(s_watches, "_watches");
    INTERN(s_bin_watches, "_bin_watches");
    INTERN(s_qhead, "_qhead");
    INTERN(s_stats, "stats");
    INTERN(s_propagations, "propagations");
    INTERN(s_bin_crefs, "_bin_crefs");
    INTERN(s_long_crefs, "_long_crefs");
    INTERN(s_learned_crefs, "_learned_crefs");
    INTERN(s_nvars, "_nvars");
    INTERN(s_append, "append");
#undef INTERN
    return 0;
}

static struct PyModuleDef accel_module = {
    PyModuleDef_HEAD_INIT,
    "repro.sat._accel",
    "Native inner loops (propagate/enqueue/compact) for the flat-arena "
    "CDCL core; see repro.sat.core_accel.",
    -1,
    accel_methods,
};

PyMODINIT_FUNC
PyInit__accel(void)
{
    if (intern_names() < 0)
        return NULL;
    return PyModule_Create(&accel_module);
}

"""Object-based clause storage for the CDCL core.

This is the solver's original representation — one Python object per
long clause, watch lists of ``(blocker, clause)`` tuples, binary clauses
living purely in dedicated binary watch lists with their shared literal
list doubling as the propagation reason.  It is kept as the
*differential oracle* for the flat-arena core
(:mod:`repro.sat.core_array`): both cores implement identical
heuristics, so ``--solver-core object`` must reproduce the array core's
search, models, and counters exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .core import CdclCore


class _Clause:
    """A clause of three or more literals (binary clauses live purely in
    the binary watch lists).  ``lits[0]`` and ``lits[1]`` are the watched
    positions; ``lbd`` is the literal-block-distance quality tag used by
    database reduction (0 for problem clauses, which are never deleted)."""

    __slots__ = ("lits", "learned", "lbd")

    def __init__(self, lits: list[int], learned: bool = False, lbd: int = 0) -> None:
        self.lits = lits
        self.learned = learned
        self.lbd = lbd


class ObjectCdclSolver(CdclCore):
    """CDCL solver with per-clause-object storage (see module docstring)."""

    _NO_REASON = None

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def _init_storage(self, size: int) -> None:
        # _watches[i] holds (blocker, clause) pairs whose watched literal is
        # the negation of literal i; _bin_watches[i] holds (other, lits)
        # pairs for binary clauses (-lit(i), other).
        self._watches: list[list[tuple[int, _Clause]]] = [[] for _ in range(size)]
        self._bin_watches: list[list[tuple[int, list[int]]]] = [
            [] for _ in range(size)
        ]
        self._long_clauses: list[_Clause] = []
        self._learned: list[_Clause] = []

    def _grow_storage(self) -> None:
        self._watches.append([])
        self._watches.append([])
        self._bin_watches.append([])
        self._bin_watches.append([])

    def _attach_clause(self, lits: list[int], learned: bool = False, lbd: int = 0):
        if len(lits) == 2:
            self._watch_binary(lits)
            return lits
        clause = _Clause(lits, learned=learned, lbd=lbd)
        if learned:
            self._learned.append(clause)
        else:
            self._long_clauses.append(clause)
        self._watch(clause)
        return lits

    def _watch(self, clause: _Clause) -> None:
        lits = clause.lits
        self._watches[self._lit_index(-lits[0])].append((lits[1], clause))
        self._watches[self._lit_index(-lits[1])].append((lits[0], clause))

    def _watch_binary(self, lits: list[int]) -> None:
        a, b = lits
        self._bin_watches[self._lit_index(-a)].append((b, lits))
        self._bin_watches[self._lit_index(-b)].append((a, lits))

    def _reason_lits(self, var: int) -> Optional[Sequence[int]]:
        return self._reason[var]

    @property
    def learned_count(self) -> int:
        return len(self._learned)

    # ------------------------------------------------------------------
    # Learned-clause database reduction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        """Drop the worst half of the learned clauses (called at decision
        level 0 only).

        Clauses are ranked by (LBD, length, age); "glue" clauses with
        LBD <= 2 are always kept, the standard heuristic for clauses that
        connect decision levels and get reused constantly.  A clause that
        is currently the *reason* for a literal on the trail (level-0
        forced literals survive the backtrack to level 0) is *locked* and
        always kept: deleting it would leave a dangling reason reference
        that conflict analysis or arena compaction could later trip
        over."""
        learned = self._learned
        reasons = self._reason
        locked: set[int] = set()
        for lit in self._trail:
            reason = reasons[lit if lit > 0 else -lit]
            if reason is not None:
                locked.add(id(reason))
        ranked = sorted(
            range(len(learned)),
            key=lambda i: (learned[i].lbd, len(learned[i].lits), i),
        )
        keep_indices = set(ranked[: len(learned) // 2])
        kept: list[_Clause] = []
        deleted = 0
        for i, clause in enumerate(learned):
            if i in keep_indices or clause.lbd <= 2 or id(clause.lits) in locked:
                kept.append(clause)
            else:
                deleted += 1
        self._learned = kept
        self._rebuild_watches()
        self.stats.db_reductions += 1
        self.stats.deleted_clauses += deleted
        self._max_learned = self._max_learned + self._max_learned // 2

    def _rebuild_watches(self) -> None:
        for watch_list in self._watches:
            del watch_list[:]
        for clause in self._long_clauses:
            self._watch(clause)
        for clause in self._learned:
            self._watch(clause)

    # ------------------------------------------------------------------
    # Inprocessing storage API (see repro.sat.inprocess)
    # ------------------------------------------------------------------
    def _inprocess_learned(self) -> list:
        return list(self._learned)

    def _inprocess_lits(self, ref) -> list[int]:
        return list(ref.lits)

    def _inprocess_locked(self) -> set:
        reasons = self._reason
        locked_ids = set()
        for lit in self._trail:
            reason = reasons[lit if lit > 0 else -lit]
            if reason is not None:
                locked_ids.add(id(reason))
        return {c for c in self._learned if id(c.lits) in locked_ids}

    def _inprocess_apply(self, deletions: set, replacements: dict) -> None:
        kept: list[_Clause] = []
        for clause in self._learned:
            if clause in deletions:
                continue
            new_lits = replacements.get(clause)
            if new_lits is None:
                kept.append(clause)
            elif len(new_lits) == 2:
                # Shrunk to binary: migrate to the binary watch lists
                # (binary clauses are untracked there, exactly like
                # binary learned clauses from conflict analysis).
                self._watch_binary(new_lits)
            else:
                clause.lits = new_lits
                if clause.lbd > len(new_lits) - 1:
                    clause.lbd = len(new_lits) - 1
                kept.append(clause)
        self._learned = kept
        self._rebuild_watches()

    # ------------------------------------------------------------------
    # Unit propagation (the hot loop)
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[list[int]]:
        """Unit propagation; returns a conflicting clause's literals or None.

        The hot loop: truth values are read straight out of the
        literal-indexed array (no method call), blocking literals short-cut
        satisfied clauses, and binary clauses propagate from their own
        watch lists without touching clause objects at all.
        """
        values = self._values
        trail = self._trail
        watches = self._watches
        bin_watches = self._bin_watches
        level_now = len(self._trail_lim)
        levels = self._level
        reasons = self._reason
        qhead = self._qhead
        processed = 0
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            processed += 1
            lit_idx = (lit << 1) if lit > 0 else ((-lit) << 1) | 1

            for other, bin_lits in bin_watches[lit_idx]:
                other_idx = (other << 1) if other > 0 else ((-other) << 1) | 1
                value = values[other_idx]
                if value < 0:
                    self._qhead = len(trail)
                    self.stats.propagations += processed
                    return bin_lits
                if value == 0:
                    values[other_idx] = 1
                    values[other_idx ^ 1] = -1
                    var = other if other > 0 else -other
                    levels[var] = level_now
                    reasons[var] = bin_lits
                    trail.append(other)

            watch_list = watches[lit_idx]
            neg_lit = -lit
            i = 0
            j = 0
            end = len(watch_list)
            while i < end:
                # Watch entries are (blocker, clause) tuples; the blocker is
                # *some* literal of the clause whose truth proves the clause
                # satisfied without touching it.  Entries are reused verbatim
                # on the keep path — no allocation in the hot loop.
                entry = watch_list[i]
                i += 1
                blocker = entry[0]
                if values[(blocker << 1) if blocker > 0 else ((-blocker) << 1) | 1] > 0:
                    watch_list[j] = entry
                    j += 1
                    continue
                clause = entry[1]
                lits = clause.lits
                # Normalize: the false literal goes to position 1.
                if lits[0] == neg_lit:
                    lits[0] = lits[1]
                    lits[1] = neg_lit
                first = lits[0]
                first_idx = (first << 1) if first > 0 else ((-first) << 1) | 1
                if values[first_idx] > 0:
                    watch_list[j] = entry
                    j += 1
                    continue
                # Look for a replacement watch.
                moved = False
                for pos in range(2, len(lits)):
                    cand = lits[pos]
                    cand_idx = (cand << 1) if cand > 0 else ((-cand) << 1) | 1
                    if values[cand_idx] >= 0:
                        lits[1] = cand
                        lits[pos] = neg_lit
                        watches[cand_idx ^ 1].append(entry)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                watch_list[j] = entry
                j += 1
                if values[first_idx] < 0:
                    while i < end:
                        watch_list[j] = watch_list[i]
                        j += 1
                        i += 1
                    del watch_list[j:]
                    self._qhead = len(trail)
                    self.stats.propagations += processed
                    return lits
                values[first_idx] = 1
                values[first_idx ^ 1] = -1
                var = first if first > 0 else -first
                levels[var] = level_now
                reasons[var] = lits
                trail.append(first)
            del watch_list[j:]
        self._qhead = qhead
        self.stats.propagations += processed
        return None

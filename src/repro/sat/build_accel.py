"""Build the :mod:`repro.sat._accel` CPython extension on demand.

``python -m repro.sat.build_accel`` compiles ``_accel.c`` with the
system C compiler (via a setuptools ``Extension``, no new Python
dependencies) and drops the shared object next to the source inside the
package, where ``repro.sat.core_accel`` picks it up on the next import.

Fallback semantics mirror :mod:`repro.sat.build_compiled`'s hardened
contract:

* no C toolchain (or no setuptools) — a note is printed and the exit
  status is 0: the pure-Python cores remain active and nothing is wrong;
* toolchain present but the compile *fails* — the compiler diagnostics
  are printed and the exit status is nonzero: that is a real build
  failure which must not masquerade as the benign path.

``--clean`` removes any previously built extension; ``--force``
rebuilds even when the artifact is newer than the source.
"""

from __future__ import annotations

import importlib
import shutil
import sys
import sysconfig
import tempfile
import traceback
from pathlib import Path
from typing import Optional

SOURCE_NAME = "_accel.c"
MODULE_NAME = "repro.sat._accel"


def _package_dir() -> Path:
    return Path(__file__).resolve().parent


def source_path() -> Path:
    return _package_dir() / SOURCE_NAME


def extension_path() -> Path:
    """Where the built extension lives for *this* interpreter's ABI."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return _package_dir() / f"_accel{suffix}"


def built_extensions() -> list[Path]:
    """Every built ``_accel`` artifact in the package (any ABI)."""
    return sorted(
        path
        for pattern in ("_accel.*.so", "_accel.*.pyd", "_accel.so", "_accel.pyd")
        for path in _package_dir().glob(pattern)
    )


def _compiler_name() -> str:
    cc = sysconfig.get_config_var("CC") or "cc"
    return str(cc).split()[0]


def _have_compiler() -> bool:
    return shutil.which(_compiler_name()) is not None


def _run_build(build_dir: str) -> Path:
    """Compile the extension under ``build_dir``; returns the artifact.

    Raises on any compile/link failure — the caller decides how to
    present it.  Separated out so tests can monkeypatch the seam.
    """
    from setuptools import Distribution, Extension

    extension = Extension(
        MODULE_NAME, sources=[str(source_path())], optional=False
    )
    dist = Distribution({"name": "repro-accel", "ext_modules": [extension]})
    cmd = dist.get_command_obj("build_ext")
    cmd.build_lib = build_dir
    cmd.build_temp = build_dir
    cmd.ensure_finalized()
    cmd.run()
    built = sorted(Path(build_dir).glob("repro/sat/_accel*"))
    if not built:
        raise RuntimeError("build_ext produced no _accel artifact")
    return built[0]


def clean() -> int:
    """Remove previously built extensions; returns the count removed."""
    removed = 0
    for path in built_extensions():
        path.unlink()
        removed += 1
    return removed


def build(force: bool = False) -> int:
    """Build the extension in place.  See module docstring for the
    exit-status contract (0 = built or benign fallback, 1 = real
    compile failure)."""
    source = source_path()
    target = extension_path()
    if (
        not force
        and target.exists()
        and target.stat().st_mtime >= source.stat().st_mtime
    ):
        print(f"accel extension up to date: {target.name}")
        return 0
    try:
        import setuptools  # noqa: F401  (probe only)
    except ImportError:
        print(
            "setuptools is not available; skipping the _accel build "
            "(pure-Python solver cores remain active)"
        )
        return 0
    if not _have_compiler():
        print(
            f"no C compiler ({_compiler_name()!r} not on PATH); skipping "
            "the _accel build (pure-Python solver cores remain active)"
        )
        return 0
    try:
        with tempfile.TemporaryDirectory(prefix="repro-accel-") as tmp:
            artifact = _run_build(tmp)
            shutil.copy2(artifact, target)
    except Exception:
        # Toolchain present but the compile failed: that is a real error.
        # Print the diagnostics and return nonzero — do not let a broken
        # build masquerade as the benign absent-toolchain path.
        traceback.print_exc()
        print(
            "_accel build FAILED with the toolchain present (diagnostics "
            "above); pure-Python solver cores remain active",
            file=sys.stderr,
        )
        return 1
    importlib.invalidate_caches()
    print(f"built {target.name} with {_compiler_name()!r}")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.sat.build_accel", description=__doc__
    )
    parser.add_argument(
        "--clean", action="store_true", help="remove built extensions"
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="rebuild even when the artifact is up to date",
    )
    args = parser.parse_args(argv)
    if args.clean:
        removed = clean()
        print(f"removed {removed} built extension(s)")
        return 0
    return build(force=args.force)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Inprocessing for the CDCL cores: learned-clause vivification and
subsumption / self-subsumption.

Between enumeration bursts a long-lived solver (an AllSAT blocking loop,
an incremental :class:`~repro.relational.translate.ProblemSession`)
accumulates thousands of learned clauses.  Database *reduction* already
bounds their number; these passes instead improve the survivors —
shorter clauses propagate earlier and cost less to traverse — which is
where the enumeration-heavy synthesis loop (paper §VI) spends its time.

Soundness.  Every learned clause is entailed by the clause database
(conflict analysis keeps assumption negations inside clauses learned
under assumptions), so a pass may freely

* **delete** a learned clause subsumed by another learned clause,
* **strengthen** ``D`` to ``D \\ {-l}`` when some learned ``C`` with
  ``C \\ {l} ⊆ D`` and ``-l ∈ D`` exists (self-subsuming resolution),
* **vivify** ``C``: probe ``¬l1, ¬l2, ...`` one decision level per
  literal; a propagation conflict proves the probed prefix is itself a
  clause, an implied-true literal closes the clause early, an
  implied-false literal is redundant and dropped.  Every outcome is a
  subset of ``C``'s literals, so the replacement both entails and is
  entailed with the rest of the database — the model set (and hence
  every enumeration result) is unchanged.

Restrictions, enforced here and by the storage hooks:

* passes run at decision level 0 only (scheduled from
  :meth:`repro.sat.core.CdclCore.maybe_inprocess`);
* only *learned* clauses are touched — AllSAT blocking clauses are
  problem clauses and never enter the learned database;
* *locked* clauses (reasons of literals still on the trail) are never
  deleted or strengthened, mirroring the database-reduction invariant.

All passes are deterministic, and both solver cores expose the same
storage API, so inprocessing preserves the cores' lockstep equality.
"""

from __future__ import annotations

from typing import Optional

from ..obs import current_registry

#: Clauses vivified per pass (a cursor cycles through the database
#: round-robin across passes so the whole DB is eventually covered).
VIVIFY_CLAUSE_BUDGET = 64
#: Unit-propagation budget per vivification pass; probing is charged at
#: the solver's normal propagation cost, so this bounds a pass to a
#: small fraction of a typical query's propagation work.
VIVIFY_PROPAGATION_BUDGET = 20_000


def run_inprocessing(solver) -> None:
    """One inprocessing pass over ``solver``'s learned database:
    subsumption/self-subsumption first, then bounded vivification.

    The caller (:meth:`~repro.sat.core.CdclCore.maybe_inprocess`)
    guarantees the solver is at decision level 0 and usable."""
    subsumed, strengthened = _subsume(solver)
    vivified = _vivify(solver) if solver._ok else 0
    stats = solver.stats
    stats.inprocessings += 1
    stats.subsumed_clauses += subsumed
    stats.strengthened_clauses += strengthened
    stats.vivified_clauses += vivified
    registry = current_registry()
    if registry:
        # Informational: totals depend on which process ran the solver
        # (cache warmth / --jobs), like the session-cache counters.  The
        # deterministic view of the same numbers flows through
        # SolverStats -> SuiteStats snapshot-replay.
        registry.inc("inprocessing.passes", 1, informational=True)
        registry.inc("inprocessing.subsumed", subsumed, informational=True)
        registry.inc("inprocessing.strengthened", strengthened, informational=True)
        registry.inc("inprocessing.vivified", vivified, informational=True)


# ----------------------------------------------------------------------
# Subsumption / self-subsumption
# ----------------------------------------------------------------------
def _subsume(solver) -> tuple[int, int]:
    """Learned-vs-learned subsumption, occurrence-indexed.

    For each clause ``C`` (shortest first) the candidates are the
    clauses sharing ``C``'s least-occurring literal (plus its negation
    for the flipped-pivot self-subsumption case), so the pass stays near
    linear in total literal occurrences instead of quadratic in clauses.
    """
    refs = solver._inprocess_learned()
    count = len(refs)
    if count < 2:
        return 0, 0
    locked = solver._inprocess_locked()
    lits_by: list[list[int]] = [solver._inprocess_lits(ref) for ref in refs]
    sets: list[set[int]] = [set(lits) for lits in lits_by]
    alive = [True] * count
    occ: dict[int, list[int]] = {}
    for index, lits in enumerate(lits_by):
        for lit in lits:
            occ.setdefault(lit, []).append(index)
    order = sorted(range(count), key=lambda i: (len(lits_by[i]), i))

    subsumed = 0
    strengthened = 0
    deletions: set = set()
    replacements: dict = {}
    units: list[int] = []

    def strengthen(d: int, remove: int) -> None:
        nonlocal strengthened
        sets[d].discard(remove)
        new_lits = [x for x in lits_by[d] if x != remove]
        lits_by[d] = new_lits
        strengthened += 1
        if len(new_lits) == 1:
            # Strengthened down to a unit: enqueue at level 0 after the
            # batch apply, and drop the clause itself.
            alive[d] = False
            replacements.pop(refs[d], None)
            deletions.add(refs[d])
            units.append(new_lits[0])
        else:
            replacements[refs[d]] = new_lits

    for i in order:
        if not alive[i]:
            continue
        c_set = sets[i]
        c_len = len(c_set)
        pivot = min(lits_by[i], key=lambda lit: (len(occ.get(lit, ())), lit))
        for d in occ.get(pivot, ()):
            if d == i or not alive[d]:
                continue
            d_set = sets[d]
            if len(d_set) < c_len or pivot not in d_set:
                continue
            diff = c_set - d_set
            if not diff:
                if refs[d] in locked:
                    continue
                alive[d] = False
                replacements.pop(refs[d], None)
                deletions.add(refs[d])
                subsumed += 1
            elif len(diff) == 1:
                (lone,) = diff
                if -lone in d_set and refs[d] not in locked:
                    strengthen(d, -lone)
        # Flipped pivot: the one resolved literal is the pivot itself.
        for d in occ.get(-pivot, ()):
            if d == i or not alive[d]:
                continue
            d_set = sets[d]
            if -pivot not in d_set or len(d_set) < c_len:
                continue
            if refs[d] in locked:
                continue
            if c_set - d_set == {pivot}:
                strengthen(d, -pivot)

    if deletions or replacements:
        solver._inprocess_apply(deletions, replacements)
    for lit in units:
        if not solver._enqueue(lit, solver._NO_REASON):
            solver._ok = False
            return subsumed, strengthened
    if units and solver._propagate() is not None:
        solver._ok = False
    return subsumed, strengthened


# ----------------------------------------------------------------------
# Vivification
# ----------------------------------------------------------------------
def _vivify_clause(solver, lits: list[int]) -> tuple[Optional[list[int]], bool]:
    """Probe one clause; returns ``(replacement, root_satisfied)``.

    ``replacement`` is None when the clause is unchanged; otherwise a
    strict subset of ``lits`` (possibly empty = formula UNSAT, or a unit).
    ``root_satisfied`` means the clause is true at level 0 and can be
    deleted outright.  The solver is returned to decision level 0."""
    no_reason = solver._NO_REASON
    levels = solver._level
    kept: list[int] = []
    dropped = False
    new_lits: Optional[list[int]] = None
    for position, lit in enumerate(lits):
        value = solver._value(lit)
        if value is True:
            if levels[abs(lit)] == 0:
                solver._cancel_until(0)
                return None, True
            # Implied true under the probed prefix: the clause closes here.
            kept.append(lit)
            new_lits = kept
            break
        if value is False:
            # False at level 0, or implied false by the probed prefix:
            # either way the literal is redundant in this clause.
            dropped = True
            continue
        solver._trail_lim.append(len(solver._trail))
        solver._enqueue(-lit, no_reason)
        kept.append(lit)
        if solver._propagate() is not None:
            # The probed prefix alone is contradictory: it is the clause.
            new_lits = kept
            break
    else:
        new_lits = kept if dropped else None
    solver._cancel_until(0)
    if new_lits is not None and len(new_lits) < len(lits):
        return new_lits, False
    return None, False


def _vivify(solver) -> int:
    """Bounded vivification sweep (round-robin cursor across passes)."""
    refs = solver._inprocess_learned()
    count = len(refs)
    if count == 0:
        return 0
    locked = solver._inprocess_locked()
    budget = min(count, VIVIFY_CLAUSE_BUDGET)
    cursor = solver._vivify_cursor % count
    propagation_start = solver.stats.propagations

    vivified = 0
    deletions: set = set()
    replacements: dict = {}
    units: list[int] = []
    examined = 0
    while examined < budget:
        if solver.stats.propagations - propagation_start > VIVIFY_PROPAGATION_BUDGET:
            break
        ref = refs[cursor]
        cursor = (cursor + 1) % count
        examined += 1
        if ref in locked:
            continue
        replacement, root_satisfied = _vivify_clause(
            solver, solver._inprocess_lits(ref)
        )
        if root_satisfied:
            deletions.add(ref)
            vivified += 1
            continue
        if replacement is None:
            continue
        vivified += 1
        if not replacement:
            solver._ok = False
            break
        if len(replacement) == 1:
            deletions.add(ref)
            units.append(replacement[0])
        else:
            replacements[ref] = replacement
    solver._vivify_cursor = cursor

    if deletions or replacements:
        solver._inprocess_apply(deletions, replacements)
    for lit in units:
        if not solver._enqueue(lit, solver._NO_REASON):
            solver._ok = False
            return vivified
    if units and solver._propagate() is not None:
        solver._ok = False
    return vivified

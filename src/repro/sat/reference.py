"""Brute-force reference SAT procedures.

Exponential-time but obviously-correct implementations used as oracles in
the test suite (the CDCL solver is validated against these on small random
formulas via hypothesis).
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from .cnf import Cnf


def brute_force_models(cnf: Cnf) -> Iterator[dict[int, bool]]:
    """Yield every satisfying total assignment of ``cnf`` in lexicographic
    order of the variable values (False < True)."""
    variables = list(range(1, cnf.num_vars + 1))
    for values in product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if cnf.evaluate(assignment):
            yield assignment


def brute_force_satisfiable(cnf: Cnf) -> bool:
    for _ in brute_force_models(cnf):
        return True
    return False


def brute_force_count(cnf: Cnf) -> int:
    return sum(1 for _ in brute_force_models(cnf))

"""Optional mypyc compilation of the solver core (pure-Python fallback).

The array core (:mod:`repro.sat.core_array`) and the shared driver
(:mod:`repro.sat.core`) are written to be mypyc-friendly: flat integer
lists, no dynamic attributes, no metaclasses.  When the optional
``mypy``/``mypyc`` toolchain is installed, this module compiles both in
place — mypyc drops extension modules next to the sources, which Python
then imports in preference to the ``.py`` files.  Nothing else changes:
the compiled core implements exactly the same search, so results and
counters stay byte-identical (``repro.sat.solver.COMPILED_ARRAY_CORE``
reports which variant is active).

Usage::

    python -m repro.sat.build_compiled           # build (no-op without mypyc)
    python -m repro.sat.build_compiled --clean   # remove built extensions

The build is strictly optional: when mypyc is unavailable the script
says so and exits 0, leaving the pure-Python cores active.  A mypyc
*crash* with the toolchain present is different — that is a real build
failure, so the compiler diagnostics are printed and the exit status is
nonzero (same contract as :mod:`repro.sat.build_accel`).  It is never
run in CI — the committed baselines and golden digests are produced and
gated on the pure-Python cores.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

#: Modules compiled together (mypyc requires the base class and the
#: subclass in one compilation unit for native inheritance).
CORE_MODULES = ("core.py", "core_array.py")


def _package_dir() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent


def clean() -> int:
    """Remove any previously built core extensions; returns count."""
    removed = 0
    for stem in ("core", "core_array"):
        for built in _package_dir().glob(f"{stem}.*.so"):
            built.unlink()
            removed += 1
        for built in _package_dir().glob(f"{stem}.*.pyd"):
            built.unlink()
            removed += 1
    return removed


def build() -> int:
    """Compile the core modules with mypyc if available.

    Returns 0 when the cores were built or when the toolchain is absent
    (the supported fallback).  Returns nonzero when mypyc is *present*
    but the compile failed: that is a real build failure, and the
    compiler diagnostics are echoed so it cannot masquerade as the
    benign absent-toolchain path."""
    try:
        import mypyc  # noqa: F401
    except ImportError:
        print(
            "mypyc not available; pure-Python solver cores remain active "
            "(install mypy to enable the optional compiled core)"
        )
        return 0
    package = _package_dir()
    sources = [str(package / name) for name in CORE_MODULES]
    result = subprocess.run(
        [sys.executable, "-m", "mypyc", *sources],
        cwd=str(package),
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        sys.stderr.write(result.stdout)
        sys.stderr.write(result.stderr)
        print(
            "mypyc build FAILED with the toolchain present (diagnostics "
            "above); pure-Python solver cores remain active",
            file=sys.stderr,
        )
        return result.returncode
    print("compiled solver cores built:", ", ".join(CORE_MODULES))
    return 0


def main(argv: list[str]) -> int:
    if "--clean" in argv:
        removed = clean()
        print(f"removed {removed} built core extension(s)")
        return 0
    return build()


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    raise SystemExit(main(sys.argv[1:]))

"""DIMACS CNF reader/writer.

Provided so the solver substrate is usable standalone (and testable against
textbook instances such as pigeonhole formulas shipped with the benchmark
suite)."""

from __future__ import annotations

from typing import TextIO

from ..errors import DimacsError
from .cnf import Cnf


def parse_dimacs(text: str) -> Cnf:
    """Parse DIMACS CNF text into a :class:`Cnf`.

    >>> cnf = parse_dimacs("p cnf 2 2\\n1 2 0\\n-1 0\\n")
    >>> cnf.num_vars, cnf.num_clauses
    (2, 2)
    """
    cnf: Cnf | None = None
    pending: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(f"bad problem line: {line!r}")
            try:
                num_vars, _num_clauses = int(parts[2]), int(parts[3])
            except ValueError as exc:
                raise DimacsError(f"bad problem line: {line!r}") from exc
            cnf = Cnf(num_vars)
            continue
        if cnf is None:
            raise DimacsError("clause before problem line")
        for token in line.split():
            try:
                lit = int(token)
            except ValueError as exc:
                raise DimacsError(f"bad literal token: {token!r}") from exc
            if lit == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(lit)
    if cnf is None:
        raise DimacsError("missing problem line")
    if pending:
        raise DimacsError("trailing clause without terminating 0")
    return cnf


def read_dimacs(stream: TextIO) -> Cnf:
    return parse_dimacs(stream.read())


def write_dimacs(cnf: Cnf, stream: TextIO) -> None:
    stream.write(f"p cnf {cnf.num_vars} {cnf.num_clauses}\n")
    for clause in cnf.clauses:
        stream.write(" ".join(str(lit) for lit in clause) + " 0\n")


def dimacs_text(cnf: Cnf) -> str:
    lines = [f"p cnf {cnf.num_vars} {cnf.num_clauses}"]
    for clause in cnf.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"

"""Per-run manifests: the durable record of what a run was.

A manifest is a small JSON document binding together

* the **command** that ran (subcommand + the arguments that shape it),
* the **config identity** and its content-address
  (:func:`repro.orchestrate.store.identity_key`) — the same key the
  SuiteStore files results under, so a manifest can be joined to the
  artifacts it describes,
* **input/output digests** (SHA-256) of any files the run read/wrote,
* the **deterministic counter snapshot** from the metrics registry
  (invariant across ``--jobs``/cache warmth — the part CI pins),
* wall/CPU time and informational metrics (legitimately run-shaped).

Manifests are written atomically under ``<cache_dir>/manifests/`` next
to the SuiteStore's ``entries/`` — the seed of the provenance ledger the
ROADMAP calls for — and also embedded in trace exports.  ``repro stats``
renders them back.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional, Union

MANIFEST_KIND = "run-manifest"
MANIFEST_SCHEMA = 1
MANIFESTS_DIR = "manifests"


def sha256_digest(path: Union[str, Path]) -> Optional[str]:
    """Hex SHA-256 of a file's bytes (None when unreadable)."""
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 16), b""):
                digest.update(chunk)
    except OSError:
        return None
    return digest.hexdigest()


def build_manifest(
    command: str,
    identity: dict[str, Any],
    identity_key: str,
    counters: dict[str, Any],
    wall_s: float,
    cpu_s: float,
    stage_times: Optional[dict[str, float]] = None,
    artifacts: Optional[dict[str, Union[str, Path]]] = None,
    informational: Optional[dict[str, Any]] = None,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Assemble a manifest document.

    ``counters`` is the registry's ``deterministic_snapshot()``;
    ``artifacts`` maps logical names to file paths, digested here.
    Everything under ``"counters"`` must be jobs-invariant — timing and
    other run-shaped values go under ``"timing"`` / ``"informational"``.
    """
    digests = {}
    for name, path in sorted((artifacts or {}).items()):
        digests[name] = {
            "path": str(path),
            "sha256": sha256_digest(path),
        }
    manifest: dict[str, Any] = {
        "kind": MANIFEST_KIND,
        "schema": MANIFEST_SCHEMA,
        "command": command,
        "identity": identity,
        "identity_key": identity_key,
        "counters": counters,
        "artifacts": digests,
        "timing": {
            "wall_s": round(wall_s, 6),
            "cpu_s": round(cpu_s, 6),
            "stage_s": {
                name: round(seconds, 6)
                for name, seconds in sorted((stage_times or {}).items())
            },
        },
    }
    if informational:
        manifest["informational"] = informational
    # Which propagation backend produced this run (the accel extension
    # when built, pure Python otherwise).  Environment-shaped like
    # "timing", so it lives beside — never inside — "counters".
    from ..sat import accel_status  # local import: sat imports obs

    manifest["solver"] = accel_status()
    if extra:
        manifest.update(extra)
    return manifest


def manifest_dir(cache_dir: Union[str, Path]) -> Path:
    return Path(cache_dir) / MANIFESTS_DIR


def manifest_path(cache_dir: Union[str, Path], identity_key: str) -> Path:
    return manifest_dir(cache_dir) / f"{identity_key}.json"


def write_manifest(path: Union[str, Path], manifest: dict[str, Any]) -> Path:
    """Atomic write (tempfile + ``os.replace``, matching the store)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = json.dumps(manifest, sort_keys=True, indent=2).encode("utf-8")
    descriptor, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def store_manifest(
    cache_dir: Union[str, Path],
    identity_key: str,
    manifest: dict[str, Any],
) -> Path:
    """File a manifest under the store's ``manifests/`` tree, keyed by
    the run's config identity (a rerun of the same config overwrites —
    the manifest describes the *latest* run that produced the entry)."""
    return write_manifest(manifest_path(cache_dir, identity_key), manifest)


def load_manifest(path: Union[str, Path]) -> Optional[dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or payload.get("kind") != MANIFEST_KIND:
        return None
    return payload


def list_manifests(cache_dir: Union[str, Path]) -> list[dict[str, Any]]:
    """All manifests in a store, sorted by identity key (deterministic
    listing order regardless of filesystem enumeration)."""
    directory = manifest_dir(cache_dir)
    if not directory.is_dir():
        return []
    manifests = []
    for path in sorted(directory.glob("*.json")):
        manifest = load_manifest(path)
        if manifest is not None:
            manifests.append(manifest)
    return manifests

"""Trace exporters: Chrome ``trace_event`` JSON and a JSONL event log.

The Chrome format (one JSON object with a ``traceEvents`` list of
``B``/``E`` duration events) loads directly in Perfetto / ``chrome://
tracing``.  Layout:

* one *thread lane* per span batch — lane 0 is the coordinating
  process's own spans, lanes 1..N are adopted worker batches in
  deterministic shard-plan order;
* one extra ``stage totals`` lane carrying the synthetic aggregate
  spans (one per pipeline stage, laid end to end) whose durations are
  exactly the ``--profile`` stage table — so the trace and the profile
  reconcile by construction;
* batches from different processes are aligned on their wall-clock
  anchors (microsecond ``ts`` offsets from the earliest anchor).

Events are emitted by walking each batch's span tree (parents before
children, siblings in open order), which guarantees matched, properly
nested B/E pairs and non-decreasing timestamps per lane — properties
:func:`validate_chrome_trace` re-checks and the test suite pins.

The JSONL exporter writes one self-describing JSON object per line
(``meta`` / ``span`` / ``metrics`` / ``manifest`` records) for
log-pipeline consumption; ``write_trace`` dispatches on the file
extension (``.jsonl`` → event log, anything else → Chrome JSON).
"""

from __future__ import annotations

import json
from typing import Optional

from .trace import Span, SpanBatch

#: Single synthetic process id for the whole run (lanes are threads).
TRACE_PID = 1


def _batches(tracer) -> list[SpanBatch]:
    own = tracer.batch()
    return [own] + list(tracer.batches)


def _span_events(
    span: Span,
    children: dict,
    tid: int,
    offset_us: float,
    out: list,
) -> None:
    begin = {
        "name": span.name,
        "cat": span.category,
        "ph": "B",
        "pid": TRACE_PID,
        "tid": tid,
        "ts": round(offset_us + span.start_s * 1e6, 3),
    }
    if span.args or span.synthetic:
        args = dict(span.args)
        if span.synthetic:
            args["synthetic"] = True
        begin["args"] = args
    out.append(begin)
    for child in children.get(span.span_id, ()):
        _span_events(child, children, tid, offset_us, out)
    out.append(
        {
            "name": span.name,
            "cat": span.category,
            "ph": "E",
            "pid": TRACE_PID,
            "tid": tid,
            "ts": round(offset_us + span.end_s * 1e6, 3),
        }
    )


def _lane_events(batch: SpanBatch, tid: int, base_wall: float) -> list:
    """All events of one batch's lane: a thread-name metadata record,
    then the recursive B/E walk of the span tree."""
    events: list = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": tid,
            "args": {"name": batch.label},
        }
    ]
    offset_us = max(0.0, (batch.wall_anchor - base_wall) * 1e6)
    children: dict = {}
    roots: list[Span] = []
    synthetic: list[Span] = []
    for span in batch.spans:
        if span.synthetic:
            synthetic.append(span)
        elif span.parent_id is None:
            roots.append(span)
        else:
            children.setdefault(span.parent_id, []).append(span)
    for span in roots:
        _span_events(span, children, tid, offset_us, events)
    return events


def _stage_lane_events(stage_times: dict, tid: int) -> list:
    """The aggregate per-stage totals lane: one span per stage, laid end
    to end from t=0, duration = the stage's measured wall total (the
    exact numbers ``--profile`` prints)."""
    events: list = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": tid,
            "args": {"name": "stage totals (aggregated)"},
        }
    ]
    cursor = 0.0
    for stage in sorted(stage_times):
        seconds = max(0.0, stage_times[stage])
        events.append(
            {
                "name": f"stage:{stage}",
                "cat": "stage",
                "ph": "B",
                "pid": TRACE_PID,
                "tid": tid,
                "ts": round(cursor * 1e6, 3),
                "args": {"synthetic": True, "total_s": round(seconds, 6)},
            }
        )
        cursor += seconds
        events.append(
            {
                "name": f"stage:{stage}",
                "cat": "stage",
                "ph": "E",
                "pid": TRACE_PID,
                "tid": tid,
                "ts": round(cursor * 1e6, 3),
            }
        )
    return events


def chrome_trace(
    tracer,
    stage_times: Optional[dict] = None,
    metrics: Optional[dict] = None,
    manifest: Optional[dict] = None,
) -> dict:
    """The full Chrome-trace document for one observed run."""
    batches = _batches(tracer)
    base_wall = min((b.wall_anchor for b in batches if b.spans), default=0.0)
    events: list = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for tid, batch in enumerate(batches):
        events.extend(_lane_events(batch, tid, base_wall))
    if stage_times:
        events.extend(_stage_lane_events(stage_times, len(batches)))
    other: dict = {"schema": 1, "kind": "repro-trace"}
    if metrics is not None:
        other["metrics"] = metrics
    if manifest is not None:
        other["manifest"] = manifest
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def jsonl_records(
    tracer,
    stage_times: Optional[dict] = None,
    metrics: Optional[dict] = None,
    manifest: Optional[dict] = None,
) -> list:
    """The event-log rendering: one JSON-safe record per line."""
    records: list = [{"type": "meta", "schema": 1, "kind": "repro-trace"}]
    for batch in _batches(tracer):
        for span in batch.spans:
            records.append(
                {
                    "type": "span",
                    "lane": batch.label,
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "cat": span.category,
                    "start_s": round(span.start_s, 6),
                    "end_s": round(span.end_s, 6),
                    "synthetic": span.synthetic,
                    "args": span.args,
                }
            )
    if stage_times:
        records.append(
            {
                "type": "stage-totals",
                "stages": {k: round(v, 6) for k, v in sorted(stage_times.items())},
            }
        )
    if metrics is not None:
        records.append({"type": "metrics", "metrics": metrics})
    if manifest is not None:
        records.append({"type": "manifest", "manifest": manifest})
    return records


def write_trace(
    path: str,
    tracer,
    stage_times: Optional[dict] = None,
    metrics: Optional[dict] = None,
    manifest: Optional[dict] = None,
) -> str:
    """Write the trace to ``path``: JSONL event log when the extension
    is ``.jsonl``, Chrome ``trace_event`` JSON otherwise."""
    if str(path).endswith(".jsonl"):
        records = jsonl_records(tracer, stage_times, metrics, manifest)
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
    else:
        payload = chrome_trace(tracer, stage_times, metrics, manifest)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
    return str(path)


def validate_chrome_trace(payload: dict) -> dict:
    """Structural validation of an exported Chrome trace (shared by the
    tests and the CI smoke step).  Checks, per (pid, tid) lane: every
    ``B`` has a matching same-name ``E`` (properly nested), timestamps
    are non-decreasing, and every duration event carries pid/tid/ts.
    Returns summary statistics; raises ``ValueError`` on violation."""
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace has no traceEvents list")
    stacks: dict = {}
    last_ts: dict = {}
    spans_per_lane: dict = {}
    for index, event in enumerate(events):
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase not in ("B", "E"):
            raise ValueError(f"event {index}: unsupported phase {phase!r}")
        for key in ("pid", "tid", "ts", "name"):
            if key not in event:
                raise ValueError(f"event {index}: missing {key!r}")
        lane = (event["pid"], event["tid"])
        ts = event["ts"]
        if lane in last_ts and ts < last_ts[lane] - 1e-6:
            raise ValueError(
                f"event {index}: ts {ts} decreases on lane {lane}"
            )
        last_ts[lane] = ts
        stack = stacks.setdefault(lane, [])
        if phase == "B":
            stack.append(event["name"])
            spans_per_lane[lane] = spans_per_lane.get(lane, 0) + 1
        else:
            if not stack:
                raise ValueError(f"event {index}: E without open B")
            opened = stack.pop()
            if opened != event["name"]:
                raise ValueError(
                    f"event {index}: E {event['name']!r} closes {opened!r}"
                )
    for lane, stack in stacks.items():
        if stack:
            raise ValueError(f"lane {lane}: unclosed spans {stack}")
    return {
        "events": len(events),
        "lanes": len(spans_per_lane),
        "spans": sum(spans_per_lane.values()),
        "spans_per_lane": {str(k): v for k, v in sorted(spans_per_lane.items())},
    }

"""Live per-shard progress lines.

A :class:`ProgressReporter` rewrites one stderr status line as shards
complete (``\\r``-overwrite, erased on finish).  It activates only when
stderr is an interactive terminal **and** no CI environment variable is
set — in CI, redirected output, and pipes it is silent, so captured logs
and golden outputs never see control characters.  Progress is cosmetic
by contract: results and counters are identical with it on or off.
"""

from __future__ import annotations

import os
import sys

#: Environment variables whose presence means "not interactive".
_CI_VARS = ("CI", "GITHUB_ACTIONS", "REPRO_NO_PROGRESS")


def progress_enabled(stream=None) -> bool:
    stream = stream if stream is not None else sys.stderr
    if any(os.environ.get(var) for var in _CI_VARS):
        return False
    isatty = getattr(stream, "isatty", None)
    return bool(isatty and isatty())


class ProgressReporter:
    """One overwriting status line: ``[synthesize] 3/8 shards  s2/8``."""

    def __init__(self, task: str, total: int, stream=None, enabled=None):
        self.task = task
        self.total = total
        self.done = 0
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = (
            progress_enabled(self.stream) if enabled is None else enabled
        )
        self._width = 0

    def update(self, label: str = "") -> None:
        """Record one completed unit (optionally naming it)."""
        self.done += 1
        if not self.enabled:
            return
        line = f"[{self.task}] {self.done}/{self.total} shards"
        if label:
            line += f"  {label}"
        pad = max(0, self._width - len(line))
        self._width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()

    def finish(self) -> None:
        """Erase the status line (the real summary goes to stdout)."""
        if not self.enabled or self._width == 0:
            return
        self.stream.write("\r" + " " * self._width + "\r")
        self.stream.flush()
        self._width = 0

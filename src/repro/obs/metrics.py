"""The unified metrics registry.

One namespace for every counter the stack produces: the existing
:class:`~repro.synth.SuiteStats` / :class:`~repro.sat.SolverStats`
counters (ingested via :func:`registry_from_suite_stats`), plus the
gauges and histograms only the observability layer collects —
conflicts/restarts/learned clauses per enumeration burst, cache hit
counts, witnesses per program.

Determinism contract
--------------------

Metrics split into two classes:

* **deterministic** — counters and histograms whose values are a pure
  function of the synthesis configuration, *independent of ``--jobs``,
  cache warmth, and machine*.  Histogram observations follow the same
  snapshot-replay convention the solver counters use (see
  :mod:`repro.synth.sat_backend`): a cached replay re-observes the
  enumeration's snapshot, so the totals never depend on where work
  actually happened.  ``deterministic_snapshot()`` is what run manifests
  embed and what CI pins against a baseline.
* **informational** — process-shaped values (session-cache hit counts,
  store hits/misses) that legitimately vary across ``--jobs``.  They are
  reported, but excluded from the deterministic snapshot.

``absorb`` merges are commutative and associative (integer sums,
bucket-wise histogram sums, min/max), so shard-merged totals equal the
serial run's regardless of completion order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Histogram:
    """Power-of-two-bucketed distribution of non-negative integers.

    Bucket ``b`` counts observations with ``value.bit_length() == b``
    (i.e. bucket 0 holds zeros, bucket b holds [2^(b-1), 2^b)).  All
    fields are integers, so merges and snapshots are exact."""

    buckets: dict = field(default_factory=dict)
    count: int = 0
    total: int = 0
    min_value: Optional[int] = None
    max_value: Optional[int] = None

    def observe(self, value: int) -> None:
        value = int(value)
        if value < 0:
            value = 0
        bucket = value.bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def merge(self, other: "Histogram") -> None:
        for bucket, count in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + count
        self.count += other.count
        self.total += other.total
        for value in (other.min_value,):
            if value is not None and (
                self.min_value is None or value < self.min_value
            ):
                self.min_value = value
        for value in (other.max_value,):
            if value is not None and (
                self.max_value is None or value > self.max_value
            ):
                self.max_value = value

    def snapshot(self) -> dict:
        return {
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
            "count": self.count,
            "total": self.total,
            "min": self.min_value,
            "max": self.max_value,
        }


class MetricsRegistry:
    """Counters, gauges, and histograms under one absorb/snapshot
    protocol (see the module docstring for the determinism split)."""

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.info_counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def __bool__(self) -> bool:
        return True

    # -- recording ------------------------------------------------------
    def inc(self, name: str, delta: int = 1, informational: bool = False) -> None:
        table = self.info_counters if informational else self.counters
        table[name] = table.get(name, 0) + delta

    def set_gauge(self, name: str, value: float) -> None:
        """Gauges are last-write-wins and always informational (a merge
        keeps the larger value, making absorb order-free)."""
        self.gauges[name] = value

    def observe(self, name: str, value: int) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # -- merging --------------------------------------------------------
    def absorb(self, other: Optional["MetricsRegistry"]) -> None:
        if other is None or other is NULL_REGISTRY:
            return
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.info_counters.items():
            self.info_counters[name] = self.info_counters.get(name, 0) + value
        for name, value in other.gauges.items():
            if name not in self.gauges or value > self.gauges[name]:
                self.gauges[name] = value
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(histogram)

    # -- views ----------------------------------------------------------
    def snapshot(self) -> dict:
        """Everything, JSON-safe and key-sorted."""
        out = self.deterministic_snapshot()
        out["informational"] = {
            "counters": dict(sorted(self.info_counters.items())),
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
        }
        return out

    def deterministic_snapshot(self) -> dict:
        """Only the metrics that are invariant across ``--jobs``, cache
        warmth, and machines — the manifest/CI surface."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: self.histograms[name].snapshot()
                for name in sorted(self.histograms)
            },
        }


class NullRegistry:
    """Disabled registry: no-op recording, falsy, nothing to snapshot."""

    enabled = False
    counters: dict = {}
    info_counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def inc(self, name, delta=1, informational=False) -> None:
        return None

    def set_gauge(self, name, value) -> None:
        return None

    def observe(self, name, value) -> None:
        return None

    def absorb(self, other) -> None:
        return None

    def snapshot(self) -> dict:
        return {"counters": {}, "histograms": {}, "informational": {}}

    def deterministic_snapshot(self) -> dict:
        return {"counters": {}, "histograms": {}}


#: The process-wide disabled registry (singleton; never mutated).
NULL_REGISTRY = NullRegistry()

_CURRENT: object = NULL_REGISTRY


def current_registry():
    """The registry instrumentation points record into (the null
    registry unless observation is active)."""
    return _CURRENT


def install_registry(registry) -> object:
    global _CURRENT
    previous = _CURRENT
    _CURRENT = registry if registry is not None else NULL_REGISTRY
    return previous


def registry_from_suite_stats(stats) -> MetricsRegistry:
    """Project a :class:`~repro.synth.SuiteStats` into the unified
    namespace: every summed counter becomes ``suite.<name>``, stage wall
    times become ``stage_s.<stage>`` gauges (times are informational by
    definition).  ``--profile`` and the run manifests are views over
    this projection, so the registry is the single naming authority."""
    registry = MetricsRegistry()
    for name in stats.SUMMED_FIELDS:
        registry.inc(f"suite.{name}", getattr(stats, name))
    registry.inc("suite.unique_programs", stats.unique_programs)
    registry.inc("suite.timed_out", 1 if stats.timed_out else 0)
    registry.inc("suite.degraded", 1 if stats.degraded else 0)
    for stage, seconds in stats.stage_times.items():
        registry.set_gauge(f"stage_s.{stage}", seconds)
    registry.set_gauge("runtime_s", stats.runtime_s)
    return registry

"""Hierarchical span tracing for the synthesis stack.

A :class:`Tracer` records *spans* — named, nested wall-time intervals —
through a context-manager API::

    with tracer.span("translate", category="sat", events=9):
        ...

Design constraints, in order:

1. **Zero overhead when disabled.**  The module-level current tracer
   defaults to :data:`NULL_TRACER`, whose ``span()`` hands back one
   shared, stateless no-op context manager and whose ``enabled`` /
   ``__bool__`` are ``False`` so hot loops can skip instrumentation with
   a single attribute test.  ``benchmarks/bench_obs_overhead.py`` gates
   the residual cost (<2% of the quick-bench workload).
2. **Determinism.**  Span ids are sequential per tracer (no randomness,
   no pids in ids), so the same run produces the same tree; tracing
   never touches the synthesis counters or suite bytes — the golden
   tests assert suites are byte-identical with tracing on vs off.
3. **Cross-process assembly.**  Workers cannot share a Python tracer, so
   each worker runs its own, labeled after its shard, and ships the
   finished spans back as a :class:`SpanBatch` (plain dataclasses —
   spawn-picklable) on the shard result.  The parent tracer adopts the
   batches (:meth:`Tracer.adopt`) in deterministic shard order, and the
   exporter (:mod:`repro.obs.export`) lays each batch out on its own
   Chrome-trace thread lane, aligned on wall-clock anchors.

Timestamps inside a batch are ``time.perf_counter()`` offsets from the
tracer's creation (monotonic by construction); each batch also records a
``time.time()`` anchor so independently-clocked processes can be placed
on one timeline at export.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Span:
    """One named interval.  ``parent_id`` is ``None`` for top-level
    spans; nesting is reconstructed from the id links, and ids are
    sequential in span-*open* order within their tracer."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str = "run"
    #: Seconds since the owning tracer's creation (monotonic clock).
    start_s: float = 0.0
    end_s: float = 0.0
    args: dict = field(default_factory=dict)
    #: True for aggregate spans synthesized from measured stage totals
    #: rather than recorded live (they live on a dedicated export lane).
    synthetic: bool = False

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)


@dataclass
class SpanBatch:
    """Every span one tracer recorded, plus the anchors needed to place
    them on a shared timeline.  This is what crosses process boundaries
    (a plain picklable payload on shard results)."""

    label: str
    #: ``time.time()`` at tracer creation — aligns batches from
    #: different processes on one (approximate) wall timeline.
    wall_anchor: float = 0.0
    spans: list = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.spans)


class _LiveSpan:
    """The context manager handed out by :meth:`Tracer.span`.  Entering
    stamps the start, exiting stamps the end and files the span; the
    span object is returned from ``__enter__`` so callers can attach
    result args before the block closes."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self.span)
        return False


class Tracer:
    """A live span recorder (see the module docstring for the model)."""

    enabled = True

    def __init__(self, label: str = "main") -> None:
        self.label = label
        self.wall_anchor = time.time()
        self._perf_anchor = time.perf_counter()
        self.spans: list[Span] = []
        self.batches: list[SpanBatch] = []  # adopted worker batches
        self._stack: list[int] = []
        self._next_id = 1

    def __bool__(self) -> bool:
        return True

    # -- clock ----------------------------------------------------------
    def now_s(self) -> float:
        """Seconds since tracer creation (monotonic)."""
        return time.perf_counter() - self._perf_anchor

    # -- recording ------------------------------------------------------
    def span(self, name: str, category: str = "run", **args) -> _LiveSpan:
        """Open a span as a context manager.  Nesting follows the
        lexical ``with`` structure (an internal stack)."""
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            category=category,
            start_s=self.now_s(),
            args=args,
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span.span_id)
        return _LiveSpan(self, span)

    def begin(self, name: str, category: str = "run", **args) -> Span:
        """Open a span without a ``with`` block (loop bodies that
        ``continue``/``break``): pair with :meth:`end` in a
        ``try``/``finally``."""
        return self.span(name, category, **args).span

    def end(self, span: Optional[Span]) -> None:
        """Close a span opened by :meth:`begin` (None is a no-op, so the
        disabled path needs no branch)."""
        if span is not None:
            self._close(span)

    def _close(self, span: Span) -> None:
        span.end_s = self.now_s()
        # Close any dangling children too (defensive: a generator that
        # was never exhausted, say), so B/E pairs always match.
        while self._stack and self._stack[-1] != span.span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    def add_span(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        category: str = "stage",
        **args,
    ) -> Span:
        """File an already-measured interval (no live clock reads) —
        used for the aggregate per-stage totals lane.  Marked
        ``synthetic`` so consumers can tell it from recorded spans."""
        span = Span(
            span_id=self._next_id,
            parent_id=None,
            name=name,
            category=category,
            start_s=start_s,
            end_s=start_s + max(0.0, duration_s),
            args=args,
            synthetic=True,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    # -- cross-process assembly ----------------------------------------
    def adopt(self, batch: Optional[SpanBatch]) -> None:
        """Attach a worker's finished batch to this tracer's tree.
        Call in deterministic (shard-plan) order; the exporter assigns
        thread lanes by adoption order."""
        if batch is not None and batch.spans:
            self.batches.append(batch)

    def batch(self) -> SpanBatch:
        """Package this tracer's own spans for shipping to a parent."""
        return SpanBatch(
            label=self.label, wall_anchor=self.wall_anchor, spans=self.spans
        )

    @property
    def span_count(self) -> int:
        return len(self.spans) + sum(b.count for b in self.batches)


class _NullSpanCm:
    """Stateless, reusable no-op context manager (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN_CM = _NullSpanCm()


class NullTracer:
    """The disabled tracer: every operation is a no-op, ``bool()`` is
    False so call sites can guard whole blocks with one test."""

    enabled = False
    label = "null"
    spans: list = []
    batches: list = []

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def now_s(self) -> float:
        return 0.0

    def span(self, name: str, category: str = "run", **args) -> _NullSpanCm:
        return _NULL_SPAN_CM

    def begin(self, name: str, category: str = "run", **args):
        return None

    def end(self, span) -> None:
        return None

    def add_span(self, name, start_s, duration_s, category="stage", **args):
        return None

    def adopt(self, batch) -> None:
        return None

    def batch(self) -> SpanBatch:
        return SpanBatch(label="null")

    @property
    def span_count(self) -> int:
        return 0


#: The process-wide disabled tracer (singleton; never mutated).
NULL_TRACER = NullTracer()

_CURRENT: object = NULL_TRACER


def current_tracer():
    """The tracer instrumentation points record into (the null tracer
    unless observation is active — see :func:`repro.obs.observing`)."""
    return _CURRENT


def install_tracer(tracer) -> object:
    """Swap the current tracer, returning the previous one (callers
    restore it in a ``finally``)."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer if tracer is not None else NULL_TRACER
    return previous

"""repro.obs — observability for the synthesis stack.

Four cooperating pieces (each in its own module):

* :mod:`.trace` — hierarchical span tracer (context-manager API,
  monotonic clocks, deterministic ids, cross-process
  :class:`~repro.obs.trace.SpanBatch` assembly);
* :mod:`.metrics` — the unified counter/gauge/histogram registry with
  one absorb/snapshot protocol and a deterministic-vs-informational
  split;
* :mod:`.export` — Chrome ``trace_event`` JSON (Perfetto-loadable) and
  JSONL event-log exporters, plus trace validation;
* :mod:`.manifest` — per-run manifests written next to SuiteStore
  artifacts (the provenance-ledger seed);
* :mod:`.progress` — TTY-aware live shard progress (off in CI).

Instrumentation points across the stack record into the *current*
tracer/registry (module-level, defaulting to no-op singletons), so the
hot path pays nothing unless a run turns observation on.  The
:class:`Observation` helper is the one-stop front door the CLI uses::

    obs = Observation(trace_path=args.trace)
    with obs:
        result = run(...)
    obs.finish(stats=result.stats, command="synthesize", identity=...)
"""

from __future__ import annotations

import time
from typing import Any, Optional

from .manifest import (
    MANIFEST_KIND,
    MANIFEST_SCHEMA,
    build_manifest,
    list_manifests,
    load_manifest,
    manifest_path,
    sha256_digest,
    store_manifest,
    write_manifest,
)
from .metrics import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    current_registry,
    install_registry,
    registry_from_suite_stats,
)
from .progress import ProgressReporter, progress_enabled
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanBatch,
    Tracer,
    current_tracer,
    install_tracer,
)
from .export import (
    chrome_trace,
    jsonl_records,
    validate_chrome_trace,
    write_trace,
)

__all__ = [
    "MANIFEST_KIND",
    "MANIFEST_SCHEMA",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Observation",
    "ProgressReporter",
    "Span",
    "SpanBatch",
    "Tracer",
    "build_manifest",
    "chrome_trace",
    "current_registry",
    "current_tracer",
    "install_registry",
    "install_tracer",
    "jsonl_records",
    "list_manifests",
    "load_manifest",
    "manifest_path",
    "progress_enabled",
    "registry_from_suite_stats",
    "sha256_digest",
    "store_manifest",
    "validate_chrome_trace",
    "write_manifest",
    "write_trace",
]


class Observation:
    """Owns one run's tracer + registry and their lifecycle.

    Disabled (``trace_path=None, enabled=False``) it installs nothing
    and every attribute is the shared no-op singleton, so wrapping a run
    in an Observation is always safe.  Enabled, it installs a fresh
    tracer/registry for the ``with`` body (restoring the previous ones
    on exit — reentrant), measures wall and CPU time, and on
    :meth:`finish` exports the trace and builds the run manifest.
    """

    def __init__(
        self,
        trace_path: Optional[str] = None,
        enabled: Optional[bool] = None,
        label: str = "main",
    ) -> None:
        self.trace_path = trace_path
        self.enabled = bool(trace_path) if enabled is None else enabled
        self.tracer = Tracer(label) if self.enabled else NULL_TRACER
        self.registry = MetricsRegistry() if self.enabled else NULL_REGISTRY
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.manifest: Optional[dict[str, Any]] = None
        self._prev_tracer: Any = None
        self._prev_registry: Any = None
        self._wall_start: Optional[float] = None
        self._cpu_start: Optional[float] = None

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "Observation":
        if self.enabled:
            self._prev_tracer = install_tracer(self.tracer)
            self._prev_registry = install_registry(self.registry)
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._wall_start is not None:
            self.wall_s = time.perf_counter() - self._wall_start
            self.cpu_s = time.process_time() - (self._cpu_start or 0.0)
        if self.enabled:
            install_tracer(self._prev_tracer)
            install_registry(self._prev_registry)
        return False

    # -- results --------------------------------------------------------
    def finish(
        self,
        command: str,
        identity: Optional[dict[str, Any]] = None,
        identity_key: str = "",
        stats: Any = None,
        artifacts: Optional[dict[str, Any]] = None,
        cache_dir: Optional[str] = None,
        extra: Optional[dict[str, Any]] = None,
    ) -> Optional[dict[str, Any]]:
        """Fold suite stats into the registry, build the manifest, write
        the trace file and (when a store is in play) the store-side
        manifest copy.  Returns the manifest, or None when disabled."""
        if not self.enabled:
            return None
        stage_times: dict[str, float] = {}
        if stats is not None:
            self.registry.absorb(registry_from_suite_stats(stats))
            stage_times = dict(stats.stage_times)
        snapshot = self.registry.snapshot()
        self.manifest = build_manifest(
            command=command,
            identity=identity or {},
            identity_key=identity_key,
            counters=self.registry.deterministic_snapshot(),
            wall_s=self.wall_s,
            cpu_s=self.cpu_s,
            stage_times=stage_times,
            artifacts=artifacts,
            informational=snapshot.get("informational"),
            extra=extra,
        )
        if cache_dir and identity_key:
            store_manifest(cache_dir, identity_key, self.manifest)
        if self.trace_path:
            write_trace(
                self.trace_path,
                self.tracer,
                stage_times=stage_times,
                metrics=snapshot,
                manifest=self.manifest,
            )
        return self.manifest

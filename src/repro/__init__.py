"""repro — a reproduction of TransForm (ISCA 2020).

TransForm formally specifies *memory transistency models* (MTMs — memory
consistency extended with virtual-memory behaviors) and synthesizes
*enhanced litmus tests* (ELTs) from such specifications.

Subpackages
-----------
``repro.sat``
    Pure-Python CDCL SAT solver (MiniSat stand-in).
``repro.relational``
    Alloy/Kodkod-lite bounded relational model finder.
``repro.mtm``
    The MTM vocabulary of Table I: events, locations, programs, candidate
    executions, and derived relations.
``repro.models``
    Axiomatic memory models: SC, x86-TSO, and the paper's ``x86t_elt``.
``repro.synth``
    The ELT synthesis engine (Fig 7 pipeline): bounded enumeration,
    interestingness pruning, minimality, deduplication.
``repro.symmetry``
    Symmetry-aware enumeration: program automorphism groups,
    witness-orbit pruning with exact weights, SAT-level lex-leader
    breaking, orbit-level program dedup.
``repro.litmus``
    ELT text formats, the reconstructed COATCheck suite, and the §VI-B
    comparison tool.
``repro.orchestrate``
    Sharded parallel synthesis: deterministic work partitioning, a
    spawn-safe worker pool, serial-equivalent merging, and the persistent
    suite store behind resumable runs (``--jobs``/``--cache-dir``).
``repro.conformance``
    Differential conformance: single-pass classification of a bounded
    candidate space under a model pair, discriminating-ELT synthesis,
    and the all-pairs conformance matrix (``repro diff``).
``repro.fuzz``
    Coverage-guided differential fuzzing beyond the enumeration bound:
    seeded random well-formed programs, the shared differential oracle,
    greedy shrinking to §IV-B-minimal ELTs, and a deterministic
    replayable regression corpus (``repro fuzz``).
``repro.reporting``
    ASCII tables/plots and the experiment drivers behind EXPERIMENTS.md.
"""

from __future__ import annotations

__version__ = "1.1.0"


def __getattr__(name: str):
    """Lazy re-exports of the headline API, so ``from repro import
    ProgramBuilder, x86t_elt, synthesize`` works without importing every
    subsystem at package-import time."""
    surface = {
        "ProgramBuilder": ("repro.mtm", "ProgramBuilder"),
        "Program": ("repro.mtm", "Program"),
        "Execution": ("repro.mtm", "Execution"),
        "Event": ("repro.mtm", "Event"),
        "EventKind": ("repro.mtm", "EventKind"),
        "MemoryModel": ("repro.models", "MemoryModel"),
        "x86tso": ("repro.models", "x86tso"),
        "x86t_elt": ("repro.models", "x86t_elt"),
        "sequential_consistency": ("repro.models", "sequential_consistency"),
        "SynthesisConfig": ("repro.synth", "SynthesisConfig"),
        "synthesize": ("repro.synth", "synthesize"),
        "run_sharded": ("repro.orchestrate", "run_sharded"),
        "run_sweep_sharded": ("repro.orchestrate", "run_sweep_sharded"),
        "SuiteStore": ("repro.orchestrate", "SuiteStore"),
        "DiffConfig": ("repro.conformance", "DiffConfig"),
        "diff_models": ("repro.conformance", "diff_models"),
        "run_diff": ("repro.conformance", "run_diff"),
        "run_all_pairs": ("repro.conformance", "run_all_pairs"),
        "ConformanceMatrix": ("repro.conformance", "ConformanceMatrix"),
        "explore_program": ("repro.synth", "explore_program"),
        "format_execution": ("repro.litmus", "format_execution"),
        "parse_elt": ("repro.litmus", "parse_elt"),
        "serialize_elt": ("repro.litmus", "serialize_elt"),
    }
    if name in surface:
        import importlib

        module_name, attribute = surface[name]
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "__version__",
    "ProgramBuilder",
    "Program",
    "Execution",
    "Event",
    "EventKind",
    "MemoryModel",
    "x86tso",
    "x86t_elt",
    "sequential_consistency",
    "SynthesisConfig",
    "synthesize",
    "DiffConfig",
    "diff_models",
    "run_diff",
    "run_all_pairs",
    "ConformanceMatrix",
    "explore_program",
    "format_execution",
    "parse_elt",
    "serialize_elt",
]

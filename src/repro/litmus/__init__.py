"""Litmus/ELT assets: paper figures, classic MCM tests, text formats, the
reconstructed COATCheck suite, and the §VI-B comparison tool."""

from .classics import ALL_CLASSICS, SC_VERDICTS, TSO_VERDICTS
from .coatcheck import CoatCheckTest, coatcheck_suite
from .compare import (
    Category,
    Classification,
    ComparisonReport,
    classify_test,
    compare_suite,
)
from .figures import ALL_FIGURES, PaperExample
from .format import format_execution, format_program, serialize_elt
from .parser import parse_elt
from .suitefile import (
    EltSuite,
    SuiteEntry,
    suite_from_diff,
    suite_from_fuzz,
    suite_from_synthesis,
)

__all__ = [
    "ALL_FIGURES",
    "PaperExample",
    "ALL_CLASSICS",
    "TSO_VERDICTS",
    "SC_VERDICTS",
    "CoatCheckTest",
    "coatcheck_suite",
    "Category",
    "Classification",
    "ComparisonReport",
    "classify_test",
    "compare_suite",
    "format_program",
    "format_execution",
    "serialize_elt",
    "parse_elt",
    "EltSuite",
    "SuiteEntry",
    "suite_from_diff",
    "suite_from_fuzz",
    "suite_from_synthesis",
]

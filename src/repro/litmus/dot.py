"""Graphviz DOT export of candidate executions.

Renders an ELT the way the paper's figures do: one cluster per core with
instructions in program order (ghosts attached to their parents), plus
labeled relation edges (rf, co, fr, rf_ptw, rf_pa, fr_va, remap, ...).
The output is plain DOT text; no graphviz installation is required to
produce it.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..mtm import Execution, names

#: Relations drawn by default, with graphviz colors.
DEFAULT_EDGE_STYLE: Mapping[str, str] = {
    names.RF: "forestgreen",
    names.CO: "crimson",
    names.FR: "orange",
    names.RF_PTW: "dodgerblue",
    names.RF_PA: "purple",
    names.FR_VA: "brown",
    names.FR_PA: "plum",
    names.CO_PA: "firebrick",
    names.REMAP: "gray40",
    names.RMW: "black",
}


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def execution_to_dot(
    execution: Execution,
    name: str = "elt",
    relations: Optional[Iterable[str]] = None,
) -> str:
    """Render a candidate execution as a DOT digraph."""
    program = execution.program
    lines = [f"digraph {_quote(name)} {{"]
    lines.append("  rankdir=TB;")
    lines.append('  node [shape=box, fontname="monospace"];')

    for core, thread in enumerate(program.threads):
        lines.append(f"  subgraph cluster_core{core} {{")
        lines.append(f'    label="C{core}";')
        previous: Optional[str] = None
        for eid in thread:
            event = program.events[eid]
            label = f"{event.kind.value}"
            if event.va is not None:
                label += f" {event.va}"
            if event.pa is not None:
                label += f" -> {event.pa}"
            lines.append(f"    {_quote(eid)} [label={_quote(label)}];")
            for ghost in program.ghosts.get(eid, ()):
                g = program.events[ghost]
                glabel = f"{g.kind.value} pte({g.va})"
                lines.append(
                    f"    {_quote(ghost)} [label={_quote(glabel)}, "
                    "style=dashed];"
                )
                lines.append(
                    f"    {_quote(eid)} -> {_quote(ghost)} "
                    '[style=dotted, label="ghost", color=gray];'
                )
            if previous is not None:
                lines.append(
                    f"    {_quote(previous)} -> {_quote(eid)} "
                    '[label="po", color=gray60];'
                )
            previous = eid
        lines.append("  }")

    wanted = list(relations) if relations is not None else list(
        DEFAULT_EDGE_STYLE
    )
    for relation_name in wanted:
        color = DEFAULT_EDGE_STYLE.get(relation_name, "black")
        for a, b in sorted(execution.relation(relation_name).tuples):
            lines.append(
                f"  {_quote(a)} -> {_quote(b)} "
                f"[label={_quote(relation_name)}, color={color}, "
                "constraint=false];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"

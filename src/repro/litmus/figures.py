"""The paper's figure ELTs, encoded with the public builder API.

Each constructor returns a :class:`PaperExample` bundling the candidate
execution with named event handles so tests and examples can assert on
specific edges.  Expected verdicts (permitted/forbidden and which axioms a
forbidden execution violates) are documented per constructor and asserted
in ``tests/test_paper_examples.py`` — these are the strongest oracles the
paper gives us.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..mtm import Event, Execution, ProgramBuilder


@dataclass
class PaperExample:
    """A named candidate execution from the paper with event handles."""

    name: str
    execution: Execution
    events: Mapping[str, Event] = field(default_factory=dict)

    def eid(self, key: str) -> str:
        return self.events[key].eid


def fig2b_sb_elt() -> PaperExample:
    """Fig 2b: the sb litmus test mapped to an ELT; outcome remains
    *permitted* (each VA keeps its own PA; the sb outcome is legal TSO)."""
    b = ProgramBuilder()
    b.map("x", "pa_a").map("y", "pa_b")
    c0, c1 = b.thread(), b.thread()
    w0 = c0.write("x")
    r1 = c0.read("y")
    w2 = c1.write("y")
    r3 = c1.read("x")
    program = b.build()
    execution = Execution(
        program,
        rf=[(w2.eid, r1.eid), (w0.eid, r3.eid)],
    )
    return PaperExample(
        "fig2b_sb_elt",
        execution,
        {
            "W0": w0,
            "R1": r1,
            "W2": w2,
            "R3": r3,
            "Wdb0": b.dirty_of(w0),
            "Rptw0": b.walk_of(w0),
            "Rptw1": b.walk_of(r1),
            "Wdb2": b.dirty_of(w2),
            "Rptw2": b.walk_of(w2),
            "Rptw3": b.walk_of(r3),
        },
    )


def fig2c_sb_aliased() -> PaperExample:
    """Fig 2c: sb where a remap aliases x and y to the same PA — the drawn
    outcome is *forbidden* (coherence violation: sc_per_loc)."""
    b = ProgramBuilder()
    b.map("x", "pa_a").map("y", "pa_b")
    c0, c1 = b.thread(), b.thread()
    w0 = c0.write("x")
    wpte3 = c1.pte_write("y", "pa_a")  # INVLPG4 appended on C1
    inv1 = c0.invlpg_for(wpte3)  # IPI-delivered INVLPG on C0
    r2 = c0.read("y")
    w5 = c1.write("y")
    r6 = c1.read("x")
    program = b.build()
    wdb5 = b.dirty_of(w5)
    execution = Execution(
        program,
        rf=[
            (w5.eid, r2.eid),  # R2 reads y = 2 written by W5
            (w0.eid, r6.eid),  # R6 reads x = 1 written by W0
            (wpte3.eid, b.walk_of(r2).eid),  # both y walks see the remap
            (wpte3.eid, b.walk_of(w5).eid),
        ],
        co=[
            (w0.eid, w5.eid),  # both write PA a after the alias
            (wpte3.eid, wdb5.eid),
        ],
    )
    return PaperExample(
        "fig2c_sb_aliased",
        execution,
        {
            "W0": w0,
            "INVLPG1": inv1,
            "R2": r2,
            "WPTE3": wpte3,
            "W5": w5,
            "R6": r6,
            "Wdb5": wdb5,
            "Rptw2": b.walk_of(r2),
            "Rptw5": b.walk_of(w5),
        },
    )


def fig3a_read_with_walk() -> PaperExample:
    """Fig 3a: a lone Read invokes a PT walk that loads its mapping."""
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0 = b.thread()
    r0 = c0.read("x")
    execution = Execution(b.build())
    return PaperExample(
        "fig3a", execution, {"R0": r0, "Rptw0": b.walk_of(r0)}
    )


def fig3b_write_with_ghosts() -> PaperExample:
    """Fig 3b: a lone Write invokes both a PT walk and a dirty-bit update."""
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0 = b.thread()
    w0 = c0.write("x")
    execution = Execution(b.build())
    return PaperExample(
        "fig3b",
        execution,
        {"W0": w0, "Rptw0": b.walk_of(w0), "Wdb0": b.dirty_of(w0)},
    )


def fig4b_remap_chain() -> PaperExample:
    """Fig 4b: two remaps alias x and y onto PA c; exercises every pa edge
    (rf_pa, co_pa, fr_pa, fr_va).  Permitted."""
    b = ProgramBuilder()
    b.map("x", "pa_a").map("y", "pa_b")
    c0 = b.thread()
    r0 = c0.read("x")
    r1 = c0.read("y")
    wpte2 = c0.pte_write("y", "pa_c")  # + INVLPG3
    r4 = c0.read("y")
    wpte5 = c0.pte_write("x", "pa_c")  # + INVLPG6
    r7 = c0.read("x")
    program = b.build()
    execution = Execution(
        program,
        rf=[
            (wpte2.eid, b.walk_of(r4).eid),
            (wpte5.eid, b.walk_of(r7).eid),
        ],
        co_pa=[(wpte2.eid, wpte5.eid)],
    )
    return PaperExample(
        "fig4b_remap_chain",
        execution,
        {
            "R0": r0,
            "R1": r1,
            "WPTE2": wpte2,
            "R4": r4,
            "WPTE5": wpte5,
            "R7": r7,
        },
    )


def fig5a_shared_walk() -> PaperExample:
    """Fig 5a: two Reads of the same VA share one TLB entry (one walk)."""
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0 = b.thread()
    r0 = c0.read("x")
    r1 = c0.read("x", walk=b.walk_of(r0))
    execution = Execution(b.build())
    return PaperExample(
        "fig5a", execution, {"R0": r0, "R1": r1, "Rptw0": b.walk_of(r0)}
    )


def fig5b_invlpg_forces_rewalk() -> PaperExample:
    """Fig 5b: a spurious INVLPG between two same-VA Reads forces the second
    to re-walk (same mapping, new TLB fill)."""
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0 = b.thread()
    r0 = c0.read("x")
    inv1 = c0.invlpg("x")
    r2 = c0.read("x")
    execution = Execution(b.build())
    return PaperExample(
        "fig5b",
        execution,
        {
            "R0": r0,
            "INVLPG1": inv1,
            "R2": r2,
            "Rptw0": b.walk_of(r0),
            "Rptw2": b.walk_of(r2),
        },
    )


def fig6d_remap_disambiguation() -> PaperExample:
    """Fig 6d: the remap of x to PA b disambiguates which Write R6 reads
    from (W3, not W4).  Permitted under x86t_elt."""
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0, c1 = b.thread(), b.thread()
    r0 = c0.read("x")
    w4 = c1.write("x")
    wpte1 = c0.pte_write("x", "pa_b")  # + local INVLPG2
    inv5 = c1.invlpg_for(wpte1)
    w3 = c0.write("x")
    r6 = c1.read("x")
    program = b.build()
    wdb3, wdb4 = b.dirty_of(w3), b.dirty_of(w4)
    execution = Execution(
        program,
        rf=[
            (w3.eid, r6.eid),  # R6 reads x = 1 from W3 (same PA b)
            (wpte1.eid, b.walk_of(w3).eid),
            (wpte1.eid, b.walk_of(r6).eid),
        ],
        co=[(wdb4.eid, wpte1.eid), (wpte1.eid, wdb3.eid)],
    )
    inv2_eid = program.threads[0][program.threads[0].index(wpte1.eid) + 1]
    return PaperExample(
        "fig6d_remap_disambiguation",
        execution,
        {
            "R0": r0,
            "WPTE1": wpte1,
            "INVLPG2": program.events[inv2_eid],
            "W3": w3,
            "W4": w4,
            "INVLPG5": inv5,
            "R6": r6,
            "Wdb3": wdb3,
            "Wdb4": wdb4,
            "Rptw0": b.walk_of(r0),
            "Rptw3": b.walk_of(w3),
            "Rptw4": b.walk_of(w4),
            "Rptw6": b.walk_of(r6),
        },
    )


def fig8_non_minimal_mp() -> PaperExample:
    """Fig 8: an mp-shaped causality violation with an extraneous Write on a
    third core.  Forbidden, but *not minimal* (removing W4 keeps the cycle),
    so TransForm must not synthesize it."""
    b = ProgramBuilder()
    b.map("x", "pa_a").map("y", "pa_b").map("u", "pa_c")
    c0, c1, c2 = b.thread(), b.thread(), b.thread()
    w0 = c0.write("x")
    w1 = c0.write("y")
    r2 = c1.read("y")
    r3 = c1.read("x")
    w4 = c2.write("u")
    execution = Execution(b.build(), rf=[(w1.eid, r2.eid)])
    return PaperExample(
        "fig8_non_minimal_mp",
        execution,
        {"W0": w0, "W1": w1, "R2": r2, "R3": r3, "W4": w4},
    )


def fig10a_ptwalk2() -> PaperExample:
    """Fig 10a: the COATCheck ``ptwalk2`` ELT, synthesized verbatim by
    TransForm.  Forbidden: violates both sc_per_loc and invlpg — after the
    remap and its INVLPG, R2's fresh walk still loads the *stale* mapping."""
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0 = b.thread()
    wpte0 = c0.pte_write("x", "pa_b")  # + INVLPG1
    r2 = c0.read("x")
    program = b.build()
    # No rf into R2's walk: it reads the initial (stale) mapping x -> pa_a.
    execution = Execution(program)
    inv1_eid = program.threads[0][1]
    return PaperExample(
        "fig10a_ptwalk2",
        execution,
        {
            "WPTE0": wpte0,
            "INVLPG1": program.events[inv1_eid],
            "R2": r2,
            "Rptw2": b.walk_of(r2),
        },
    )


def fig10b_dirtybit3() -> PaperExample:
    """Fig 10b: the COATCheck ``dirtybit3`` ELT.  Permitted as written; the
    comparison tool reduces it (drop {W3}) to a minimal synthesizable core."""
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0 = b.thread()
    wpte0 = c0.pte_write("x", "pa_b")  # + INVLPG1
    r2 = c0.read("x")
    w3 = c0.write("x")  # re-walks: TLB capacity eviction (§III-B2)
    program = b.build()
    wdb3 = b.dirty_of(w3)
    execution = Execution(
        program,
        rf=[
            (wpte0.eid, b.walk_of(r2).eid),
            (wpte0.eid, b.walk_of(w3).eid),
        ],
        co=[(wpte0.eid, wdb3.eid)],
    )
    inv1_eid = program.threads[0][1]
    return PaperExample(
        "fig10b_dirtybit3",
        execution,
        {
            "WPTE0": wpte0,
            "INVLPG1": program.events[inv1_eid],
            "R2": r2,
            "W3": w3,
            "Wdb3": wdb3,
            "Rptw2": b.walk_of(r2),
            "Rptw3": b.walk_of(w3),
        },
    )


def fig11_stale_mapping_after_ipi() -> PaperExample:
    """Fig 11: a new TransForm-synthesized ELT.  The IPI INVLPG2 reaches C1
    before R3, yet R3's walk loads the stale mapping — forbidden via the
    invlpg axiom (cycle in remap + fr_va + ^po)."""
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0, c1 = b.thread(), b.thread()
    wpte0 = c0.pte_write("x", "pa_b")  # + local INVLPG1
    inv2 = c1.invlpg_for(wpte0)
    r3 = c1.read("x")
    program = b.build()
    execution = Execution(program)  # R3's walk reads the stale initial PTE
    inv1_eid = program.threads[0][1]
    return PaperExample(
        "fig11_stale_mapping_after_ipi",
        execution,
        {
            "WPTE0": wpte0,
            "INVLPG1": program.events[inv1_eid],
            "INVLPG2": inv2,
            "R3": r3,
            "Rptw3": b.walk_of(r3),
        },
    )


ALL_FIGURES = {
    "fig2b": fig2b_sb_elt,
    "fig2c": fig2c_sb_aliased,
    "fig3a": fig3a_read_with_walk,
    "fig3b": fig3b_write_with_ghosts,
    "fig4b": fig4b_remap_chain,
    "fig5a": fig5a_shared_walk,
    "fig5b": fig5b_invlpg_forces_rewalk,
    "fig6d": fig6d_remap_disambiguation,
    "fig8": fig8_non_minimal_mp,
    "fig10a": fig10a_ptwalk2,
    "fig10b": fig10b_dirtybit3,
    "fig11": fig11_stale_mapping_after_ipi,
}

"""Multi-ELT suite files: persist synthesized suites to disk and reload
them (the shape of the paper's deliverable — "a complete set of ELTs" —
as an artifact downstream verification flows can consume).

Format: a header line, then named sections each containing one ELT in the
machine format of :mod:`repro.litmus.format`::

    eltsuite v1
    # optional comments
    test <name>
    meta violates=sc_per_loc,invlpg bound=4
    elt
    map x pa_a
    ...
    endtest

Relationship to the persistent suite store
------------------------------------------

``.elts`` text files are the *human-facing, portable* artifact: stable
across releases, diffable, and identical whether a suite was synthesized
serially or sharded across workers (``transform-synth synthesize --save``
with any ``--jobs``).

The orchestrator's on-disk cache (:class:`repro.orchestrate.SuiteStore`,
``--cache-dir``) is the *machine-facing, resumable* companion.  Its
layout::

    <cache_dir>/
      entries/
        <key>.json   # entry metadata (kind, config identity, stats)
        <key>.pkl    # payload: pickled ShardResult or SuiteResult

Entries are content-addressed: ``<key>`` hashes the full synthesis
configuration (model + axioms, bound, target axiom, feature toggles,
schema version — plus the shard stride for shard entries), so a cache can
be shared between runs and machines without risk of a stale entry being
mistaken for current work.  Cache payloads keep exact in-memory objects
(needed for byte-identical resumed merges); export to this module's text
format remains the way to publish a suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Optional, Union

from ..errors import LitmusFormatError
from ..mtm import Execution
from .format import serialize_elt
from .parser import parse_elt

HEADER = "eltsuite v1"


@dataclass
class SuiteEntry:
    name: str
    execution: Execution
    meta: Mapping[str, str] = field(default_factory=dict)


@dataclass
class EltSuite:
    """An ordered, named collection of ELTs."""

    entries: list[SuiteEntry] = field(default_factory=list)

    def add(
        self,
        name: str,
        execution: Execution,
        meta: Optional[Mapping[str, str]] = None,
    ) -> None:
        if any(entry.name == name for entry in self.entries):
            raise LitmusFormatError(f"duplicate test name {name!r}")
        self.entries.append(SuiteEntry(name, execution, dict(meta or {})))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def names(self) -> list[str]:
        return [entry.name for entry in self.entries]

    def get(self, name: str) -> SuiteEntry:
        for entry in self.entries:
            if entry.name == name:
                return entry
        raise LitmusFormatError(f"no test named {name!r}")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def dumps(self) -> str:
        lines = [HEADER]
        for entry in self.entries:
            lines.append("")
            lines.append(f"test {entry.name}")
            if entry.meta:
                rendered = " ".join(
                    f"{key}={value}" for key, value in sorted(entry.meta.items())
                )
                lines.append(f"meta {rendered}")
            lines.append(serialize_elt(entry.execution).rstrip("\n"))
            lines.append("endtest")
        return "\n".join(lines) + "\n"

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.dumps())
        return path

    @classmethod
    def loads(cls, text: str) -> "EltSuite":
        lines = text.splitlines()
        if not lines or lines[0].strip() != HEADER:
            raise LitmusFormatError(
                f"suite file must start with {HEADER!r}"
            )
        suite = cls()
        index = 1
        while index < len(lines):
            line = lines[index].strip()
            index += 1
            if not line or line.startswith("#"):
                continue
            if not line.startswith("test "):
                raise LitmusFormatError(f"expected 'test <name>', got {line!r}")
            name = line[len("test "):].strip()
            meta: dict[str, str] = {}
            body: list[str] = []
            while index < len(lines):
                inner = lines[index]
                stripped = inner.strip()
                index += 1
                if stripped == "endtest":
                    break
                if stripped.startswith("meta "):
                    for token in stripped[len("meta "):].split():
                        if "=" not in token:
                            raise LitmusFormatError(
                                f"bad meta token {token!r} in test {name!r}"
                            )
                        key, value = token.split("=", 1)
                        meta[key] = value
                    continue
                body.append(inner)
            else:
                raise LitmusFormatError(f"test {name!r} missing 'endtest'")
            suite.add(name, parse_elt("\n".join(body)), meta)
        return suite

    @classmethod
    def load(cls, path: Union[str, Path]) -> "EltSuite":
        return cls.loads(Path(path).read_text())


def suite_from_diff(cell, prefix: str = "diff") -> EltSuite:
    """Package a :class:`~repro.conformance.ConformanceCell`'s
    discriminating ELTs as a persistable suite.

    Each entry carries the model pair in its metadata (``reference`` is
    the model that forbids the test, ``subject`` the model that permits
    it — observing the test's outcome on hardware proves the subject
    describes the machine), plus the reference axioms the representative
    execution violates.  Because the diff pipeline picks representatives
    by canonical key rather than stream position, the serialized bytes
    are identical across ``--jobs`` settings *and* witness backends.
    """
    suite = EltSuite()
    for index, elt in enumerate(cell.elts, start=1):
        suite.add(
            f"{prefix}_{index:03d}",
            elt.execution,
            meta={
                "reference": cell.reference,
                "subject": cell.subject,
                "violates": ",".join(elt.violated_axioms),
                "bound": str(cell.bound),
                "agreement": "only-reference-forbids",
                "outcomes": str(elt.outcome_count),
            },
        )
    return suite


def suite_from_fuzz(result, prefix: str = "fuzz") -> EltSuite:
    """Package a :class:`~repro.fuzz.FuzzRunResult`'s shrunk findings as
    a persistable suite.

    Same shape as :func:`suite_from_diff` — each finding is a
    reference-forbidden, subject-permitted, §IV-B-minimal ELT — with the
    fuzz provenance added: the run seed, the shrunk program's event
    bound, the winning attempt's shrink-step count, and the finding's
    orbit-class digest (the corpus file name stem).  Findings arrive
    deduplicated and rank-sorted from the runner, so the serialized
    bytes are identical across ``--jobs`` and shard splits.
    """
    suite = EltSuite()
    for index, finding in enumerate(result.findings, start=1):
        suite.add(
            f"{prefix}_{index:03d}",
            finding.execution,
            meta={
                "reference": result.reference,
                "subject": result.subject,
                "violates": ",".join(finding.violated_axioms),
                "bound": str(finding.program.size),
                "agreement": "only-reference-forbids",
                "seed": str(result.seed),
                "shrink_steps": str(finding.shrink_steps),
                "class": finding.digest,
            },
        )
    return suite


def suite_from_synthesis(result, prefix: str = "elt") -> EltSuite:
    """Package a :class:`~repro.synth.SuiteResult` as a persistable suite."""
    suite = EltSuite()
    for index, elt in enumerate(result.elts, start=1):
        suite.add(
            f"{prefix}_{index:03d}",
            elt.execution,
            meta={
                "violates": ",".join(elt.violated_axioms),
                "bound": str(result.bound),
                "axiom": result.target_axiom or "any",
                "outcomes": str(elt.outcome_count),
            },
        )
    return suite

"""Parser for the machine ELT format produced by
:func:`repro.litmus.format.serialize_elt`.

The format is deliberately position-based so it is renaming-free: events
are addressed as ``T.S`` (thread T, slot S), ghost instructions as
``walk:T.S`` / ``wdb:T.S``.  Remap INVLPGs are written ``ipi K`` where K
indexes the K-th ``wpte`` line in thread-major order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import LitmusFormatError
from ..mtm import Event, EventKind, Execution, Program


@dataclass
class _ParsedThread:
    lines: list[tuple] = field(default_factory=list)


def _split(line: str) -> list[str]:
    return line.split()


def parse_elt(text: str) -> Execution:
    """Parse the machine format back into an Execution."""
    mcm_mode = False
    initial_map: dict[str, str] = {}
    threads: list[_ParsedThread] = []
    current: Optional[_ParsedThread] = None
    rmw_refs: list[tuple[str, str]] = []
    rf_refs: list[tuple[str, str]] = []
    co_refs: list[tuple[str, str]] = []
    co_pa_refs: list[tuple[str, str]] = []

    lines = [ln for ln in text.splitlines() if ln.strip() and not ln.strip().startswith("#")]
    if not lines or lines[0].strip() != "elt":
        raise LitmusFormatError("ELT text must start with an 'elt' line")
    for raw in lines[1:]:
        parts = _split(raw)
        head = parts[0]
        if head == "mcm":
            mcm_mode = True
        elif head == "map":
            if len(parts) != 3:
                raise LitmusFormatError(f"bad map line: {raw!r}")
            initial_map[parts[1]] = parts[2]
        elif head == "thread":
            current = _ParsedThread()
            threads.append(current)
        elif head in ("r", "w", "wpte", "invlpg", "ipi", "fence", "tlbflush"):
            if current is None:
                raise LitmusFormatError(f"instruction before any thread: {raw!r}")
            current.lines.append(tuple(parts))
        elif head == "rmw":
            rmw_refs.append((parts[1], parts[2]))
        elif head == "rf":
            rf_refs.append((parts[1], parts[2]))
        elif head == "co":
            co_refs.append((parts[1], parts[2]))
        elif head == "co_pa":
            co_pa_refs.append((parts[1], parts[2]))
        else:
            raise LitmusFormatError(f"unknown line: {raw!r}")

    events: dict[str, Event] = {}
    thread_eids: list[list[str]] = []
    ghosts: dict[str, tuple[str, ...]] = {}
    remap: list[tuple[str, str]] = []
    wpte_by_index: dict[int, str] = {}
    ipi_lines: list[tuple[int, str]] = []  # (wpte index, invlpg eid)
    by_position: dict[str, str] = {}
    counter = 0

    def fresh() -> str:
        nonlocal counter
        eid = f"e{counter}"
        counter += 1
        return eid

    wpte_counter = 0
    for core, parsed in enumerate(threads):
        eids: list[str] = []
        for slot, parts in enumerate(parsed.lines):
            head = parts[0]
            position = f"{core}.{slot}"
            if head == "fence":
                eid = fresh()
                events[eid] = Event(eid, EventKind.FENCE, core)
            elif head == "tlbflush":
                eid = fresh()
                events[eid] = Event(eid, EventKind.TLB_FLUSH, core)
            elif head == "wpte":
                if len(parts) != 3:
                    raise LitmusFormatError(f"bad wpte line: {parts}")
                eid = fresh()
                events[eid] = Event(
                    eid, EventKind.PTE_WRITE, core, parts[1], pa=parts[2]
                )
                wpte_by_index[wpte_counter] = eid
                wpte_counter += 1
            elif head == "invlpg":
                eid = fresh()
                events[eid] = Event(eid, EventKind.INVLPG, core, parts[1])
            elif head == "ipi":
                eid = fresh()
                index = int(parts[1])
                # VA filled in after all wptes are known.
                events[eid] = Event(eid, EventKind.INVLPG, core, f"?ipi{index}")
                ipi_lines.append((index, eid))
            elif head in ("r", "w"):
                if len(parts) != 3 or parts[2] not in ("miss", "hit", "plain"):
                    raise LitmusFormatError(f"bad access line: {parts}")
                kind = EventKind.READ if head == "r" else EventKind.WRITE
                eid = fresh()
                events[eid] = Event(eid, kind, core, parts[1])
                ghost_list: list[str] = []
                if kind is EventKind.WRITE and parts[2] != "plain":
                    dirty = fresh()
                    events[dirty] = Event(
                        dirty, EventKind.DIRTY_BIT_WRITE, core, parts[1]
                    )
                    ghost_list.append(dirty)
                    by_position[f"wdb:{position}"] = dirty
                if parts[2] == "miss":
                    walk = fresh()
                    events[walk] = Event(walk, EventKind.PT_WALK, core, parts[1])
                    ghost_list.append(walk)
                    by_position[f"walk:{position}"] = walk
                if ghost_list:
                    ghosts[eid] = tuple(ghost_list)
            else:  # pragma: no cover
                raise LitmusFormatError(f"unreachable line head {head!r}")
            eids.append(eid)
            by_position[position] = eid
        thread_eids.append(eids)

    # Fix up IPI VAs and remap edges now that all wptes exist.
    for index, inv_eid in ipi_lines:
        if index not in wpte_by_index:
            raise LitmusFormatError(f"ipi references unknown wpte #{index}")
        pte = events[wpte_by_index[index]]
        old = events[inv_eid]
        events[inv_eid] = Event(old.eid, EventKind.INVLPG, old.core, pte.va)
        remap.append((pte.eid, inv_eid))

    # "hit" accesses: resolve their walks implicitly (derive_rf_ptw will);
    # nothing to record — ghosts only exist for misses.
    def resolve(ref: str) -> str:
        if ref not in by_position:
            raise LitmusFormatError(f"unknown event reference {ref!r}")
        return by_position[ref]

    program = Program(
        events=events,
        threads=tuple(tuple(t) for t in thread_eids),
        ghosts=ghosts,
        remap=frozenset(remap),
        rmw=frozenset((resolve(a), resolve(b)) for a, b in rmw_refs),
        initial_map=initial_map,
        mcm_mode=mcm_mode,
    )
    return Execution(
        program,
        rf=[(resolve(a), resolve(b)) for a, b in rf_refs],
        co=[(resolve(a), resolve(b)) for a, b in co_refs],
        co_pa=[(resolve(a), resolve(b)) for a, b in co_pa_refs],
    )

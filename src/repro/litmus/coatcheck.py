"""Reconstruction of the hand-written COATCheck ELT suite (§VI-B).

The paper compares TransForm's synthesized output against the 40 hand-
written ELTs shipped with COATCheck [29]:

* 9 exercise IPI semantics TransForm does not model (excluded);
* 9 do not meet the spanning-set criteria (excluded);
* 22 are *relevant*: 7 are minimal and synthesized verbatim ("category
  1", matching 4 distinct synthesized programs — several hand tests are
  outcome variants of one program) and 15 are non-minimal supersets of
  synthesizable tests ("category 2", e.g. ``dirtybit3`` minus {W3} is
  ``ptwalk2``).

The published suite is not reproduced in the paper, so this module
*reconstructs* a suite with the same composition: the two tests the paper
names (``ptwalk2``, ``dirtybit3``) are exact (Figs 10a/10b); the remainder
follow the same patterns anchored on cores that TransForm synthesizes at
small bounds.  The §VI-B comparison pipeline then *computes* every
classification — nothing below is labeled by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..mtm import Execution, ProgramBuilder
from .figures import fig10a_ptwalk2, fig10b_dirtybit3, fig11_stale_mapping_after_ipi


@dataclass
class CoatCheckTest:
    """One hand-written suite entry.

    ``execution`` is None for the IPI tests whose semantics TransForm (and
    this reproduction) cannot express — they are counted, not modeled.
    """

    name: str
    description: str
    execution: Optional[Execution] = None
    uses_unsupported_ipi: bool = False


# ----------------------------------------------------------------------
# Category-1 anchors: four synthesized programs (A, B, C, D).
# ----------------------------------------------------------------------
def _program_a_forbidden() -> Execution:
    """ptwalk2 (Fig 10a): remap + INVLPG, then a stale re-walk."""
    return fig10a_ptwalk2().execution


def _program_a_permitted() -> Execution:
    """Same program, fresh-walk outcome (permitted)."""
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0 = b.thread()
    wpte0 = c0.pte_write("x", "pa_b")
    r2 = c0.read("x")
    program = b.build()
    return Execution(program, rf=[(wpte0.eid, b.walk_of(r2).eid)])


def _program_b_forbidden() -> Execution:
    """Fig 11: the IPI arrives, the walk still loads the stale mapping."""
    return fig11_stale_mapping_after_ipi().execution


def _program_b_permitted() -> Execution:
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0, c1 = b.thread(), b.thread()
    wpte0 = c0.pte_write("x", "pa_b")
    c1.invlpg_for(wpte0)
    r3 = c1.read("x")
    program = b.build()
    return Execution(program, rf=[(wpte0.eid, b.walk_of(r3).eid)])


def _program_c(read_from_write: bool) -> Execution:
    """coWR as an ELT: W x then R x on one core sharing the TLB entry.
    Reading the initial value is forbidden (sc_per_loc); reading the write
    is the permitted variant."""
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0 = b.thread()
    w0 = c0.write("x")
    r1 = c0.read("x", walk=b.walk_of(w0))
    program = b.build()
    rf = [(w0.eid, r1.eid)] if read_from_write else []
    return Execution(program, rf=rf)


def _program_d() -> Execution:
    """ptw-source causality: a read observes the po-later write that hit
    the TLB entry the read's walk loaded (forbidden: tlb_causality)."""
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0 = b.thread()
    r0 = c0.read("x")
    w1 = c0.write("x", walk=b.walk_of(r0))
    program = b.build()
    return Execution(program, rf=[(w1.eid, r0.eid)])


# ----------------------------------------------------------------------
# Category-2 tests: anchors plus extraneous instructions.
# ----------------------------------------------------------------------
def _a_plus_read() -> Execution:
    b = ProgramBuilder()
    b.map("x", "pa_a").map("y", "pa_y")
    c0 = b.thread()
    c0.pte_write("x", "pa_new")
    c0.read("x")  # stale walk
    c0.read("y")
    return Execution(b.build())


def _a_plus_write() -> Execution:
    b = ProgramBuilder()
    b.map("x", "pa_a").map("y", "pa_y")
    c0 = b.thread()
    c0.pte_write("x", "pa_new")
    c0.read("x")
    c0.write("y")
    return Execution(b.build())


def _a_plus_fence() -> Execution:
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0 = b.thread()
    c0.pte_write("x", "pa_new")
    c0.fence()
    c0.read("x")
    return Execution(b.build())


def _b_plus_write() -> Execution:
    b = ProgramBuilder()
    b.map("x", "pa_a").map("y", "pa_y")
    c0, c1 = b.thread(), b.thread()
    wpte0 = c0.pte_write("x", "pa_b")
    c0.write("y")
    c1.invlpg_for(wpte0)
    c1.read("x")  # stale
    return Execution(b.build())


def _b_plus_read() -> Execution:
    b = ProgramBuilder()
    b.map("x", "pa_a").map("y", "pa_y")
    c0, c1 = b.thread(), b.thread()
    wpte0 = c0.pte_write("x", "pa_b")
    c0.read("y")
    c1.invlpg_for(wpte0)
    c1.read("x")
    return Execution(b.build())


def _b_plus_prior_read() -> Execution:
    """TLB-shootdown shape: C1 already had the mapping cached before the
    IPI; both the early read and the post-IPI stale read appear."""
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0, c1 = b.thread(), b.thread()
    wpte0 = c0.pte_write("x", "pa_b")
    c1.read("x")
    c1.invlpg_for(wpte0)
    c1.read("x")  # re-walk, stale outcome
    return Execution(b.build())


def _c_plus_read() -> Execution:
    b = ProgramBuilder()
    b.map("x", "pa_a").map("y", "pa_y")
    c0 = b.thread()
    w0 = c0.write("x")
    c0.read("x", walk=b.walk_of(w0))  # reads initial value: forbidden
    c0.read("y")
    return Execution(b.build())


def _c_plus_remote_write() -> Execution:
    b = ProgramBuilder()
    b.map("x", "pa_a").map("y", "pa_y")
    c0, c1 = b.thread(), b.thread()
    w0 = c0.write("x")
    c0.read("x", walk=b.walk_of(w0))
    c1.write("y")
    return Execution(b.build())


def _double_write_then_read() -> Execution:
    """W x; W x (capacity re-walk); R x reading the initial value —
    reduces to the coWR core by dropping the first write."""
    b = ProgramBuilder()
    b.map("x", "pa_a")
    c0 = b.thread()
    w0 = c0.write("x")
    w1 = c0.write("x")  # fresh walk (capacity eviction)
    c0.read("x", walk=b.walk_of(w1))
    program = b.build()
    return Execution(
        program,
        co=[(w0.eid, w1.eid), (b.dirty_of(w0).eid, b.dirty_of(w1).eid)],
    )


def _corr_core(extra: str) -> Execution:
    """coRR as an ELT (+ optional extraneous instruction)."""
    b = ProgramBuilder()
    b.map("x", "pa_a").map("y", "pa_y")
    c0, c1 = b.thread(), b.thread()
    w0 = c0.write("x")
    if extra == "write":
        c0.write("y")
    r1 = c1.read("x")
    if extra == "fence":
        c1.fence()
    r2 = c1.read("x", walk=b.walk_of(r1))
    if extra == "read":
        c1.read("y")
    program = b.build()
    return Execution(program, rf=[(w0.eid, r1.eid)])  # r2 reads initial


def _rmw_plus_read() -> Execution:
    b = ProgramBuilder()
    b.map("x", "pa_a").map("y", "pa_y")
    c0, c1 = b.thread(), b.thread()
    _r0, w1 = c0.rmw("x")
    w2 = c1.write("x")
    c1.read("y")
    program = b.build()
    wdb1 = b.dirty_of(w1)
    wdb2 = b.dirty_of(w2)
    return Execution(
        program,
        co=[(w2.eid, w1.eid), (wdb2.eid, wdb1.eid)],
    )


def _d_plus_remote_write() -> Execution:
    b = ProgramBuilder()
    b.map("x", "pa_a").map("y", "pa_y")
    c0, c1 = b.thread(), b.thread()
    r0 = c0.read("x")
    w1 = c0.write("x", walk=b.walk_of(r0))
    c1.write("y")
    program = b.build()
    return Execution(program, rf=[(w1.eid, r0.eid)])


# ----------------------------------------------------------------------
# Non-spanning tests (read-only: no Write, so no multiple outcomes).
# ----------------------------------------------------------------------
def _read_only(build: Callable[[ProgramBuilder], None]) -> Execution:
    b = ProgramBuilder()
    build(b)
    return Execution(b.build())


def _ns_shared_walk() -> Execution:
    def build(b: ProgramBuilder) -> None:
        c0 = b.thread()
        r0 = c0.read("x")
        c0.read("x", walk=b.walk_of(r0))

    return _read_only(build)


def _ns_refill() -> Execution:
    def build(b: ProgramBuilder) -> None:
        c0 = b.thread()
        c0.read("x")
        c0.invlpg("x")
        c0.read("x")

    return _read_only(build)


def _ns_single_read() -> Execution:
    def build(b: ProgramBuilder) -> None:
        c0 = b.thread()
        c0.read("x")

    return _read_only(build)


def _ns_two_vas() -> Execution:
    def build(b: ProgramBuilder) -> None:
        c0 = b.thread()
        c0.read("x")
        c0.read("y")

    return _read_only(build)


def _ns_cross_read() -> Execution:
    def build(b: ProgramBuilder) -> None:
        c0, c1 = b.thread(), b.thread()
        c0.read("x")
        c1.read("x")

    return _read_only(build)


def _ns_read_fence() -> Execution:
    def build(b: ProgramBuilder) -> None:
        c0 = b.thread()
        c0.read("x")
        c0.fence()
        c0.read("y")

    return _read_only(build)


def _ns_spurious_pair() -> Execution:
    def build(b: ProgramBuilder) -> None:
        c0 = b.thread()
        c0.read("x")
        c0.invlpg("x")
        c0.read("x")
        c0.invlpg("x")
        c0.read("x")

    return _read_only(build)


def _ns_hit_chain() -> Execution:
    def build(b: ProgramBuilder) -> None:
        c0 = b.thread()
        r0 = c0.read("x")
        c0.read("x", walk=b.walk_of(r0))
        c0.read("x", walk=b.walk_of(r0))

    return _read_only(build)


def _ns_two_cores() -> Execution:
    def build(b: ProgramBuilder) -> None:
        c0, c1 = b.thread(), b.thread()
        c0.read("x")
        c0.read("y")
        c1.read("y")
        c1.read("x")

    return _read_only(build)


def coatcheck_suite() -> list[CoatCheckTest]:
    """The 40-test reconstructed suite."""
    tests: list[CoatCheckTest] = [
        # ---- category-1 candidates (minimal, synthesized verbatim) ----
        CoatCheckTest(
            "ptwalk2",
            "Fig 10a: stale walk after remap+INVLPG (forbidden)",
            _program_a_forbidden(),
        ),
        CoatCheckTest(
            "ptwalk1",
            "remap+INVLPG then a fresh walk (permitted outcome variant)",
            _program_a_permitted(),
        ),
        CoatCheckTest(
            "ipi2",
            "Fig 11: stale mapping observed after the IPI lands (forbidden)",
            _program_b_forbidden(),
        ),
        CoatCheckTest(
            "ipi3",
            "IPI then fresh mapping (permitted outcome variant)",
            _program_b_permitted(),
        ),
        CoatCheckTest(
            "cowr_pt",
            "write then same-location read returning the initial value",
            _program_c(read_from_write=False),
        ),
        CoatCheckTest(
            "cowr_pt_ok",
            "write then same-location read returning the write (permitted)",
            _program_c(read_from_write=True),
        ),
        CoatCheckTest(
            "ptwsrc",
            "read sources the TLB entry later hit by the write it reads from",
            _program_d(),
        ),
        # ---- category-2 candidates (reducible supersets) --------------
        CoatCheckTest(
            "dirtybit3",
            "Fig 10b: permitted; minus {W3} it is ptwalk2",
            fig10b_dirtybit3().execution,
        ),
        CoatCheckTest("ptwalk3", "ptwalk2 plus an unrelated read", _a_plus_read()),
        CoatCheckTest("ptwalk4", "ptwalk2 plus an unrelated write", _a_plus_write()),
        CoatCheckTest("ptwalk5", "ptwalk2 plus an MFENCE", _a_plus_fence()),
        CoatCheckTest("ipi4", "Fig 11 plus an unrelated write", _b_plus_write()),
        CoatCheckTest("ipi5", "Fig 11 plus an unrelated read", _b_plus_read()),
        CoatCheckTest(
            "tlbshoot",
            "shootdown with the mapping pre-cached on the remote core",
            _b_plus_prior_read(),
        ),
        CoatCheckTest("dirtybit1", "coWR core plus an unrelated read", _c_plus_read()),
        CoatCheckTest(
            "dirtybit2",
            "double write then read of the initial value",
            _double_write_then_read(),
        ),
        CoatCheckTest(
            "dirtybit4",
            "coWR core plus an unrelated remote write",
            _c_plus_remote_write(),
        ),
        CoatCheckTest("corr_pt", "coRR core plus an unrelated write", _corr_core("write")),
        CoatCheckTest("corr_pt2", "coRR core plus an unrelated read", _corr_core("read")),
        CoatCheckTest("corr_pt3", "coRR core plus an MFENCE", _corr_core("fence")),
        CoatCheckTest(
            "rmw_pt",
            "intervening write inside an RMW plus an unrelated read",
            _rmw_plus_read(),
        ),
        CoatCheckTest(
            "ptwsrc2",
            "ptw-source causality core plus an unrelated remote write",
            _d_plus_remote_write(),
        ),
        # ---- non-spanning (read-only) ----------------------------------
        CoatCheckTest("ro_share", "Fig 5a: two reads share one walk", _ns_shared_walk()),
        CoatCheckTest("ro_refill", "Fig 5b: INVLPG forces a re-walk", _ns_refill()),
        CoatCheckTest("ro_basic", "single translated read", _ns_single_read()),
        CoatCheckTest("ro_two_vas", "two reads, two translations", _ns_two_vas()),
        CoatCheckTest("ro_cross", "same VA read on two cores", _ns_cross_read()),
        CoatCheckTest("ro_fence", "reads separated by MFENCE", _ns_read_fence()),
        CoatCheckTest("ro_spur2", "two spurious invalidations", _ns_spurious_pair()),
        CoatCheckTest("ro_hits", "three reads on one TLB entry", _ns_hit_chain()),
        CoatCheckTest("ro_2core", "read-only cross-core interleaving", _ns_two_cores()),
    ]
    # ---- unsupported IPI semantics (counted, not modeled) -------------
    for index in range(1, 10):
        tests.append(
            CoatCheckTest(
                f"intr{index}",
                "exercises fixed-interrupt IPI semantics beyond INVLPG "
                "(TransForm models INVLPG only, §III-B2)",
                execution=None,
                uses_unsupported_ipi=True,
            )
        )
    return tests

"""Classic user-level MCM litmus tests (MCM mode: no VM events).

Used to validate the x86-TSO / SC models against their textbook verdicts
and to reproduce the paper's cited user-level synthesis baseline ([30]).
Each constructor documents the canonical x86-TSO verdict of the candidate
execution it returns.
"""

from __future__ import annotations

from ..mtm import Execution, ProgramBuilder
from .figures import PaperExample


def sb() -> PaperExample:
    """Store buffering, both reads return 0.  TSO: *permitted* (the W->R
    reordering TSO relaxes); SC: forbidden."""
    b = ProgramBuilder(mcm_mode=True)
    c0, c1 = b.thread(), b.thread()
    w0 = c0.write("x")
    r1 = c0.read("y")
    w2 = c1.write("y")
    r3 = c1.read("x")
    execution = Execution(b.build())  # both reads read the initial value
    return PaperExample("sb", execution, {"W0": w0, "R1": r1, "W2": w2, "R3": r3})


def sb_fence() -> PaperExample:
    """Store buffering with MFENCEs: *forbidden* under TSO (causality via
    the fence term)."""
    b = ProgramBuilder(mcm_mode=True)
    c0, c1 = b.thread(), b.thread()
    w0 = c0.write("x")
    c0.fence()
    r1 = c0.read("y")
    w2 = c1.write("y")
    c1.fence()
    r3 = c1.read("x")
    execution = Execution(b.build())
    return PaperExample(
        "sb_fence", execution, {"W0": w0, "R1": r1, "W2": w2, "R3": r3}
    )


def mp() -> PaperExample:
    """Message passing: consumer sees the flag but not the data.
    TSO: *forbidden* (W->W and R->R both preserved)."""
    b = ProgramBuilder(mcm_mode=True)
    c0, c1 = b.thread(), b.thread()
    w0 = c0.write("x")
    w1 = c0.write("y")
    r2 = c1.read("y")
    r3 = c1.read("x")
    execution = Execution(b.build(), rf=[(w1.eid, r2.eid)])
    return PaperExample("mp", execution, {"W0": w0, "W1": w1, "R2": r2, "R3": r3})


def lb() -> PaperExample:
    """Load buffering: each load sees the other thread's later store.
    TSO: *forbidden* (R->W preserved)."""
    b = ProgramBuilder(mcm_mode=True)
    c0, c1 = b.thread(), b.thread()
    r0 = c0.read("x")
    w1 = c0.write("y")
    r2 = c1.read("y")
    w3 = c1.write("x")
    execution = Execution(b.build(), rf=[(w3.eid, r0.eid), (w1.eid, r2.eid)])
    return PaperExample("lb", execution, {"R0": r0, "W1": w1, "R2": r2, "W3": w3})


def co_rr() -> PaperExample:
    """Read-read coherence: two same-address reads observe a remote write
    out of order.  TSO: *forbidden* (sc_per_loc and causality)."""
    b = ProgramBuilder(mcm_mode=True)
    c0, c1 = b.thread(), b.thread()
    w0 = c0.write("x")
    r1 = c1.read("x")
    r2 = c1.read("x")
    execution = Execution(b.build(), rf=[(w0.eid, r1.eid)])  # r2 reads 0
    return PaperExample("co_rr", execution, {"W0": w0, "R1": r1, "R2": r2})


def co_ww() -> PaperExample:
    """Write-write coherence: coherence order contradicts program order.
    TSO: *forbidden* (sc_per_loc)."""
    b = ProgramBuilder(mcm_mode=True)
    c0 = b.thread()
    w0 = c0.write("x")
    w1 = c0.write("x")
    execution = Execution(b.build(), co=[(w1.eid, w0.eid)])
    return PaperExample("co_ww", execution, {"W0": w0, "W1": w1})


def co_wr() -> PaperExample:
    """A read ignores the latest same-address write of its own thread.
    TSO: *forbidden* (sc_per_loc)."""
    b = ProgramBuilder(mcm_mode=True)
    c0 = b.thread()
    w0 = c0.write("x")
    r1 = c0.read("x")
    execution = Execution(b.build())  # r1 reads the initial value
    return PaperExample("co_wr", execution, {"W0": w0, "R1": r1})


def co_rw1() -> PaperExample:
    """A read observes the write that follows it in program order.
    TSO: *forbidden* (sc_per_loc)."""
    b = ProgramBuilder(mcm_mode=True)
    c0 = b.thread()
    r0 = c0.read("x")
    w1 = c0.write("x")
    execution = Execution(b.build(), rf=[(w1.eid, r0.eid)])
    return PaperExample("co_rw1", execution, {"R0": r0, "W1": w1})


def rmw_intervene() -> PaperExample:
    """A remote write slips between the read and write of an atomic RMW.
    TSO: *forbidden* (rmw_atomicity)."""
    b = ProgramBuilder(mcm_mode=True)
    c0, c1 = b.thread(), b.thread()
    r0, w1 = c0.rmw("x")
    w2 = c1.write("x")
    execution = Execution(b.build(), co=[(w2.eid, w1.eid)])
    # r0 reads the initial value; w2 is co-between init and w1.
    return PaperExample("rmw_intervene", execution, {"R0": r0, "W1": w1, "W2": w2})


def rmw_atomic_ok() -> PaperExample:
    """The same program with the remote write ordered after the RMW pair:
    *permitted*."""
    b = ProgramBuilder(mcm_mode=True)
    c0, c1 = b.thread(), b.thread()
    r0, w1 = c0.rmw("x")
    w2 = c1.write("x")
    execution = Execution(b.build(), co=[(w1.eid, w2.eid)])
    return PaperExample("rmw_atomic_ok", execution, {"R0": r0, "W1": w1, "W2": w2})


ALL_CLASSICS = {
    "sb": sb,
    "sb_fence": sb_fence,
    "mp": mp,
    "lb": lb,
    "co_rr": co_rr,
    "co_ww": co_ww,
    "co_wr": co_wr,
    "co_rw1": co_rw1,
    "rmw_intervene": rmw_intervene,
    "rmw_atomic_ok": rmw_atomic_ok,
}

#: Canonical x86-TSO verdicts (True = permitted).
TSO_VERDICTS = {
    "sb": True,
    "sb_fence": False,
    "mp": False,
    "lb": False,
    "co_rr": False,
    "co_ww": False,
    "co_wr": False,
    "co_rw1": False,
    "rmw_intervene": False,
    "rmw_atomic_ok": True,
}

#: Canonical SC verdicts.
SC_VERDICTS = {
    "sb": False,
    "sb_fence": False,
    "mp": False,
    "lb": False,
    "co_rr": False,
    "co_ww": False,
    "co_wr": False,
    "co_rw1": False,
    "rmw_intervene": False,
    "rmw_atomic_ok": True,
}

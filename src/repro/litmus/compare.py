"""The §VI-B comparison tool: classify hand-written ELTs against a
synthesized corpus.

The paper's automated comparison "first checks if TransForm would
synthesize the ELT verbatim in the synthesized suite (category 1), and if
not, subsequently tests for the ELT's inclusion in category 2 by trying to
remove subsets of instructions from the ELT to see if it can be minimized
to a TransForm-synthesizable test."  This module implements exactly that:

* **UNSUPPORTED** — the test uses IPI semantics outside the vocabulary;
* **NOT_SPANNING** — the test fails a spanning-set criterion (§IV-B): it
  has no write, or no candidate execution of its program can violate the
  transistency predicate;
* **CATEGORY_1** — the test's program canonicalizes to a synthesized one;
* **CATEGORY_2** — removing some union of closed relaxation groups yields
  a synthesized program (the reduction is reported);
* **UNMATCHED** — relevant but not matched within the corpus bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from itertools import combinations
from typing import Optional

from ..models import MemoryModel
from ..mtm import Program
from ..synth import (
    canonical_program_key,
    enumerate_witnesses,
    relaxed_program,
    removal_groups,
)
from ..synth.canon import ProgramKey
from .coatcheck import CoatCheckTest


class Category(Enum):
    UNSUPPORTED = "unsupported-ipi"
    NOT_SPANNING = "not-spanning"
    CATEGORY_1 = "category-1"
    CATEGORY_2 = "category-2"
    UNMATCHED = "unmatched"


@dataclass
class Classification:
    test: CoatCheckTest
    category: Category
    matched_key: Optional[ProgramKey] = None
    removed_events: frozenset[str] = frozenset()

    @property
    def name(self) -> str:
        return self.test.name


@dataclass
class ComparisonReport:
    """§VI-B roll-up over a whole suite."""

    classifications: list[Classification] = field(default_factory=list)

    def count(self, category: Category) -> int:
        return sum(1 for c in self.classifications if c.category is category)

    @property
    def relevant(self) -> int:
        return self.count(Category.CATEGORY_1) + self.count(
            Category.CATEGORY_2
        ) + self.count(Category.UNMATCHED)

    def category1_matched_programs(self) -> set[ProgramKey]:
        return {
            c.matched_key
            for c in self.classifications
            if c.category is Category.CATEGORY_1 and c.matched_key is not None
        }

    def summary_rows(self) -> list[tuple[str, int]]:
        return [
            ("total hand-written tests", len(self.classifications)),
            ("unsupported IPI semantics", self.count(Category.UNSUPPORTED)),
            ("fail spanning-set criteria", self.count(Category.NOT_SPANNING)),
            ("relevant for comparison", self.relevant),
            ("category 1 (verbatim)", self.count(Category.CATEGORY_1)),
            (
                "distinct synthesized programs matched by category 1",
                len(self.category1_matched_programs()),
            ),
            ("category 2 (reducible)", self.count(Category.CATEGORY_2)),
            ("unmatched", self.count(Category.UNMATCHED)),
        ]


def _program_can_violate(program: Program, model: MemoryModel) -> bool:
    """Spanning criterion 2: some candidate execution is forbidden."""
    for execution in enumerate_witnesses(program):
        if model.forbids(execution):
            return True
    return False


def _has_write(program: Program) -> bool:
    return any(e.is_write_like for e in program.events.values())


def classify_test(
    test: CoatCheckTest,
    synthesized_keys: set[ProgramKey],
    model: MemoryModel,
    max_reduction_groups: int = 3,
) -> Classification:
    """Classify one hand-written test against a synthesized corpus."""
    if test.uses_unsupported_ipi or test.execution is None:
        return Classification(test, Category.UNSUPPORTED)
    program = test.execution.program
    if not _has_write(program) or not _program_can_violate(program, model):
        return Classification(test, Category.NOT_SPANNING)
    key = canonical_program_key(program)
    if key in synthesized_keys:
        return Classification(test, Category.CATEGORY_1, matched_key=key)
    # Category-2 search: remove unions of closed relaxation groups.
    groups = removal_groups(program)
    for size in range(1, min(max_reduction_groups, len(groups)) + 1):
        for subset in combinations(groups, size):
            removed = frozenset().union(*subset)
            if len(removed) >= len(program.events):
                continue
            reduced = relaxed_program(program, removed)
            reduced_key = canonical_program_key(reduced)
            if reduced_key in synthesized_keys:
                return Classification(
                    test,
                    Category.CATEGORY_2,
                    matched_key=reduced_key,
                    removed_events=removed,
                )
    return Classification(test, Category.UNMATCHED)


def compare_suite(
    tests: list[CoatCheckTest],
    synthesized_keys: set[ProgramKey],
    model: MemoryModel,
) -> ComparisonReport:
    report = ComparisonReport()
    for test in tests:
        report.classifications.append(
            classify_test(test, synthesized_keys, model)
        )
    return report

"""Textual rendering and serialization of ELTs.

Two formats:

* :func:`format_execution` — a human-readable, paper-figure-like listing
  (per-core columns, ghost instructions indented, witness and key derived
  edges listed below);
* :func:`serialize_elt` — a compact line-oriented machine format that
  round-trips through :mod:`repro.litmus.parser`.

Events are addressed positionally in the machine format: ``T.S`` is the
non-ghost instruction at slot S of thread T; ``walk:T.S`` / ``wdb:T.S``
name its ghost page-table walk / dirty-bit write.
"""

from __future__ import annotations

from typing import Mapping

from ..mtm import Event, EventKind, Execution, Program, names


def _position_names(program: Program) -> Mapping[str, str]:
    """eid -> positional reference (T.S, walk:T.S, wdb:T.S)."""
    out: dict[str, str] = {}
    for core, thread in enumerate(program.threads):
        for slot, eid in enumerate(thread):
            out[eid] = f"{core}.{slot}"
            for ghost in program.ghosts.get(eid, ()):
                kind = program.events[ghost].kind
                prefix = "walk" if kind is EventKind.PT_WALK else "wdb"
                out[ghost] = f"{prefix}:{core}.{slot}"
    return out


def _instruction_text(event: Event, program: Program) -> str:
    if event.kind is EventKind.FENCE:
        return "MFENCE"
    if event.kind is EventKind.TLB_FLUSH:
        return "TLBFLUSH"
    if event.kind is EventKind.PTE_WRITE:
        return f"WPTE {event.va} -> {event.pa}"
    return f"{event.kind.value} {event.va}"


def format_program(program: Program) -> str:
    """Figure-style listing: one section per core, ghosts indented."""
    remap_sources = {inv: pte for pte, inv in program.remap}
    refs = _position_names(program)
    rmw_reads = {r for r, _ in program.rmw}
    lines: list[str] = []
    for core, thread in enumerate(program.threads):
        lines.append(f"C{core}:")
        for eid in thread:
            event = program.events[eid]
            note = ""
            if eid in remap_sources:
                note = f"   (remap of {refs[remap_sources[eid]]})"
            if eid in rmw_reads:
                note = "   (rmw with next)"
            lines.append(f"  [{refs[eid]}] {_instruction_text(event, program)}{note}")
            for ghost in program.ghosts.get(eid, ()):
                g = program.events[ghost]
                lines.append(f"      `- {g.kind.value} pte({g.va})")
    if not program.threads:
        lines.append("(empty)")
    return "\n".join(lines)


def format_execution(execution: Execution, show_derived: bool = True) -> str:
    """Program listing plus witness edges and key derived relations."""
    program = execution.program
    refs = _position_names(program)
    lines = [format_program(program)]

    def edge_lines(title: str, pairs) -> None:
        pairs = sorted(pairs, key=lambda ab: (refs[ab[0]], refs[ab[1]]))
        if pairs:
            rendered = ", ".join(f"{refs[a]} -> {refs[b]}" for a, b in pairs)
            lines.append(f"  {title}: {rendered}")

    lines.append("witness:")
    edge_lines("rf", execution._rf)
    edge_lines("co", execution.co)
    edge_lines("co_pa", execution.co_pa)
    if show_derived:
        lines.append("derived:")
        for name in (names.FR, names.RF_PTW, names.RF_PA, names.FR_VA):
            edge_lines(name, execution.relation(name).tuples)
        outcome = []
        for eid, event in program.events.items():
            if event.kind is EventKind.READ:
                sources = [a for a, b in execution._rf if b == eid]
                src = refs[sources[0]] if sources else "initial"
                outcome.append(f"{refs[eid]}={src}")
        if outcome:
            lines.append("  reads: " + ", ".join(sorted(outcome)))
    return "\n".join(lines)


def serialize_elt(execution: Execution) -> str:
    """Round-trippable machine format (see module docstring)."""
    program = execution.program
    refs = _position_names(program)
    wpte_order = [
        eid
        for thread in program.threads
        for eid in thread
        if program.events[eid].kind is EventKind.PTE_WRITE
    ]
    wpte_index = {eid: i for i, eid in enumerate(wpte_order)}
    remap_sources = {inv: pte for pte, inv in program.remap}

    lines = ["elt"]
    if program.mcm_mode:
        lines.append("mcm")
    for va in sorted(program.initial_map):
        lines.append(f"map {va} {program.initial_map[va]}")
    for core, thread in enumerate(program.threads):
        lines.append(f"thread {core}")
        for eid in thread:
            event = program.events[eid]
            if event.kind is EventKind.FENCE:
                lines.append("  fence")
                continue
            if event.kind is EventKind.TLB_FLUSH:
                lines.append("  tlbflush")
                continue
            if event.kind is EventKind.PTE_WRITE:
                lines.append(f"  wpte {event.va} {event.pa}")
                continue
            if event.kind is EventKind.INVLPG:
                source = remap_sources.get(eid)
                if source is None:
                    lines.append(f"  invlpg {event.va}")
                else:
                    lines.append(f"  ipi {wpte_index[source]}")
                continue
            has_walk = any(
                program.events[g].kind is EventKind.PT_WALK
                for g in program.ghosts.get(eid, ())
            )
            mode = "miss" if has_walk else "hit"
            if program.mcm_mode:
                mode = "plain"
            op = "r" if event.kind is EventKind.READ else "w"
            lines.append(f"  {op} {event.va} {mode}")
    for r, w in sorted(program.rmw, key=lambda p: refs[p[0]]):
        lines.append(f"rmw {refs[r]} {refs[w]}")
    for a, b in sorted(execution._rf, key=lambda p: (refs[p[0]], refs[p[1]])):
        lines.append(f"rf {refs[a]} {refs[b]}")
    for a, b in sorted(execution.co, key=lambda p: (refs[p[0]], refs[p[1]])):
        lines.append(f"co {refs[a]} {refs[b]}")
    for a, b in sorted(execution.co_pa, key=lambda p: (refs[p[0]], refs[p[1]])):
        lines.append(f"co_pa {refs[a]} {refs[b]}")
    return "\n".join(lines) + "\n"

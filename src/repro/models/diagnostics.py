"""Violation diagnostics: *why* is an execution forbidden?

Every acyclicity axiom in the catalog declares its edge components (e.g.
``invlpg`` = fr_va + ^po + remap).  When the axiom fails, this module
extracts a concrete cycle from the component union and labels each edge
with the relations that contribute it — the same information the paper's
figures convey with their colored edges, and the basis of its claim that
diagnostic axioms "localize transistency bugs" (§V-A2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

import networkx as nx

from ..errors import SynthesisError
from ..mtm import Execution, Vocabulary, names
from ..relational import TupleSet
from .base import MemoryModel

ComponentFn = Callable[[Vocabulary], Mapping[str, TupleSet]]


def _tso_components(v: Vocabulary) -> Mapping[str, TupleSet]:
    from .axioms import fence_order, ppo_tso

    return {
        names.RFE: v.rfe,
        names.CO: v.co,
        names.FR: v.fr,
        "ppo": ppo_tso(v),
        "fence": fence_order(v),
    }


#: Edge components per acyclicity axiom (names match the catalog).
AXIOM_COMPONENTS: dict[str, ComponentFn] = {
    "sc_per_loc": lambda v: {
        names.RF: v.rf,
        names.CO: v.co,
        names.FR: v.fr,
        names.PO_LOC: v.po_loc,
    },
    "causality": _tso_components,
    "invlpg": lambda v: {
        names.FR_VA: v.fr_va,
        names.PO: v.po,
        names.REMAP: v.remap,
    },
    "tlb_causality": lambda v: {
        names.PTW_SOURCE: v.ptw_source,
        names.COM: v.com,
    },
    "sc_order": lambda v: {
        names.COM: v.com,
        names.PO: v.po & v.memory_event.product(v.memory_event),
    },
}


@dataclass
class LabeledEdge:
    source: str
    target: str
    labels: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.source} -[{'+'.join(self.labels)}]-> {self.target}"


@dataclass
class CycleExplanation:
    """A concrete cycle witnessing one axiom violation."""

    axiom: str
    edges: tuple[LabeledEdge, ...]

    @property
    def events(self) -> tuple[str, ...]:
        return tuple(edge.source for edge in self.edges)

    def __str__(self) -> str:
        chain = "\n  ".join(str(edge) for edge in self.edges)
        return f"{self.axiom} cycle:\n  {chain}"


def explain_axiom_violation(
    execution: Execution, axiom_name: str
) -> Optional[CycleExplanation]:
    """A labeled cycle for one violated acyclicity axiom, or None if the
    axiom holds on this execution."""
    component_fn = AXIOM_COMPONENTS.get(axiom_name)
    if component_fn is None:
        raise SynthesisError(
            f"no edge components registered for axiom {axiom_name!r}"
        )
    components = component_fn(Vocabulary(execution.relations))
    graph = nx.DiGraph()
    labels: dict[tuple[str, str], list[str]] = {}
    for label, relation in components.items():
        for a, b in relation:
            graph.add_edge(a, b)
            labels.setdefault((a, b), []).append(label)
    try:
        cycle = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return None
    edges = tuple(
        LabeledEdge(a, b, tuple(sorted(labels[(a, b)]))) for a, b in cycle
    )
    return CycleExplanation(axiom_name, edges)


def explain_verdict(
    execution: Execution, model: MemoryModel
) -> list[CycleExplanation]:
    """One labeled cycle per violated acyclicity axiom of the model.

    Axioms without registered components (e.g. the emptiness-style
    rmw_atomicity) are reported without a cycle by the caller; this
    function covers the acyclicity family.
    """
    verdict = model.check(execution)
    explanations: list[CycleExplanation] = []
    for axiom_name in verdict.violated:
        if axiom_name not in AXIOM_COMPONENTS:
            continue
        explanation = explain_axiom_violation(execution, axiom_name)
        if explanation is not None:
            explanations.append(explanation)
    return explanations


def render_explanations(
    execution: Execution, model: MemoryModel
) -> str:
    """Human-readable 'why forbidden' report."""
    verdict = model.check(execution)
    if verdict.permitted:
        return f"{model.name}: permitted (no cycles to explain)"
    lines = [str(verdict)]
    for explanation in explain_verdict(execution, model):
        lines.append(str(explanation))
    remaining = [
        name for name in verdict.violated if name not in AXIOM_COMPONENTS
    ]
    for name in remaining:
        lines.append(f"{name}: violated (non-acyclicity axiom)")
    return "\n".join(lines)

"""Model-vs-model comparison over ELT executions.

Given two models (say, correct x86t_elt and an erratum variant) and a set
of candidate executions, classify each execution by the pair of verdicts.
Executions *forbidden by the reference but permitted by the subject* are
the discriminating tests: observing one on hardware proves the subject
model (not the reference) describes the machine — exactly how synthesized
ELTs "inform system designers about the software-visible effects of VM
implementations" (paper §I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

from ..mtm import Execution
from .base import MemoryModel


class Agreement(Enum):
    BOTH_PERMIT = "both-permit"
    BOTH_FORBID = "both-forbid"
    ONLY_REFERENCE_FORBIDS = "only-reference-forbids"  # discriminating
    ONLY_SUBJECT_FORBIDS = "only-subject-forbids"


@dataclass
class ModelComparison:
    reference: str
    subject: str
    buckets: dict[Agreement, list[Execution]] = field(
        default_factory=lambda: {a: [] for a in Agreement}
    )

    @property
    def discriminating(self) -> list[Execution]:
        """Executions the reference forbids but the subject permits — the
        bug-detector tests."""
        return self.buckets[Agreement.ONLY_REFERENCE_FORBIDS]

    def counts(self) -> dict[str, int]:
        return {a.value: len(execs) for a, execs in self.buckets.items()}

    @property
    def equivalent_on_inputs(self) -> bool:
        return not (
            self.buckets[Agreement.ONLY_REFERENCE_FORBIDS]
            or self.buckets[Agreement.ONLY_SUBJECT_FORBIDS]
        )


def compare_models(
    reference: MemoryModel,
    subject: MemoryModel,
    executions: Iterable[Execution],
) -> ModelComparison:
    """Bucket executions by the verdict pair (reference, subject)."""
    comparison = ModelComparison(reference.name, subject.name)
    for execution in executions:
        ref_permits = reference.permits(execution)
        sub_permits = subject.permits(execution)
        if ref_permits and sub_permits:
            bucket = Agreement.BOTH_PERMIT
        elif not ref_permits and not sub_permits:
            bucket = Agreement.BOTH_FORBID
        elif not ref_permits and sub_permits:
            bucket = Agreement.ONLY_REFERENCE_FORBIDS
        else:
            bucket = Agreement.ONLY_SUBJECT_FORBIDS
        comparison.buckets[bucket].append(execution)
    return comparison


def discriminating_elts(
    reference: MemoryModel,
    subject: MemoryModel,
    executions: Iterable[Execution],
) -> list[Execution]:
    """The tests that distinguish ``subject`` hardware from ``reference``."""
    return compare_models(reference, subject, executions).discriminating

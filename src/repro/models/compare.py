"""Model-vs-model comparison over ELT executions.

Given two models (say, correct x86t_elt and an erratum variant) and a set
of candidate executions, classify each execution by the pair of verdicts.
Executions *forbidden by the reference but permitted by the subject* are
the discriminating tests: observing one on hardware proves the subject
model (not the reference) describes the machine — exactly how synthesized
ELTs "inform system designers about the software-visible effects of VM
implementations" (paper §I).

:class:`PairClassifier` is the single-pass engine behind the comparison:
it deduplicates the two models' axioms (catalog variants are built from
the *same* :class:`~repro.models.base.Axiom` constants, so e.g. x86t_elt
and x86t_amd_bug share four of their combined nine axioms) and evaluates
each distinct axiom at most once per execution.  The differential
synthesis pipeline (:mod:`repro.conformance`) runs it over every
candidate execution of a bounded enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, List, Optional, Tuple

from ..mtm import Execution
from .base import Axiom, MemoryModel


class Agreement(Enum):
    BOTH_PERMIT = "both-permit"
    BOTH_FORBID = "both-forbid"
    ONLY_REFERENCE_FORBIDS = "only-reference-forbids"  # discriminating
    ONLY_SUBJECT_FORBIDS = "only-subject-forbids"


@dataclass
class ModelComparison:
    reference: str
    subject: str
    buckets: dict[Agreement, list[Execution]] = field(
        default_factory=lambda: {a: [] for a in Agreement}
    )

    @property
    def discriminating(self) -> list[Execution]:
        """Executions the reference forbids but the subject permits — the
        bug-detector tests."""
        return self.buckets[Agreement.ONLY_REFERENCE_FORBIDS]

    def counts(self) -> dict[str, int]:
        return {a.value: len(execs) for a, execs in self.buckets.items()}

    @property
    def equivalent_on_inputs(self) -> bool:
        return not (
            self.buckets[Agreement.ONLY_REFERENCE_FORBIDS]
            or self.buckets[Agreement.ONLY_SUBJECT_FORBIDS]
        )


class AxiomTable:
    """Deduplicated axiom slots across *any* number of models.

    The n-model generalization of :class:`PairClassifier`'s sharing
    trick: all models' axioms are merged into one slot list keyed by
    (name, predicate), so an axiom shared by k models occupies one slot
    and is evaluated at most once per execution no matter how many model
    pairs are being classified.  The fused all-pairs conformance pipeline
    (:func:`repro.conformance.run_multi_diff_pipeline`) builds one table
    over every reference and subject in flight: classifying a witness
    under 20 catalog pairs costs one evaluation per *distinct* axiom
    (typically 6), not one per pair-slot (45).
    """

    def __init__(self, models: Iterable[MemoryModel]) -> None:
        self.models: List[MemoryModel] = list(models)
        self._axioms: List[Axiom] = []
        self._slots: List[List[int]] = []
        slot_of: dict = {}
        for model in self.models:
            slots: List[int] = []
            for axiom in model.axioms:
                identity = (axiom.name, axiom.predicate)
                index = slot_of.get(identity)
                if index is None:
                    index = len(self._axioms)
                    slot_of[identity] = index
                    self._axioms.append(axiom)
                slots.append(index)
            self._slots.append(slots)

    @property
    def distinct_axiom_count(self) -> int:
        return len(self._axioms)

    def evaluator(self, execution: Execution):
        """A ``permits(model_index) -> bool`` callable for one execution,
        memoizing each distinct axiom's verdict across models (and
        preserving the all-true / first-false short-circuit per model)."""
        cache: List[Optional[bool]] = [None] * len(self._axioms)
        axioms = self._axioms
        slots = self._slots

        def permits(model_index: int) -> bool:
            for index in slots[model_index]:
                result = cache[index]
                if result is None:
                    result = axioms[index].holds(execution)
                    cache[index] = result
                if not result:
                    return False
            return True

        return permits


class PairClassifier:
    """Single-pass verdict-pair classification under two models.

    The two models' axioms are merged into one slot list, deduplicated by
    (name, predicate): an axiom appearing in both models — the common case
    for catalog variants, which are built by adding/removing axioms from a
    shared base — occupies one slot and is evaluated once per execution.
    Evaluation is lazy and memoized per execution, so the usual all-true /
    first-false short-circuit of :meth:`MemoryModel.permits` is preserved
    wherever slots are not shared.
    """

    def __init__(self, reference: MemoryModel, subject: MemoryModel) -> None:
        self.reference = reference
        self.subject = subject
        self._axioms: List[Axiom] = []
        slot_of: dict = {}
        self._reference_slots: List[int] = []
        self._subject_slots: List[int] = []
        for model, slots in (
            (reference, self._reference_slots),
            (subject, self._subject_slots),
        ):
            for axiom in model.axioms:
                identity = (axiom.name, axiom.predicate)
                index = slot_of.get(identity)
                if index is None:
                    index = len(self._axioms)
                    slot_of[identity] = index
                    self._axioms.append(axiom)
                slots.append(index)

    @property
    def shared_axiom_count(self) -> int:
        """How many axiom slots the two models share."""
        return (
            len(self._reference_slots)
            + len(self._subject_slots)
            - len(self._axioms)
        )

    def verdicts(self, execution: Execution) -> Tuple[bool, bool]:
        """(reference permits, subject permits) with shared evaluation."""
        cache: List[Optional[bool]] = [None] * len(self._axioms)

        def holds(index: int) -> bool:
            result = cache[index]
            if result is None:
                result = self._axioms[index].holds(execution)
                cache[index] = result
            return result

        ref_permits = all(holds(i) for i in self._reference_slots)
        sub_permits = all(holds(i) for i in self._subject_slots)
        return ref_permits, sub_permits

    def classify(self, execution: Execution) -> Agreement:
        ref_permits, sub_permits = self.verdicts(execution)
        if ref_permits:
            return (
                Agreement.BOTH_PERMIT
                if sub_permits
                else Agreement.ONLY_SUBJECT_FORBIDS
            )
        return (
            Agreement.ONLY_REFERENCE_FORBIDS
            if sub_permits
            else Agreement.BOTH_FORBID
        )


def compare_models(
    reference: MemoryModel,
    subject: MemoryModel,
    executions: Iterable[Execution],
) -> ModelComparison:
    """Bucket executions by the verdict pair (reference, subject)."""
    comparison = ModelComparison(reference.name, subject.name)
    classifier = PairClassifier(reference, subject)
    for execution in executions:
        comparison.buckets[classifier.classify(execution)].append(execution)
    return comparison


def discriminating_elts(
    reference: MemoryModel,
    subject: MemoryModel,
    executions: Iterable[Execution],
) -> list[Execution]:
    """The tests that distinguish ``subject`` hardware from ``reference``."""
    return compare_models(reference, subject, executions).discriminating

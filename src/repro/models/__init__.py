"""Axiomatic memory models: SC, x86-TSO, and the paper's x86t_elt MTM.

Public surface:

* :class:`Axiom`, :class:`MemoryModel`, :class:`Verdict` — infrastructure.
* :func:`x86tso`, :func:`x86t_elt`, :func:`sequential_consistency`,
  :func:`x86t_amd_bug` — the catalog.
* :data:`X86T_ELT_AXIOM_NAMES` — Fig 9 axiom order.
"""

from .base import Axiom, MemoryModel, Verdict
from .catalog import (
    CATALOG,
    CAUSALITY,
    INVLPG,
    RMW_ATOMICITY,
    SC_ORDER,
    SC_PER_LOC,
    TLB_CAUSALITY,
    X86T_ELT_AXIOM_NAMES,
    catalog_models,
    sc_t,
    sequential_consistency,
    x86t_amd_bug,
    x86t_elt,
    x86tso,
)
from .compare import (
    Agreement,
    AxiomTable,
    ModelComparison,
    PairClassifier,
    compare_models,
    discriminating_elts,
)
from .diagnostics import (
    CycleExplanation,
    LabeledEdge,
    explain_axiom_violation,
    explain_verdict,
    render_explanations,
)

__all__ = [
    "Axiom",
    "MemoryModel",
    "Verdict",
    "SC_PER_LOC",
    "RMW_ATOMICITY",
    "CAUSALITY",
    "INVLPG",
    "TLB_CAUSALITY",
    "SC_ORDER",
    "X86T_ELT_AXIOM_NAMES",
    "CATALOG",
    "catalog_models",
    "sequential_consistency",
    "x86tso",
    "x86t_elt",
    "x86t_amd_bug",
    "sc_t",
    "Agreement",
    "AxiomTable",
    "ModelComparison",
    "PairClassifier",
    "compare_models",
    "discriminating_elts",
    "CycleExplanation",
    "LabeledEdge",
    "explain_axiom_violation",
    "explain_verdict",
    "render_explanations",
]

"""Memory model infrastructure.

A :class:`MemoryModel` is a named conjunction of :class:`Axiom` predicates
over the MTM vocabulary.  An MCM's conjunction is its *consistency
predicate*; an MTM's is its *transistency predicate* (paper §II-A, §V-A).

Each axiom is a single function written against the generic relational
protocol (see :mod:`repro.relational.ast`), so the same definition:

* evaluates concretely (fast tuple-set algebra) to check a candidate
  execution — :meth:`MemoryModel.check`;
* compiles symbolically into a relational :class:`~repro.relational.ast.Formula`
  for the SAT backend and for documentation — :meth:`MemoryModel.formula`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Union

from ..errors import SynthesisError
from ..mtm import Execution, Vocabulary, symbolic_vocabulary
from ..relational.ast import Formula, conj

AxiomPredicate = Callable[[Vocabulary], Union[bool, Formula]]


@dataclass(frozen=True)
class Axiom:
    """One named axiom of a consistency/transistency predicate.

    ``diagnostic`` marks axioms included to help hardware engineers
    localize bugs (the paper's ``tlb_causality``, §V-A2) — they participate
    in the predicate but are reported separately.
    """

    name: str
    predicate: AxiomPredicate
    description: str = ""
    diagnostic: bool = False

    def holds(self, execution: Execution) -> bool:
        """Concrete evaluation on a candidate execution."""
        result = self.predicate(Vocabulary(execution.relations))
        if not isinstance(result, bool):
            raise SynthesisError(
                f"axiom {self.name!r} did not evaluate concretely"
            )
        return result

    def formula(self) -> Formula:
        """Symbolic form over the Table I vocabulary."""
        result = self.predicate(symbolic_vocabulary())
        if isinstance(result, bool):
            raise SynthesisError(
                f"axiom {self.name!r} collapsed to a constant symbolically"
            )
        return result


@dataclass(frozen=True)
class Verdict:
    """Outcome of checking one execution against a model."""

    model: str
    results: dict[str, bool] = field(default_factory=dict)

    @property
    def permitted(self) -> bool:
        return all(self.results.values())

    @property
    def forbidden(self) -> bool:
        return not self.permitted

    @property
    def violated(self) -> tuple[str, ...]:
        return tuple(name for name, ok in self.results.items() if not ok)

    def __str__(self) -> str:
        status = "permitted" if self.permitted else "forbidden"
        detail = (
            "" if self.permitted else f" (violates {', '.join(self.violated)})"
        )
        return f"{self.model}: {status}{detail}"


class MemoryModel:
    """A named axiomatic memory (transistency) model."""

    def __init__(self, name: str, axioms: Iterable[Axiom]) -> None:
        self.name = name
        self.axioms: tuple[Axiom, ...] = tuple(axioms)
        seen = set()
        for axiom in self.axioms:
            if axiom.name in seen:
                raise SynthesisError(f"duplicate axiom name {axiom.name!r}")
            seen.add(axiom.name)

    @property
    def axiom_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.axioms)

    def axiom(self, name: str) -> Axiom:
        for axiom in self.axioms:
            if axiom.name == name:
                return axiom
        raise SynthesisError(f"{self.name} has no axiom {name!r}")

    def check(self, execution: Execution) -> Verdict:
        """Evaluate every axiom on a candidate execution."""
        return Verdict(
            self.name,
            {axiom.name: axiom.holds(execution) for axiom in self.axioms},
        )

    def permits(self, execution: Execution) -> bool:
        return self.check(execution).permitted

    def forbids(self, execution: Execution) -> bool:
        return not self.permits(execution)

    def formula(self) -> Formula:
        """The whole predicate as one relational formula (conjunction)."""
        return conj(axiom.formula() for axiom in self.axioms)

    def check_symbolic(self, execution: Execution) -> bool:
        """Check an execution through the SAT backend: encode its relations
        as exact bounds and ask whether the predicate formula is satisfiable.

        Must always agree with :meth:`permits`; the test suite uses this to
        cross-validate the concrete and symbolic evaluation paths.
        """
        from ..relational import Problem

        instance = execution.to_instance()
        problem = Problem(instance.atoms)
        for name, tuple_set in instance.relations.items():
            problem.declare(
                name,
                tuple_set.arity,
                upper=tuple_set.tuples,
                lower=tuple_set.tuples,
            )
        problem.constrain(self.formula())
        return problem.solve() is not None

    def extended(self, name: str, extra_axioms: Iterable[Axiom]) -> "MemoryModel":
        """A new model with additional axioms (e.g. MCM -> MTM, §V-A)."""
        return MemoryModel(name, self.axioms + tuple(extra_axioms))

    def without(self, name: str, dropped: Iterable[str]) -> "MemoryModel":
        """A new model lacking some axioms (for bug-modeling variants)."""
        dropped_set = set(dropped)
        unknown = dropped_set - set(self.axiom_names)
        if unknown:
            raise SynthesisError(f"{self.name} has no axioms {sorted(unknown)}")
        return MemoryModel(
            name, [a for a in self.axioms if a.name not in dropped_set]
        )

    def __repr__(self) -> str:
        return f"MemoryModel({self.name!r}, axioms={list(self.axiom_names)})"

"""The axiom library: x86-TSO consistency (§II-A) and x86t_elt transistency
(§V-A), written once against the generic relational protocol.

Derived model-level relations (``ppo``, ``fence``) are expressed with the
same vocabulary operators, so they too work concretely and symbolically.
"""

from __future__ import annotations

from ..mtm import Vocabulary
from ..relational.ast import acyclic, no


def ppo_tso(v: Vocabulary):
    """x86-TSO preserved program order: program order over memory events
    minus the relaxed store->load pairs (§II-A axiom 3).

    Ghost instructions are not in po, so ppo never touches them.
    """
    po_mem = v.po & v.memory_event.product(v.memory_event)
    return po_mem - v.write_like.product(v.read_like)


def fence_order(v: Vocabulary):
    """Pairs of memory events separated by a fence in program order."""
    before = v.po & v.memory_event.product(v.fence_events)
    after = v.po & v.fence_events.product(v.memory_event)
    return before.dot(after)


# ----------------------------------------------------------------------
# x86-TSO consistency axioms (paper §II-A, after herding-cats [3])
# ----------------------------------------------------------------------
def sc_per_loc(v: Vocabulary):
    """{rf + co + fr + po_loc} is acyclic: per-location sequential
    consistency (coherence).  Covers user-facing, support *and* ghost
    accesses — po_loc orders ghosts by their parent's program slot."""
    return acyclic(v.rf + v.co + v.fr + v.po_loc)


def rmw_atomicity(v: Vocabulary):
    """No intervening same-address write between the Read and Write of an
    atomic RMW: fr.co does not intersect rmw."""
    return no(v.fr.dot(v.co) & v.rmw)


def causality(v: Vocabulary):
    """{rfe + co + fr + ppo + fence} is acyclic (store-buffer TSO)."""
    return acyclic(v.rfe + v.co + v.fr + ppo_tso(v) + fence_order(v))


# ----------------------------------------------------------------------
# x86t_elt transistency axioms (paper §V-A)
# ----------------------------------------------------------------------
def invlpg(v: Vocabulary):
    """{fr_va + ^po + remap} is acyclic: after a remap's INVLPG reaches a
    core, later same-VA accesses on that core must not use the stale
    mapping (§V-A1).  ``po`` here is already transitively closed, and
    acyclicity is invariant under closure."""
    return acyclic(v.fr_va + v.po + v.remap)


def tlb_causality(v: Vocabulary):
    """{ptw_source + com} is acyclic: an event sourced by a TLB entry that
    event e's walk populated cannot be com-ordered before e (§V-A2).
    Diagnostic: localizes bugs to TLB implementations."""
    return acyclic(v.ptw_source + v.com)


# ----------------------------------------------------------------------
# Sequential consistency (baseline, Lamport [27])
# ----------------------------------------------------------------------
def sc_order(v: Vocabulary):
    """{com + po over memory events} is acyclic: a single total order
    explains the execution."""
    po_mem = v.po & v.memory_event.product(v.memory_event)
    return acyclic(v.com + po_mem)

"""The model catalog: SC, x86-TSO, x86t_elt, and bug-modeling variants.

``x86t_elt`` is the paper's case-study MTM (§V): the x86-TSO consistency
axioms plus the ``invlpg`` and ``tlb_causality`` transistency axioms.

``x86t_amd_bug`` models the AMD Athlon/Opteron erratum the paper motivates
with (§I, [4]): INVLPG fails to invalidate the designated TLB entries, so
stale-mapping reads after a remap become observable — captured by dropping
the ``invlpg`` axiom.  ELTs forbidden by ``x86t_elt`` but permitted by
``x86t_amd_bug`` are exactly the tests that expose the bug.

What each entry specifies
-------------------------

============== ============================================ =====================
entry          axioms                                       models
============== ============================================ =====================
sc             sc_order, rmw_atomicity                      Lamport SC over *all*
                                                            memory events (user
                                                            + ghosts); no VM
                                                            ordering guarantees
x86tso         sc_per_loc, rmw_atomicity, causality         the x86-TSO
                                                            consistency
                                                            predicate (§II-A)
x86t_elt       x86tso + invlpg, tlb_causality               the paper's estimated
                                                            Intel x86 MTM (§V-A)
x86t_amd_bug   x86t_elt − invlpg                            hardware whose INVLPG
                                                            fails to invalidate
                                                            TLB entries (AMD
                                                            erratum, §I)
sc_t           sc + sc_per_loc, invlpg, tlb_causality       an SC-based MTM: the
                                                            same VM axioms over a
                                                            stronger consistency
                                                            base ("arbitrary
                                                            MTMs")
============== ============================================ =====================

Axiom-set inclusions imply semantic refinement: when one entry's axioms
are a superset of another's, every execution the smaller model forbids
the larger forbids too (e.g. x86t_elt refines both x86tso and
x86t_amd_bug).  The differential engine (:mod:`repro.conformance`) checks
the synthesized conformance matrix against exactly these inclusions.

:data:`CATALOG` is the ordered registry the all-pairs conformance driver
and the CLI iterate over.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from . import axioms
from .base import Axiom, MemoryModel

SC_PER_LOC = Axiom(
    "sc_per_loc",
    axioms.sc_per_loc,
    "acyclic(rf + co + fr + po_loc): per-location coherence",
)
RMW_ATOMICITY = Axiom(
    "rmw_atomicity",
    axioms.rmw_atomicity,
    "no (fr.co & rmw): atomic read-modify-writes",
)
CAUSALITY = Axiom(
    "causality",
    axioms.causality,
    "acyclic(rfe + co + fr + ppo + fence): TSO global ordering",
)
INVLPG = Axiom(
    "invlpg",
    axioms.invlpg,
    "acyclic(fr_va + ^po + remap): no stale mappings after remap INVLPGs",
)
TLB_CAUSALITY = Axiom(
    "tlb_causality",
    axioms.tlb_causality,
    "acyclic(ptw_source + com): TLB-entry sourcing respects causality",
    diagnostic=True,
)
SC_ORDER = Axiom(
    "sc_order",
    axioms.sc_order,
    "acyclic(com + po): a single interleaving explains the execution",
)


def sequential_consistency() -> MemoryModel:
    """Lamport SC over the MTM event space (baseline)."""
    return MemoryModel("sc", [SC_ORDER, RMW_ATOMICITY])


def x86tso() -> MemoryModel:
    """The x86-TSO consistency predicate (§II-A)."""
    return MemoryModel("x86tso", [SC_PER_LOC, RMW_ATOMICITY, CAUSALITY])


def x86t_elt() -> MemoryModel:
    """The paper's estimated Intel x86 MTM (§V-A): transistency = x86-TSO
    consistency + {invlpg, tlb_causality}."""
    return x86tso().extended("x86t_elt", [INVLPG, TLB_CAUSALITY])


def x86t_amd_bug() -> MemoryModel:
    """x86t_elt with the invlpg guarantee *removed*: models hardware whose
    INVLPG fails to invalidate TLB entries (AMD erratum [4])."""
    return x86t_elt().without("x86t_amd_bug", ["invlpg"])


def sc_t() -> MemoryModel:
    """A sequentially-consistent *transistency* model: SC over user events
    plus the same VM axioms as x86t_elt.  Useful as a stronger reference —
    everything x86t_elt forbids, sc_t forbids too, plus the store-buffer
    behaviors SC rules out.  Demonstrates that the vocabulary composes
    with any base consistency predicate (the paper's "arbitrary MTMs")."""
    return sequential_consistency().extended(
        "sc_t", [SC_PER_LOC, INVLPG, TLB_CAUSALITY]
    )


#: The catalog as an ordered name -> factory registry (insertion order is
#: the canonical model order for all-pairs drivers, reports and the CLI).
CATALOG: Mapping[str, Callable[[], MemoryModel]] = {
    "sc": sequential_consistency,
    "x86tso": x86tso,
    "x86t_elt": x86t_elt,
    "x86t_amd_bug": x86t_amd_bug,
    "sc_t": sc_t,
}


def catalog_models() -> Dict[str, MemoryModel]:
    """Instantiate every catalog entry, in canonical order."""
    return {name: make() for name, make in CATALOG.items()}


#: The five x86t_elt axioms in the order the paper's Fig 9 reports them.
X86T_ELT_AXIOM_NAMES = (
    "sc_per_loc",
    "rmw_atomicity",
    "causality",
    "invlpg",
    "tlb_causality",
)

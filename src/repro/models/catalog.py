"""The model catalog: SC, x86-TSO, x86t_elt, and bug-modeling variants.

``x86t_elt`` is the paper's case-study MTM (§V): the x86-TSO consistency
axioms plus the ``invlpg`` and ``tlb_causality`` transistency axioms.

``x86t_amd_bug`` models the AMD Athlon/Opteron erratum the paper motivates
with (§I, [4]): INVLPG fails to invalidate the designated TLB entries, so
stale-mapping reads after a remap become observable — captured by dropping
the ``invlpg`` axiom.  ELTs forbidden by ``x86t_elt`` but permitted by
``x86t_amd_bug`` are exactly the tests that expose the bug.
"""

from __future__ import annotations

from . import axioms
from .base import Axiom, MemoryModel

SC_PER_LOC = Axiom(
    "sc_per_loc",
    axioms.sc_per_loc,
    "acyclic(rf + co + fr + po_loc): per-location coherence",
)
RMW_ATOMICITY = Axiom(
    "rmw_atomicity",
    axioms.rmw_atomicity,
    "no (fr.co & rmw): atomic read-modify-writes",
)
CAUSALITY = Axiom(
    "causality",
    axioms.causality,
    "acyclic(rfe + co + fr + ppo + fence): TSO global ordering",
)
INVLPG = Axiom(
    "invlpg",
    axioms.invlpg,
    "acyclic(fr_va + ^po + remap): no stale mappings after remap INVLPGs",
)
TLB_CAUSALITY = Axiom(
    "tlb_causality",
    axioms.tlb_causality,
    "acyclic(ptw_source + com): TLB-entry sourcing respects causality",
    diagnostic=True,
)
SC_ORDER = Axiom(
    "sc_order",
    axioms.sc_order,
    "acyclic(com + po): a single interleaving explains the execution",
)


def sequential_consistency() -> MemoryModel:
    """Lamport SC over the MTM event space (baseline)."""
    return MemoryModel("sc", [SC_ORDER, RMW_ATOMICITY])


def x86tso() -> MemoryModel:
    """The x86-TSO consistency predicate (§II-A)."""
    return MemoryModel("x86tso", [SC_PER_LOC, RMW_ATOMICITY, CAUSALITY])


def x86t_elt() -> MemoryModel:
    """The paper's estimated Intel x86 MTM (§V-A): transistency = x86-TSO
    consistency + {invlpg, tlb_causality}."""
    return x86tso().extended("x86t_elt", [INVLPG, TLB_CAUSALITY])


def x86t_amd_bug() -> MemoryModel:
    """x86t_elt with the invlpg guarantee *removed*: models hardware whose
    INVLPG fails to invalidate TLB entries (AMD erratum [4])."""
    return x86t_elt().without("x86t_amd_bug", ["invlpg"])


def sc_t() -> MemoryModel:
    """A sequentially-consistent *transistency* model: SC over user events
    plus the same VM axioms as x86t_elt.  Useful as a stronger reference —
    everything x86t_elt forbids, sc_t forbids too, plus the store-buffer
    behaviors SC rules out.  Demonstrates that the vocabulary composes
    with any base consistency predicate (the paper's "arbitrary MTMs")."""
    return sequential_consistency().extended(
        "sc_t", [SC_PER_LOC, INVLPG, TLB_CAUSALITY]
    )


#: The five x86t_elt axioms in the order the paper's Fig 9 reports them.
X86T_ELT_AXIOM_NAMES = (
    "sc_per_loc",
    "rmw_atomicity",
    "causality",
    "invlpg",
    "tlb_causality",
)

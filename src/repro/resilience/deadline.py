"""Cooperative deadline propagation into long-running queries.

``run_pipeline`` already checks its deadline between programs and every
64 witnesses — but a single stuck SAT query sits *inside* one witness
step, where no check runs.  This module is the channel that reaches it:
the pipeline installs its absolute ``time.monotonic()`` deadline here
(:func:`deadline_scope`), and :class:`repro.sat.CdclSolver` polls
:func:`current_deadline` on a propagation budget inside its search
loops, raising :class:`~repro.errors.SolverInterrupted` (after
backtracking to level 0, so the solver stays usable) when the budget
finds the deadline passed.

Module-level like the :mod:`repro.obs` tracer/registry: per-process,
installed around a scope, defaulting to "no deadline" so the solver's
poll costs one comparison when nothing is installed.  Nested scopes
keep the *earliest* deadline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

_DEADLINE: Optional[float] = None


def current_deadline() -> Optional[float]:
    """The installed absolute ``time.monotonic()`` deadline, or None."""
    return _DEADLINE


def install_deadline(deadline: Optional[float]) -> Optional[float]:
    """Install a deadline, returning the previous one (for restore)."""
    global _DEADLINE
    previous = _DEADLINE
    _DEADLINE = deadline
    return previous


def deadline_exceeded() -> bool:
    return _DEADLINE is not None and time.monotonic() > _DEADLINE


@contextmanager
def deadline_scope(deadline: Optional[float]) -> Iterator[None]:
    """Install ``deadline`` for the body; an enclosing scope's earlier
    deadline wins (passing None keeps the enclosing deadline)."""
    previous = current_deadline()
    if deadline is None:
        effective = previous
    elif previous is None:
        effective = deadline
    else:
        effective = min(previous, deadline)
    install_deadline(effective)
    try:
        yield
    finally:
        install_deadline(previous)

"""Retry policy for shard scheduling.

One frozen dataclass describes everything the resilient scheduler
(:mod:`repro.resilience.scheduler`) may do when a shard fails: how many
times to re-run it, how long to back off between attempts, how long a
single attempt may run on a worker before the pool is recycled, and
whether an unrecoverable shard is quarantined (the run degrades, the
completed shards merge) or fatal (a
:class:`~repro.errors.ShardFailure` propagates).

Backoff is **deterministic** — ``base * factor ** (attempt - 1)``, no
jitter — so a seeded chaos run schedules identically every time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler reacts to shard failures.

    ``max_retries`` counts *re-runs*: a shard runs at most
    ``max_retries + 1`` times.  ``shard_timeout_s`` bounds one attempt's
    wall time on a worker pool (inline execution cannot preempt a
    running shard; the cooperative solver deadline covers that case).
    ``max_pool_strikes`` bounds how many pool collapses a shard may be
    collateral damage to before it is given up on — pool breakage is not
    attributable to a single shard, so these strikes are tracked apart
    from the per-shard attempt count.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    shard_timeout_s: Optional[float] = None
    #: Quarantine unrecoverable shards (merge the rest into a degraded
    #: result) instead of raising :class:`~repro.errors.ShardFailure`.
    quarantine: bool = True
    #: Give up on a shard after this many pool collapses while in flight.
    max_pool_strikes: int = 8

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def backoff_s(self, attempt: int) -> float:
        """Deterministic delay before re-running after failed ``attempt``."""
        if self.backoff_base_s <= 0.0 or attempt < 1:
            return 0.0
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)


#: The scheduler's default: two retries, 50 ms doubling backoff, no
#: per-shard timeout, quarantine on.
DEFAULT_RETRY_POLICY = RetryPolicy()

"""The retrying shard scheduler behind both orchestrators.

:func:`run_resilient_tasks` is the single execution loop
:func:`repro.orchestrate.run_sharded` and the conformance runner share.
It owns the full failure envelope a long sharded run can hit:

* **ordinary worker exceptions** — retried with deterministic backoff
  up to ``RetryPolicy.max_retries``, then quarantined (the run merges
  what completed and reports itself *degraded*) or, with
  ``quarantine=False``, raised as :class:`~repro.errors.ShardFailure`
  naming the shard and attempt count;
* **pool collapse** (``BrokenProcessPool`` — a worker hard-exited or
  was killed) — the pool is rebuilt and only the shards that were in
  flight are resubmitted; completed results are kept.  Collapse is not
  attributable to one shard, so in-flight shards accrue *pool strikes*
  rather than attempts — except when exactly one shard was in flight,
  which is attributable and costs it an attempt;
* **per-shard wall timeout** (``RetryPolicy.shard_timeout_s``) — a
  stuck worker cannot be cancelled, so the pool is recycled; the
  expired shard is charged an attempt, the collateral in-flight shards
  are resubmitted at their same attempt.

Tasks must be frozen dataclasses with a ``spec.label`` and an
``attempt`` field (re-runs ship ``dataclasses.replace(task,
attempt=n)``, so workers and fault plans see the attempt number).
Every retry/timeout/quarantine/rebuild surfaces as an informational
:mod:`repro.obs` counter and a zero-length span on the current tracer.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from multiprocessing import get_context
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ShardFailure
from ..obs import current_registry, current_tracer
from .policy import DEFAULT_RETRY_POLICY, RetryPolicy


@dataclass
class FailureRecord:
    """One quarantined shard: who died, how often, and how."""

    label: str
    attempts: int
    kind: str  # "exception" | "pool" | "timeout"
    error: str  # repr of the final exception

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
        }


@dataclass
class ResilienceStats:
    """What the scheduler had to do to finish (informational — varies
    with timing, never with the merged artifact)."""

    retries: int = 0
    pool_rebuilds: int = 0
    shard_timeouts: int = 0
    quarantined: int = 0

    def any_event(self) -> bool:
        return bool(
            self.retries
            or self.pool_rebuilds
            or self.shard_timeouts
            or self.quarantined
        )


@dataclass
class SchedulerOutcome:
    """Results by submission slot, plus the failure/effort bookkeeping."""

    results: Dict[int, object] = field(default_factory=dict)
    failures: List[FailureRecord] = field(default_factory=list)
    stats: ResilienceStats = field(default_factory=ResilienceStats)


class PoolManager:
    """Owns a spawn pool that can be killed and rebuilt mid-run.

    The sweep shares one manager across points the way it used to share
    one executor; a pool collapse at any point transparently hands later
    points a fresh pool.  A foreign executor may be adopted (legacy
    ``executor=`` callers); on rebuild it is terminated like an owned
    one — its workers are dead anyway.
    """

    def __init__(self, jobs: int, executor: Optional[ProcessPoolExecutor] = None):
        self.jobs = jobs
        self._executor = executor

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=get_context("spawn")
            )
        return self._executor

    def rebuild(self) -> None:
        """Terminate the current pool (workers may be stuck, not just
        dead); the next ``executor`` access builds a fresh one."""
        executor, self._executor = self._executor, None
        if executor is None:
            return
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def shutdown(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown()


@dataclass
class _Flight:
    """One in-flight submission."""

    slot: int
    task: object
    attempt: int
    submitted_at: float = 0.0
    pool_strikes: int = 0


def _label(task) -> str:
    return task.spec.label


def run_resilient_tasks(
    tasks: Sequence[Tuple[int, object]],
    worker: Callable,
    jobs: int,
    policy: Optional[RetryPolicy] = None,
    pool: Optional[PoolManager] = None,
    progress=None,
) -> SchedulerOutcome:
    """Execute ``(slot, task)`` pairs inline (no ``pool``) or on a
    rebuildable spawn pool, applying ``policy``'s full failure envelope.

    Returns results keyed by slot; a slot absent from ``results`` was
    quarantined and appears in ``failures``.  With
    ``policy.quarantine=False`` an unrecoverable shard raises
    :class:`~repro.errors.ShardFailure` instead (the pool, if owned by
    the caller's manager, stays usable).
    """
    policy = policy if policy is not None else DEFAULT_RETRY_POLICY
    outcome = SchedulerOutcome()
    if not tasks:
        return outcome
    if pool is not None and jobs > 1:
        _run_pooled(tasks, worker, policy, pool, progress, outcome)
    else:
        _run_inline(tasks, worker, policy, progress, outcome)
    return outcome


def _note(name: str, **args) -> None:
    """Record one resilience event: informational counter + marker span."""
    current_registry().inc(f"resilience.{name}", informational=True)
    tracer = current_tracer()
    if tracer:
        with tracer.span(f"resilience.{name}", category="resilience", **args):
            pass


def _give_up(
    flight: _Flight,
    kind: str,
    error: BaseException,
    policy: RetryPolicy,
    outcome: SchedulerOutcome,
) -> None:
    label = _label(flight.task)
    record = FailureRecord(
        label=label,
        attempts=flight.attempt,
        kind=kind,
        error=repr(error),
    )
    outcome.failures.append(record)
    outcome.stats.quarantined += 1
    _note("quarantined", shard=label, attempts=flight.attempt, kind=kind)
    if not policy.quarantine:
        raise ShardFailure(label, flight.attempt, kind) from error


def _run_inline(tasks, worker, policy, progress, outcome) -> None:
    for slot, task in tasks:
        attempt = 1
        while True:
            try:
                result = worker(replace(task, attempt=attempt))
            except Exception as error:
                if attempt >= policy.max_attempts:
                    _give_up(
                        _Flight(slot, task, attempt),
                        "exception",
                        error,
                        policy,
                        outcome,
                    )
                    break
                outcome.stats.retries += 1
                _note("retries", shard=_label(task), attempt=attempt)
                delay = policy.backoff_s(attempt)
                if delay > 0.0:
                    time.sleep(delay)
                attempt += 1
            else:
                outcome.results[slot] = result
                if progress is not None:
                    progress.update(_label(task))
                break


def _run_pooled(tasks, worker, policy, pool, progress, outcome) -> None:
    pending: Dict[object, _Flight] = {}

    def submit(flight: _Flight) -> None:
        flight.submitted_at = time.monotonic()
        future = pool.executor.submit(
            worker, replace(flight.task, attempt=flight.attempt)
        )
        pending[future] = flight

    def charge_attempt(
        flight: _Flight, kind: str, error: BaseException, resubmit: list
    ) -> None:
        """One attributable failure: retry with backoff or give up."""
        if flight.attempt >= policy.max_attempts:
            _give_up(flight, kind, error, policy, outcome)
            return
        outcome.stats.retries += 1
        _note("retries", shard=_label(flight.task), attempt=flight.attempt)
        delay = policy.backoff_s(flight.attempt)
        resubmit.append(
            (_Flight(flight.slot, flight.task, flight.attempt + 1,
                     pool_strikes=flight.pool_strikes), delay)
        )

    def strike(flight: _Flight, error: BaseException, resubmit: list) -> None:
        """Unattributable pool collapse: resubmit without charging the
        retry budget, bounded by the (larger) strike budget.  The attempt
        number still advances so a failure that *was* caused by this
        shard doesn't replay identically on every resubmission."""
        flight.pool_strikes += 1
        if flight.pool_strikes >= policy.max_pool_strikes:
            _give_up(flight, "pool", error, policy, outcome)
            return
        resubmit.append(
            (_Flight(flight.slot, flight.task, flight.attempt + 1,
                     pool_strikes=flight.pool_strikes), 0.0)
        )

    for slot, task in tasks:
        submit(_Flight(slot, task, 1))

    while pending:
        timeout = None
        if policy.shard_timeout_s is not None:
            now = time.monotonic()
            expiry = min(
                flight.submitted_at + policy.shard_timeout_s
                for flight in pending.values()
            )
            timeout = max(0.0, expiry - now) + 0.01
        done, _not_done = wait(
            list(pending), timeout=timeout, return_when=FIRST_COMPLETED
        )

        resubmit: List[Tuple[_Flight, float]] = []
        pool_error: Optional[BaseException] = None
        broken: List[_Flight] = []
        for future in done:
            flight = pending.pop(future)
            try:
                result = future.result()
            except BrokenProcessPool as error:
                pool_error = error
                broken.append(flight)
            except Exception as error:
                charge_attempt(flight, "exception", error, resubmit)
            else:
                outcome.results[flight.slot] = result
                if progress is not None:
                    progress.update(_label(flight.task))

        if pool_error is not None:
            # Every remaining in-flight future died with the pool too
            # (their .result() would raise the same BrokenProcessPool);
            # drain them and resubmit everything on a fresh pool.  A
            # collapse with exactly one total casualty is attributable
            # to that shard and costs it an attempt; multi-casualty
            # collapses cost strikes, not attempts.
            casualties = broken + list(pending.values())
            pending.clear()
            if len(casualties) == 1:
                charge_attempt(casualties[0], "pool", pool_error, resubmit)
            else:
                for flight in casualties:
                    strike(flight, pool_error, resubmit)
            outcome.stats.pool_rebuilds += 1
            _note("pool_rebuilds")
            pool.rebuild()
        elif not done and policy.shard_timeout_s is not None:
            now = time.monotonic()
            expired = [
                (future, flight)
                for future, flight in pending.items()
                if now - flight.submitted_at > policy.shard_timeout_s
            ]
            if expired:
                # A stuck worker cannot be cancelled: recycle the pool.
                # The expired shards are charged an attempt; the other
                # in-flight shards are collateral and resubmit as-is.
                for future, flight in expired:
                    pending.pop(future)
                    outcome.stats.shard_timeouts += 1
                    _note(
                        "shard_timeouts",
                        shard=_label(flight.task),
                        attempt=flight.attempt,
                    )
                    charge_attempt(
                        flight,
                        "timeout",
                        TimeoutError(
                            f"shard {_label(flight.task)} exceeded "
                            f"{policy.shard_timeout_s}s"
                        ),
                        resubmit,
                    )
                collateral = list(pending.values())
                pending.clear()
                outcome.stats.pool_rebuilds += 1
                _note("pool_rebuilds")
                pool.rebuild()
                for flight in collateral:
                    resubmit.append((flight, 0.0))

        if resubmit:
            delay = max(wait_s for _flight, wait_s in resubmit)
            if delay > 0.0:
                time.sleep(delay)
            for flight, _wait_s in resubmit:
                submit(flight)

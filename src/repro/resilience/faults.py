"""Deterministic fault injection for orchestration tests and ``--chaos``.

A :class:`FaultPlan` is a *pure function of its seed*: every decision —
does shard ``s3/8`` crash on attempt 1? with ``os._exit`` or a raised
exception? how long is its injected delay? does store key ``ab12…`` get
a flipped bit? — is derived by hashing ``(seed, kind, label, attempt)``
with blake2b.  Two runs with the same seed inject exactly the same
faults, so chaos tests are reproducible, and the plan pickles into
worker tasks without carrying state.

The one deliberate piece of state is the *consumed* set for store
corruption: a key is corrupted only on its **first** write in a
process, so a retried shard's re-write heals the entry instead of
re-corrupting it forever.

Crash semantics: a targeted shard dies on its first
``crash_attempts`` attempts.  In a spawned worker process an "exit"
crash calls ``os._exit`` — the pool collapses with
``BrokenProcessPool``, which is exactly the failure mode the scheduler's
pool-rebuild path recovers from (and doubles as the "pool kill" fault).
Inline (or for "raise"-mode crashes) an :class:`InjectedFault` is
raised, exercising the ordinary retry path.  Keep
``crash_attempts <= RetryPolicy.max_retries`` and every shard
eventually succeeds, which is the precondition for the byte-identical
chaos guarantee.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ReproError

#: Worker exit status for injected ``os._exit`` crashes (recognizable in
#: pool post-mortems; the value itself is arbitrary).
INJECTED_EXIT_CODE = 73


class InjectedFault(ReproError):
    """A fault injected by a :class:`FaultPlan` (raise-mode crash)."""

    def __init__(self, label: str, attempt: int):
        self.label = label
        self.attempt = attempt
        super().__init__(f"injected fault: shard {label} attempt {attempt}")


def _unit(seed: int, *parts) -> float:
    """Deterministic uniform [0, 1) from (seed, *parts)."""
    text = ":".join([str(seed), *(str(part) for part in parts)])
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


def in_worker_process() -> bool:
    """True when running in a spawned/forked child (an ``os._exit`` here
    surfaces to the coordinator as ``BrokenProcessPool``)."""
    return multiprocessing.parent_process() is not None


def flip_bit(data: bytes, offset: int) -> bytes:
    """Return ``data`` with one bit flipped at ``offset % len(data)``."""
    if not data:
        return data
    position = offset % len(data)
    corrupted = bytearray(data)
    corrupted[position] ^= 0x01
    return bytes(corrupted)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic fault decisions for one chaos run."""

    seed: int
    #: Probability a shard label is crash-targeted at all.
    crash_rate: float = 0.0
    #: How many leading attempts of a targeted shard die.
    crash_attempts: int = 1
    #: Among crashing attempts, fraction that hard-exit the worker
    #: (killing the pool) vs raising :class:`InjectedFault`.
    exit_rate: float = 0.5
    #: Probability an attempt gets a seeded delay, and its cap.
    delay_rate: float = 0.0
    max_delay_s: float = 0.02
    #: Probability a store key's first write gets a flipped bit.
    store_corrupt_rate: float = 0.0
    #: Store keys already corrupted in this process (first write only).
    _corrupted: set = field(
        default_factory=set, compare=False, repr=False, init=False
    )

    # -- worker-side decisions (stateless hashes) ----------------------
    def crashes(self, label: str) -> int:
        """Number of leading attempts of ``label`` that die (0 = never)."""
        if _unit(self.seed, "crash", label) < self.crash_rate:
            return self.crash_attempts
        return 0

    def crash_mode(self, label: str, attempt: int) -> str:
        """``"exit"`` (hard-kill the worker/pool) or ``"raise"``."""
        if _unit(self.seed, "mode", label, attempt) < self.exit_rate:
            return "exit"
        return "raise"

    def delay_s(self, label: str, attempt: int) -> float:
        if _unit(self.seed, "delay", label, attempt) < self.delay_rate:
            return self.max_delay_s * _unit(self.seed, "delay-len", label, attempt)
        return 0.0

    def apply_worker_fault(self, label: str, attempt: int) -> None:
        """Run at shard start: sleep, crash, or pass, per the plan.

        Exit-mode crashes only hard-exit inside a real worker process;
        inline they downgrade to a raised :class:`InjectedFault` so the
        coordinating process survives.
        """
        delay = self.delay_s(label, attempt)
        if delay > 0.0:
            time.sleep(delay)
        if attempt <= self.crashes(label):
            if self.crash_mode(label, attempt) == "exit" and in_worker_process():
                os._exit(INJECTED_EXIT_CODE)
            raise InjectedFault(label, attempt)

    # -- store-side decisions (first write per key) --------------------
    def take_store_corruption(self, key: str) -> bool:
        """True exactly once per targeted key: corrupt this write."""
        if key in self._corrupted:
            return False
        if _unit(self.seed, "store", key) < self.store_corrupt_rate:
            self._corrupted.add(key)
            return True
        return False

    def corrupt_offset(self, key: str, size: int) -> int:
        if size <= 0:
            return 0
        return int(_unit(self.seed, "store-offset", key) * size)


def default_chaos_plan(seed: int) -> FaultPlan:
    """The ``--chaos SEED`` plan: every fault kind enabled at rates that
    exercise retries, pool rebuilds, and store quarantine while keeping
    ``crash_attempts`` within the default retry budget (so results stay
    byte-identical to a fault-free run)."""
    return FaultPlan(
        seed=seed,
        crash_rate=0.4,
        crash_attempts=1,
        exit_rate=0.5,
        delay_rate=0.5,
        max_delay_s=0.01,
        store_corrupt_rate=0.25,
    )

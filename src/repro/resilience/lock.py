"""A best-effort cross-process writer lock for the suite store.

``fcntl.flock`` where available (every POSIX platform), falling back to
an ``O_CREAT | O_EXCL`` pid-file spin lock elsewhere.  The lock
serializes concurrent *writers* of one store directory; readers never
take it (store writes are atomic renames, and payload digests catch any
torn pair).  It is deliberately best-effort: a writer that cannot
acquire the lock within ``timeout_s`` proceeds unlocked rather than
failing the run — per-entry atomicity still holds, and a crashed
holder must never deadlock every later run.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional, Union

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


class FileLock:
    """Advisory exclusive lock on a path; reentrant context manager."""

    def __init__(
        self,
        path: Union[str, Path],
        timeout_s: float = 10.0,
        poll_s: float = 0.02,
    ) -> None:
        self.path = Path(path)
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self._fd: Optional[int] = None
        self._depth = 0
        #: True when the last acquire timed out and the holder proceeded
        #: unlocked (surfaced so callers can count/log it).
        self.timed_out = False

    def acquire(self) -> bool:
        """Take the lock (or time out and proceed unlocked).

        Returns True when the lock was actually held.
        """
        if self._depth > 0:
            self._depth += 1
            return self._fd is not None
        self.timed_out = False
        deadline = time.monotonic() + self.timeout_s
        if fcntl is not None:
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        os.close(fd)
                        self.timed_out = True
                        break
                    time.sleep(self.poll_s)
        else:  # pragma: no cover - exercised only off-POSIX
            while True:
                try:
                    fd = os.open(
                        self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                    )
                    os.write(fd, str(os.getpid()).encode("ascii"))
                    self._fd = fd
                    break
                except FileExistsError:
                    if time.monotonic() > deadline:
                        self.timed_out = True
                        break
                    time.sleep(self.poll_s)
        self._depth = 1
        return self._fd is not None

    def release(self) -> None:
        if self._depth > 1:
            self._depth -= 1
            return
        self._depth = 0
        fd, self._fd = self._fd, None
        if fd is None:
            return
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)
        else:  # pragma: no cover
            os.close(fd)
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

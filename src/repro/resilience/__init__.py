"""repro.resilience — fault tolerance for the orchestration stack.

Week-long sweeps (the paper's §VI regime) and the ``repro serve``
direction both demand that a worker crash, a stuck SAT query, or a torn
cache write *degrades* a run instead of destroying it.  Four cooperating
pieces:

* :mod:`.policy` — :class:`RetryPolicy`: bounded retries, deterministic
  backoff, per-shard wall timeouts, quarantine-vs-raise;
* :mod:`.scheduler` — :func:`run_resilient_tasks`, the retrying shard
  scheduler both orchestrators run on (pool rebuild on
  ``BrokenProcessPool``, resubmission of in-flight shards only,
  poison-shard quarantine into explicitly *degraded* results), plus the
  rebuildable :class:`PoolManager`;
* :mod:`.deadline` — the cooperative-deadline channel that lets
  ``time_budget_s`` interrupt :class:`repro.sat.CdclSolver` mid-query
  (:class:`~repro.errors.SolverInterrupted`);
* :mod:`.faults` — :class:`FaultPlan`, the seeded deterministic
  fault-injection harness behind the tests and ``--chaos`` (worker
  crashes, delays, bit-flipped store bytes, pool kills);
* :mod:`.lock` — the best-effort cross-process writer
  :class:`FileLock` the suite store takes around writes.

Every scheduler event (retry, pool rebuild, shard timeout, quarantine)
lands on the current :mod:`repro.obs` registry as an *informational*
counter — resilience effort varies with timing, the merged artifact
never does.  See ``docs/RESILIENCE.md`` for the run-level contracts.
"""

from __future__ import annotations

from ..errors import ShardFailure, SolverInterrupted
from .deadline import (
    current_deadline,
    deadline_exceeded,
    deadline_scope,
    install_deadline,
)
from .faults import (
    INJECTED_EXIT_CODE,
    FaultPlan,
    InjectedFault,
    default_chaos_plan,
    flip_bit,
    in_worker_process,
)
from .lock import FileLock
from .policy import DEFAULT_RETRY_POLICY, RetryPolicy
from .scheduler import (
    FailureRecord,
    PoolManager,
    ResilienceStats,
    SchedulerOutcome,
    run_resilient_tasks,
)

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FailureRecord",
    "FaultPlan",
    "FileLock",
    "INJECTED_EXIT_CODE",
    "InjectedFault",
    "PoolManager",
    "ResilienceStats",
    "RetryPolicy",
    "SchedulerOutcome",
    "ShardFailure",
    "SolverInterrupted",
    "current_deadline",
    "deadline_exceeded",
    "deadline_scope",
    "default_chaos_plan",
    "flip_bit",
    "in_worker_process",
    "install_deadline",
    "run_resilient_tasks",
]

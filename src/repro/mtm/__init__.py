"""The memory transistency model vocabulary (paper §III, Table I).

Public surface:

* :class:`Event` / :class:`EventKind` — the event taxonomy (user-facing,
  support, ghost).
* :class:`Program` / :class:`ProgramBuilder` — ELT programs with po,
  ghost, remap and rmw structure.
* :class:`Execution` — candidate executions: program + (rf, co, co_pa)
  witness, with every Table I relation derived.
* :class:`Vocabulary` / :func:`symbolic_vocabulary` — the namespace axioms
  are written against (concrete or symbolic).
* :mod:`repro.mtm.names` — the canonical relation-name registry.
"""

from . import names
from .events import (
    Event,
    EventKind,
    GHOST_KINDS,
    MEMORY_KINDS,
    READ_KINDS,
    SUPPORT_KINDS,
    USER_KINDS,
    WRITE_KINDS,
)
from .execution import Execution, location_of
from .program import Program, ProgramBuilder, ThreadBuilder
from .vocabulary import Vocabulary, symbolic_vocabulary

__all__ = [
    "names",
    "Event",
    "EventKind",
    "USER_KINDS",
    "SUPPORT_KINDS",
    "GHOST_KINDS",
    "MEMORY_KINDS",
    "WRITE_KINDS",
    "READ_KINDS",
    "Program",
    "ProgramBuilder",
    "ThreadBuilder",
    "Execution",
    "location_of",
    "Vocabulary",
    "symbolic_vocabulary",
]

"""Canonical relation and set names shared by the concrete semantics, the
relational (SAT) backend, and the memory models.

Keeping these in one registry guarantees the two evaluation paths (concrete
TupleSets vs symbolic Expr) talk about the same vocabulary — Table I of the
paper, plus the derived helpers the axioms need.
"""

from __future__ import annotations

# -- unary sets (event classification) ---------------------------------
READ = "Read"                    # user-facing Reads
WRITE = "Write"                  # user-facing Writes
USER = "UserEvent"               # user-facing memory events (Read+Write)
MEMORY = "MemoryEvent"           # everything that touches shared memory
WRITE_LIKE = "WriteLike"         # Write + PTE_WRITE + DIRTY_BIT_WRITE
READ_LIKE = "ReadLike"           # Read + PT_WALK
PTE_WRITE = "PteWrite"
INVLPG = "Invlpg"
PT_WALK = "PtWalk"
DIRTY_BIT = "DirtyBit"
FENCE = "Fence"
TLB_FLUSH = "TlbFlush"
EVENT = "Event"

UNARY_SETS = (
    READ,
    WRITE,
    USER,
    MEMORY,
    WRITE_LIKE,
    READ_LIKE,
    PTE_WRITE,
    INVLPG,
    PT_WALK,
    DIRTY_BIT,
    FENCE,
    TLB_FLUSH,
    EVENT,
)

# -- binary relations ---------------------------------------------------
PO = "po"            # ^program order (transitively closed), non-ghost events
APO = "apo"          # augmented position order: ghosts inherit parent slot
SLOC = "sloc"        # same-location equivalence over memory events
PO_LOC = "po_loc"    # apo & sloc
RF = "rf"            # reads-from (data and PTE locations)
CO = "co"            # coherence order (per location)
FR = "fr"            # from-reads (derived)
COM = "com"          # rf + co + fr
RFE = "rfe"          # external (cross-core) reads-from
GHOST = "ghost"      # user-facing event -> ghost instructions it invokes
RF_PTW = "rf_ptw"    # PT walk -> user-facing events sourced by its TLB entry
PTW_SOURCE = "ptw_source"  # walk invoker -> other users of the same walk
RF_PA = "rf_pa"      # PTE write -> user-facing events using its mapping
CO_PA = "co_pa"      # alias-creation order per target PA
FR_PA = "fr_pa"      # user-facing event -> co_pa-successors of its origin
FR_VA = "fr_va"      # user-facing event -> later remaps of its VA
REMAP = "remap"      # PTE write -> INVLPGs it induces
RMW = "rmw"          # read -> write of an atomic RMW

BINARY_RELATIONS = (
    PO,
    APO,
    SLOC,
    PO_LOC,
    RF,
    CO,
    FR,
    COM,
    RFE,
    GHOST,
    RF_PTW,
    PTW_SOURCE,
    RF_PA,
    CO_PA,
    FR_PA,
    FR_VA,
    REMAP,
    RMW,
)

"""The MTM vocabulary as a namespace object (Table I).

:class:`Vocabulary` wraps a mapping from relation names to relation values
and exposes them as attributes.  The values may be concrete
:class:`~repro.relational.TupleSet` objects (when checking a candidate
execution) or symbolic :class:`~repro.relational.ast.Expr` nodes (when
compiling to SAT) — memory-model axioms are written once against this
namespace and work in both modes (see :mod:`repro.models.base`).
"""

from __future__ import annotations

from typing import Mapping, Union

from ..errors import VocabularyError
from ..relational import TupleSet
from ..relational.ast import Expr, Rel
from . import names

RelationLike = Union[TupleSet, Expr]


class Vocabulary:
    """Attribute-style access to the Table I relations.

    >>> from repro.relational import TupleSet
    >>> voc = Vocabulary({"rf": TupleSet.pairs([("a", "b")])},
    ...                  strict=False)
    >>> ("a", "b") in voc.rf
    True
    """

    _FIELDS = tuple(names.UNARY_SETS) + tuple(names.BINARY_RELATIONS)

    def __init__(
        self, relations: Mapping[str, RelationLike], strict: bool = True
    ) -> None:
        self._relations = dict(relations)
        if strict:
            missing = [f for f in self._FIELDS if f not in self._relations]
            if missing:
                raise VocabularyError(f"vocabulary missing relations: {missing}")

    def __getattr__(self, item: str):
        # Map pythonic attribute names onto registry names: unary sets use
        # CamelCase registry names ("Read"), binary use snake_case already.
        relations = object.__getattribute__(self, "_relations")
        if item in relations:
            return relations[item]
        camel = item[:1].upper() + item[1:]
        for candidate in (item, camel):
            if candidate in relations:
                return relations[candidate]
        raise AttributeError(f"no relation {item!r} in vocabulary")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    # Convenience aliases matching the paper's prose -------------------
    @property
    def read(self):
        return self._relations[names.READ]

    @property
    def write(self):
        return self._relations[names.WRITE]

    @property
    def memory_event(self):
        return self._relations[names.MEMORY]

    @property
    def user_event(self):
        return self._relations[names.USER]

    @property
    def write_like(self):
        return self._relations[names.WRITE_LIKE]

    @property
    def read_like(self):
        return self._relations[names.READ_LIKE]

    @property
    def fence_events(self):
        return self._relations[names.FENCE]


def symbolic_vocabulary() -> Vocabulary:
    """A Vocabulary of symbolic relation references, for compiling model
    predicates into relational formulas (SAT backend and documentation)."""
    relations: dict[str, RelationLike] = {}
    for name in names.UNARY_SETS:
        relations[name] = Rel(name, 1)
    for name in names.BINARY_RELATIONS:
        relations[name] = Rel(name, 2)
    return Vocabulary(relations)

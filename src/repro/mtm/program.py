"""ELT programs: events + static structure (po, ghost, remap, rmw).

A :class:`Program` is the *static* part of an enhanced litmus test — what
the paper calls an "ELT program" as opposed to an ELT execution (§VI-B,
which adds communication relations; see :mod:`repro.mtm.execution`).

Structure invariants are validated eagerly: threads partition the non-ghost
events, ghosts hang off user-facing memory events on the same core with
the same VA, each user-facing WRITE owns exactly one dirty-bit ghost,
every PTE_WRITE remap-targets exactly one INVLPG per core, RMW pairs are
po-adjacent on the same VA, and so on.  These are the paper's *placement
rules* (Fig 7 "relation placement rules") — violating them makes a program
ill-formed, which is different from an execution being *forbidden*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from ..errors import WellFormednessError
from .events import Event, EventKind


@dataclass(frozen=True)
class Program:
    """An immutable ELT program.

    ``events``
        All events keyed by eid.
    ``threads``
        Per-core program order over non-ghost events (eids).  Thread index
        == core index.
    ``ghosts``
        Parent eid -> ordered ghost eids invoked on its behalf.
    ``remap``
        (pte_write_eid, invlpg_eid) pairs: the IPI fan-out of a remap.
    ``rmw``
        (read_eid, write_eid) pairs: atomic read-modify-write dependencies.
    ``initial_map``
        Initial VA -> PA mapping (each VA maps to a unique PA before the
        test starts — paper §III-C.2).
    ``mcm_mode``
        Plain memory-consistency mode: no VM events at all (no ghosts,
        PTE writes or INVLPGs); addresses translate through the identity
        initial mapping.  Used to reproduce the user-level litmus-test
        synthesis baseline the paper compares against (§VI-A, [30]).
    """

    events: Mapping[str, Event]
    threads: tuple[tuple[str, ...], ...]
    ghosts: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    remap: frozenset[tuple[str, str]] = frozenset()
    rmw: frozenset[tuple[str, str]] = frozenset()
    initial_map: Mapping[str, str] = field(default_factory=dict)
    mcm_mode: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", dict(self.events))
        object.__setattr__(self, "ghosts", dict(self.ghosts))
        object.__setattr__(self, "initial_map", dict(self.initial_map))
        object.__setattr__(self, "remap", frozenset(self.remap))
        object.__setattr__(self, "rmw", frozenset(self.rmw))
        self._validate()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def event(self, eid: str) -> Event:
        try:
            return self.events[eid]
        except KeyError as exc:
            raise WellFormednessError(f"unknown event: {eid!r}") from exc

    @property
    def eids(self) -> list[str]:
        return list(self.events)

    @property
    def size(self) -> int:
        """Instruction count — the synthesis bound counts *all* events,
        ghosts included (DESIGN.md decision 1)."""
        return len(self.events)

    @property
    def num_cores(self) -> int:
        return len(self.threads)

    def user_events(self) -> list[Event]:
        return [e for e in self.events.values() if e.is_user]

    def events_of_kind(self, kind: EventKind) -> list[Event]:
        return [e for e in self.events.values() if e.kind is kind]

    def parent_of(self, ghost_eid: str) -> str:
        for parent, ghost_ids in self.ghosts.items():
            if ghost_eid in ghost_ids:
                return parent
        raise WellFormednessError(f"{ghost_eid!r} is not a ghost event")

    def walk_invoker(self, walk_eid: str) -> str:
        """The user-facing event whose TLB miss triggered this walk."""
        return self.parent_of(walk_eid)

    def __getstate__(self):
        """Strip per-object computation memos (e.g. the
        :func:`repro.symmetry.program_symmetry` cache) so pickled
        programs — shard results, suite-store payloads — carry only the
        structural fields."""
        state = self.__dict__.copy()
        state.pop("_symmetry_memo", None)
        return state

    def position(self, eid: str) -> tuple[int, int]:
        """(core, slot) program position; ghosts inherit their parent's
        slot (DESIGN.md decision 2)."""
        return self._positions[eid]

    def vas(self) -> list[str]:
        return sorted(
            {e.va for e in self.events.values() if e.va is not None}
        )

    def pas(self) -> list[str]:
        named = {e.pa for e in self.events.values() if e.pa is not None}
        named.update(self.initial_map.values())
        return sorted(named)

    def initial_pa(self, va: str) -> str:
        try:
            return self.initial_map[va]
        except KeyError as exc:
            raise WellFormednessError(
                f"VA {va!r} has no initial mapping"
            ) from exc

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        events = self.events
        if self.mcm_mode:
            vm_kinds = {
                EventKind.PT_WALK,
                EventKind.DIRTY_BIT_WRITE,
                EventKind.PTE_WRITE,
                EventKind.INVLPG,
                EventKind.TLB_FLUSH,
            }
            for eid, event in events.items():
                if event.kind in vm_kinds:
                    raise WellFormednessError(
                        f"{eid}: {event.kind} not allowed in MCM mode"
                    )
        placed: list[str] = [eid for thread in self.threads for eid in thread]
        if len(placed) != len(set(placed)):
            raise WellFormednessError("an event appears twice in program order")
        for eid in placed:
            event = self.event(eid)
            if event.is_ghost:
                raise WellFormednessError(
                    f"{eid}: ghost instructions are not related by po (§III-A)"
                )
        for core, thread in enumerate(self.threads):
            for eid in thread:
                if events[eid].core != core:
                    raise WellFormednessError(
                        f"{eid}: placed on thread {core} but declares core "
                        f"{events[eid].core}"
                    )

        ghost_ids = [g for gs in self.ghosts.values() for g in gs]
        if len(ghost_ids) != len(set(ghost_ids)):
            raise WellFormednessError("a ghost event has two parents")
        for eid, event in events.items():
            if event.is_ghost:
                if eid not in ghost_ids:
                    raise WellFormednessError(
                        f"{eid}: ghost instruction without an invoking parent"
                    )
            else:
                if eid not in placed:
                    raise WellFormednessError(f"{eid}: event not placed in any thread")

        dirty_counts: dict[str, int] = {}
        for parent_eid, ghost_eids in self.ghosts.items():
            parent = self.event(parent_eid)
            if not (parent.is_user and parent.is_memory_event):
                raise WellFormednessError(
                    f"{parent_eid}: only user-facing memory events invoke ghosts"
                )
            for geid in ghost_eids:
                ghost = self.event(geid)
                if not ghost.is_ghost:
                    raise WellFormednessError(f"{geid}: not a ghost instruction")
                if ghost.core != parent.core:
                    raise WellFormednessError(
                        f"{geid}: ghost on core {ghost.core} but parent "
                        f"{parent_eid} on core {parent.core}"
                    )
                if ghost.va != parent.va:
                    raise WellFormednessError(
                        f"{geid}: ghost translates VA {ghost.va} but parent "
                        f"accesses VA {parent.va}"
                    )
                if ghost.kind is EventKind.DIRTY_BIT_WRITE:
                    if parent.kind is not EventKind.WRITE:
                        raise WellFormednessError(
                            f"{geid}: dirty-bit updates are invoked by Writes "
                            "(§III-A2)"
                        )
                    dirty_counts[parent_eid] = dirty_counts.get(parent_eid, 0) + 1
        if not self.mcm_mode:
            for eid, event in events.items():
                if event.kind is EventKind.WRITE and dirty_counts.get(eid, 0) != 1:
                    raise WellFormednessError(
                        f"{eid}: each user-facing Write invokes exactly one "
                        "dirty-bit update (§III-A2)"
                    )
        walk_counts: dict[str, int] = {}
        for parent_eid, ghost_eids in self.ghosts.items():
            walks = [
                g for g in ghost_eids if events[g].kind is EventKind.PT_WALK
            ]
            if len(walks) > 1:
                raise WellFormednessError(
                    f"{parent_eid}: a memory event invokes at most one PT walk"
                )
            walk_counts[parent_eid] = len(walks)

        self._validate_remap()
        self._validate_rmw()
        for va in self.vas_needing_mapping():
            if va not in self.initial_map:
                raise WellFormednessError(
                    f"VA {va!r} accessed but has no initial mapping"
                )
        pa_targets = list(self.initial_map.values())
        if len(pa_targets) != len(set(pa_targets)):
            raise WellFormednessError(
                "initial mappings must be injective: each VA maps to a unique "
                "PA before the test (§III-C.2)"
            )
        object.__setattr__(self, "_positions", self._compute_positions())

    def vas_needing_mapping(self) -> set[str]:
        return {e.va for e in self.events.values() if e.va is not None}

    def _validate_remap(self) -> None:
        events = self.events
        by_pte: dict[str, list[str]] = {}
        seen_invlpg: set[str] = set()
        for pte_eid, inv_eid in self.remap:
            pte = self.event(pte_eid)
            inv = self.event(inv_eid)
            if pte.kind is not EventKind.PTE_WRITE:
                raise WellFormednessError(
                    f"remap source {pte_eid} is not a PTE_WRITE"
                )
            if inv.kind is not EventKind.INVLPG:
                raise WellFormednessError(
                    f"remap target {inv_eid} is not an INVLPG"
                )
            if inv.va != pte.va:
                raise WellFormednessError(
                    f"remap {pte_eid}->{inv_eid}: INVLPG invalidates {inv.va} "
                    f"but the remap changes {pte.va}"
                )
            if inv_eid in seen_invlpg:
                raise WellFormednessError(
                    f"{inv_eid}: INVLPG induced by two remaps"
                )
            seen_invlpg.add(inv_eid)
            if inv.core == pte.core:
                thread = self.threads[pte.core]
                if thread.index(inv_eid) < thread.index(pte_eid):
                    raise WellFormednessError(
                        f"remap {pte_eid}->{inv_eid}: the same-core INVLPG "
                        "follows its PTE write in po (§III-B2)"
                    )
            by_pte.setdefault(pte_eid, []).append(inv_eid)
        for eid, event in events.items():
            if event.kind is EventKind.PTE_WRITE:
                cores = sorted(events[i].core for i in by_pte.get(eid, []))
                if cores != list(range(self.num_cores)):
                    raise WellFormednessError(
                        f"{eid}: a PTE_WRITE induces exactly one INVLPG on "
                        f"each core (§III-B2); got cores {cores} of "
                        f"{self.num_cores}"
                    )

    def _validate_rmw(self) -> None:
        for r_eid, w_eid in self.rmw:
            read = self.event(r_eid)
            write = self.event(w_eid)
            if read.kind is not EventKind.READ or write.kind is not EventKind.WRITE:
                raise WellFormednessError(
                    f"rmw ({r_eid},{w_eid}) must pair a Read with a Write"
                )
            if read.core != write.core or read.va != write.va:
                raise WellFormednessError(
                    f"rmw ({r_eid},{w_eid}) must be same-core and same-VA"
                )
            thread = self.threads[read.core]
            r_index = thread.index(r_eid)
            if r_index + 1 >= len(thread) or thread[r_index + 1] != w_eid:
                raise WellFormednessError(
                    f"rmw ({r_eid},{w_eid}): the Write must immediately "
                    "follow the Read in po"
                )
            write_ghosts = self.ghosts.get(w_eid, ())
            if any(
                self.events[g].kind is EventKind.PT_WALK for g in write_ghosts
            ):
                raise WellFormednessError(
                    f"rmw ({r_eid},{w_eid}): the Write shares the Read's TLB "
                    "entry atomically and must not invoke its own walk"
                )

    def _compute_positions(self) -> dict[str, tuple[int, int]]:
        positions: dict[str, tuple[int, int]] = {}
        for core, thread in enumerate(self.threads):
            for slot, eid in enumerate(thread):
                positions[eid] = (core, slot)
        for parent_eid, ghost_eids in self.ghosts.items():
            for geid in ghost_eids:
                positions[geid] = positions[parent_eid]
        return positions

    def static_relations(self) -> dict[str, "object"]:
        """Relations determined by the program alone (no witness): cached
        here because candidate-execution construction is the synthesis
        engine's hot loop (one Execution per witness per relaxation)."""
        cached = getattr(self, "_static_relations", None)
        if cached is not None:
            return cached
        from ..relational import TupleSet
        from . import names

        events = self.events
        eids = list(events)

        def unary(predicate) -> TupleSet:
            return TupleSet.unary(e for e in eids if predicate(events[e]))

        po_pairs: set[tuple[str, str]] = set()
        for thread in self.threads:
            for i in range(len(thread)):
                for j in range(i + 1, len(thread)):
                    po_pairs.add((thread[i], thread[j]))
        apo_pairs: set[tuple[str, str]] = set()
        by_core: dict[int, list[str]] = {}
        for eid in eids:
            by_core.setdefault(self.position(eid)[0], []).append(eid)
        for members in by_core.values():
            for a in members:
                slot_a = self.position(a)[1]
                for b in members:
                    if a != b and slot_a < self.position(b)[1]:
                        apo_pairs.add((a, b))
        static: dict[str, object] = {
            names.EVENT: TupleSet.unary(eids),
            names.READ: unary(lambda e: e.kind is EventKind.READ),
            names.WRITE: unary(lambda e: e.kind is EventKind.WRITE),
            names.USER: unary(lambda e: e.is_user and e.is_memory_event),
            names.MEMORY: unary(lambda e: e.is_memory_event),
            names.WRITE_LIKE: unary(lambda e: e.is_write_like),
            names.READ_LIKE: unary(lambda e: e.is_read_like),
            names.PTE_WRITE: unary(lambda e: e.kind is EventKind.PTE_WRITE),
            names.INVLPG: unary(lambda e: e.kind is EventKind.INVLPG),
            names.PT_WALK: unary(lambda e: e.kind is EventKind.PT_WALK),
            names.DIRTY_BIT: unary(
                lambda e: e.kind is EventKind.DIRTY_BIT_WRITE
            ),
            names.FENCE: unary(lambda e: e.kind is EventKind.FENCE),
            names.TLB_FLUSH: unary(lambda e: e.kind is EventKind.TLB_FLUSH),
            names.PO: TupleSet.pairs(po_pairs),
            names.APO: TupleSet.pairs(apo_pairs),
            names.GHOST: TupleSet.pairs(
                (parent, g)
                for parent, ghosts in self.ghosts.items()
                for g in ghosts
            ),
            names.REMAP: TupleSet.pairs(self.remap),
            names.RMW: TupleSet.pairs(self.rmw),
        }
        object.__setattr__(self, "_static_relations", static)
        return static


# ----------------------------------------------------------------------
# Fluent builder
# ----------------------------------------------------------------------
class ThreadBuilder:
    """Accumulates one thread's instructions for :class:`ProgramBuilder`."""

    def __init__(self, program_builder: "ProgramBuilder", core: int) -> None:
        self._builder = program_builder
        self.core = core

    def read(self, va: str, walk: Optional[Event] = None) -> Event:
        """Append a user-facing Read of ``va``.

        ``walk=None`` makes the read TLB-miss and invoke a fresh PT walk;
        passing a previous event's walk makes it a TLB hit on that entry.
        """
        return self._builder._add_user(self.core, EventKind.READ, va, walk)

    def write(self, va: str, walk: Optional[Event] = None) -> Event:
        """Append a user-facing Write of ``va`` (dirty-bit ghost included)."""
        return self._builder._add_user(self.core, EventKind.WRITE, va, walk)

    def rmw(self, va: str, walk: Optional[Event] = None) -> tuple[Event, Event]:
        """Append an atomic read-modify-write to ``va``; the pair shares one
        TLB entry."""
        read = self._builder._add_user(self.core, EventKind.READ, va, walk)
        read_walk = (
            None if self._builder.mcm_mode else self._builder._walk_of(read)
        )
        write = self._builder._add_user(self.core, EventKind.WRITE, va, read_walk)
        self._builder._rmw.append((read.eid, write.eid))
        return read, write

    def pte_write(self, va: str, new_pa: str) -> Event:
        """Append a PTE_WRITE remapping ``va`` to ``new_pa``; the same-core
        INVLPG it induces is appended immediately after, and remote INVLPGs
        are delivered via :meth:`invlpg_for` on the other threads."""
        return self._builder._add_pte_write(self.core, va, new_pa)

    def invlpg_for(self, pte_write: Event) -> Event:
        """Append the IPI-delivered INVLPG induced by ``pte_write`` on this
        thread."""
        return self._builder._add_remap_invlpg(self.core, pte_write)

    def invlpg(self, va: str) -> Event:
        """Append a *spurious* INVLPG of ``va`` (no PTE change — §III-B2)."""
        return self._builder._add_spurious_invlpg(self.core, va)

    def fence(self) -> Event:
        return self._builder._add_fence(self.core)

    def tlb_flush(self) -> Event:
        """Append a whole-TLB flush (spurious IPI extension, §III-B2):
        every cached translation on this core is evicted."""
        return self._builder._add_tlb_flush(self.core)


class ProgramBuilder:
    """Fluent construction of ELT programs.

    >>> b = ProgramBuilder()
    >>> b.map("x", "pa_a")
    ProgramBuilder(...)
    >>> c0 = b.thread()
    >>> r0 = c0.read("x")
    >>> program = b.build()
    >>> program.size   # R + its PT walk
    2
    """

    def __init__(
        self,
        initial_map: Optional[Mapping[str, str]] = None,
        mcm_mode: bool = False,
    ) -> None:
        self.mcm_mode = mcm_mode
        self._events: dict[str, Event] = {}
        self._threads: list[list[str]] = []
        self._ghosts: dict[str, list[str]] = {}
        self._remap: list[tuple[str, str]] = []
        self._rmw: list[tuple[str, str]] = []
        self._initial_map: dict[str, str] = dict(initial_map or {})
        self._counter = 0
        self._walk_by_parent: dict[str, str] = {}
        # Builder-time TLB mirror: (core, va) -> currently-loaded walk eid.
        # Used to reject "hits" on entries that a later INVLPG evicted or a
        # newer walk replaced, catching mis-encoded tests at build time.
        self._tlb: dict[tuple[int, str], str] = {}

    def __repr__(self) -> str:
        return "ProgramBuilder(...)"

    # ------------------------------------------------------------------
    def map(self, va: str, pa: str) -> "ProgramBuilder":
        """Declare the initial mapping VA -> PA."""
        self._initial_map[va] = pa
        return self

    def thread(self) -> ThreadBuilder:
        core = len(self._threads)
        self._threads.append([])
        return ThreadBuilder(self, core)

    def build(self) -> Program:
        self._autofill_mappings()
        return Program(
            events=dict(self._events),
            threads=tuple(tuple(t) for t in self._threads),
            ghosts={k: tuple(v) for k, v in self._ghosts.items()},
            remap=frozenset(self._remap),
            rmw=frozenset(self._rmw),
            initial_map=dict(self._initial_map),
            mcm_mode=self.mcm_mode,
        )

    def _autofill_mappings(self) -> None:
        """Give every accessed-but-unmapped VA a fresh unique PA."""
        used_pas = set(self._initial_map.values())
        for event in self._events.values():
            if event.va is None or event.va in self._initial_map:
                continue
            index = 0
            while f"pa{index}" in used_pas:
                index += 1
            self._initial_map[event.va] = f"pa{index}"
            used_pas.add(f"pa{index}")

    # ------------------------------------------------------------------
    # Internal append operations
    # ------------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        eid = f"{prefix}{self._counter}"
        self._counter += 1
        return eid

    def _append(self, event: Event) -> Event:
        self._events[event.eid] = event
        if not event.is_ghost:
            self._threads[event.core].append(event.eid)
        return event

    def _walk_of(self, user_event: Event) -> Event:
        """The walk that sources ``user_event`` (its own ghost walk, or the
        shared walk it was built with)."""
        walk_eid = self._walk_by_parent.get(user_event.eid)
        if walk_eid is None:
            raise WellFormednessError(
                f"{user_event.eid} has no associated PT walk"
            )
        return self._events[walk_eid]

    def _add_user(
        self, core: int, kind: EventKind, va: str, walk: Optional[Event]
    ) -> Event:
        event = self._append(Event(self._fresh("e"), kind, core, va))
        if self.mcm_mode:
            if walk is not None:
                raise WellFormednessError("MCM mode has no PT walks to hit")
            return event
        ghost_list = self._ghosts.setdefault(event.eid, [])
        if kind is EventKind.WRITE:
            dirty = Event(self._fresh("e"), EventKind.DIRTY_BIT_WRITE, core, va)
            self._events[dirty.eid] = dirty
            ghost_list.append(dirty.eid)
        if walk is None:
            fresh_walk = Event(self._fresh("e"), EventKind.PT_WALK, core, va)
            self._events[fresh_walk.eid] = fresh_walk
            ghost_list.append(fresh_walk.eid)
            self._tlb[(core, va)] = fresh_walk.eid
            self._walk_by_parent[event.eid] = fresh_walk.eid
        else:
            if walk.kind is not EventKind.PT_WALK:
                raise WellFormednessError(
                    f"walk argument must be a PT walk, got {walk.kind}"
                )
            if walk.core != core or walk.va != va:
                raise WellFormednessError(
                    f"cannot hit walk {walk.eid}: wrong core or VA"
                )
            current = self._tlb.get((core, va))
            if current != walk.eid:
                state = "empty (evicted)" if current is None else f"now {current}"
                raise WellFormednessError(
                    f"cannot hit walk {walk.eid}: the TLB entry for {va} on "
                    f"core {core} is {state}"
                )
            self._walk_by_parent[event.eid] = walk.eid
        return event

    def walk_of(self, user_event: Event) -> Event:
        """Public accessor for the walk sourcing a user event (for TLB-hit
        chaining and execution witnesses)."""
        return self._walk_of(user_event)

    def dirty_of(self, write_event: Event) -> Event:
        """The dirty-bit ghost invoked by a user-facing Write."""
        for geid in self._ghosts.get(write_event.eid, ()):
            ghost = self._events[geid]
            if ghost.kind is EventKind.DIRTY_BIT_WRITE:
                return ghost
        raise WellFormednessError(f"{write_event.eid} has no dirty-bit ghost")

    def _add_pte_write(self, core: int, va: str, new_pa: str) -> Event:
        pte = self._append(
            Event(self._fresh("e"), EventKind.PTE_WRITE, core, va, pa=new_pa)
        )
        local_inv = self._append(Event(self._fresh("e"), EventKind.INVLPG, core, va))
        self._remap.append((pte.eid, local_inv.eid))
        self._tlb.pop((core, va), None)
        return pte

    def _add_remap_invlpg(self, core: int, pte_write: Event) -> Event:
        if pte_write.kind is not EventKind.PTE_WRITE:
            raise WellFormednessError("invlpg_for expects a PTE_WRITE event")
        inv = self._append(
            Event(self._fresh("e"), EventKind.INVLPG, core, pte_write.va)
        )
        self._remap.append((pte_write.eid, inv.eid))
        assert pte_write.va is not None
        self._tlb.pop((core, pte_write.va), None)
        return inv

    def _add_spurious_invlpg(self, core: int, va: str) -> Event:
        inv = self._append(Event(self._fresh("e"), EventKind.INVLPG, core, va))
        self._tlb.pop((core, va), None)
        return inv

    def _add_fence(self, core: int) -> Event:
        return self._append(Event(self._fresh("e"), EventKind.FENCE, core))

    def _add_tlb_flush(self, core: int) -> Event:
        flush = self._append(Event(self._fresh("e"), EventKind.TLB_FLUSH, core))
        for key in [k for k in self._tlb if k[0] == core]:
            del self._tlb[key]
        return flush

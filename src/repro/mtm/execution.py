"""Candidate ELT executions: a program plus a communication witness.

A candidate execution (paper §II-A, §III) is a program together with the
dynamic choices that distinguish one run from another:

* ``rf``    — reads-from edges, both at data locations (Write -> Read) and
  at PTE locations (PTE_WRITE/DIRTY_BIT_WRITE -> PT_WALK);
* ``co``    — per-location coherence order over write-like events;
* ``co_pa`` — the alias-creation order: per *target PA*, a total order on
  the PTE_WRITEs mapping some VA at that PA (§III-B1).

Everything else of Table I is **derived** here:

* ``rf_ptw`` falls out of the ghost structure and program positions — a
  user-facing access reads the most recent same-core walk of its VA, and it
  is ill-formed if an INVLPG intervened (the access would have re-walked);
* walk *values* (which mapping a walk loads) flow along PTE ``rf`` edges,
  through dirty-bit writes (which carry their parent's full PTE value —
  DESIGN.md decision 4), bottoming out at the initial mapping;
* effective PAs of user-facing accesses follow from their walk's mapping,
  which then fixes data locations, making ``com`` same-PA by construction;
* ``fr``, ``rf_pa``, ``fr_pa``, ``fr_va``, ``ptw_source``, ``po_loc`` ...
  are computed per their Table I definitions.

Structural violations raise :class:`WellFormednessError`; whether the
execution is *forbidden* is a question for a memory model's predicate
(:mod:`repro.models`), never for this module.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..errors import WellFormednessError
from ..relational import Instance, TupleSet
from . import names
from .events import Event, EventKind
from .program import Program

Pair = tuple[str, str]

#: A location is ('data', pa) or ('pte', va).
Location = tuple[str, str]


def derive_rf_ptw(program: Program) -> frozenset[Pair]:
    """walk -> user-facing events sourced by the TLB entry it loaded.

    Fully determined by the program's ghost structure and positions: each
    access uses the most recent same-core walk of its VA, invalidated by
    intervening INVLPGs and replaced by newer walks (one TLB entry per VA
    per core).  Raises if an access has no live entry and no walk of its
    own — such a program is ill-formed (§III-A1).

    Cached on the program (one Execution is built per witness per
    relaxation; the relation never changes).
    """
    cached = getattr(program, "_rf_ptw_cache", None)
    if cached is not None:
        return cached
    result = _derive_rf_ptw_uncached(program)
    object.__setattr__(program, "_rf_ptw_cache", result)
    return result


def _derive_rf_ptw_uncached(program: Program) -> frozenset[Pair]:
    if program.mcm_mode:
        return frozenset()
    pairs: set[Pair] = set()
    for core, thread in enumerate(program.threads):
        tlb: dict[str, str] = {}
        for eid in thread:
            event = program.events[eid]
            if event.kind is EventKind.INVLPG:
                assert event.va is not None
                tlb.pop(event.va, None)
                continue
            if event.kind is EventKind.TLB_FLUSH:
                tlb.clear()
                continue
            if not (event.is_user and event.is_memory_event):
                continue
            assert event.va is not None
            own_walks = [
                g
                for g in program.ghosts.get(eid, ())
                if program.events[g].kind is EventKind.PT_WALK
            ]
            if own_walks:
                tlb[event.va] = own_walks[0]
            walk = tlb.get(event.va)
            if walk is None:
                raise WellFormednessError(
                    f"{eid}: no TLB entry for VA {event.va} on core {core} "
                    "and no PT walk invoked — every access needs a "
                    "translation (§III-A1)"
                )
            pairs.add((walk, eid))
    return frozenset(pairs)


def location_of(event: Event, pa_of: Mapping[str, str]) -> Optional[Location]:
    """The shared-memory location an event accesses (None for INVLPG/FENCE)."""
    if event.accesses_pte:
        assert event.va is not None
        return ("pte", event.va)
    if event.kind in (EventKind.READ, EventKind.WRITE):
        return ("data", pa_of[event.eid])
    return None


def resolve_pte_values(
    program: Program,
    walk_source: Mapping[str, str],
    rf_ptw: frozenset[Pair],
) -> tuple[dict[str, tuple[str, str]], dict[str, Optional[str]]]:
    """Resolve the (va, pa) mapping each walk loads and the PTE_WRITE each
    mapping (transitively) originates from.

    ``walk_source`` maps a walk to its PTE-location rf source (PTE_WRITE or
    DIRTY_BIT_WRITE); walks absent from it read the initial mapping.
    Raises on circular value flow (a walk transitively feeding itself
    through dirty-bit forwarding).
    """
    user_walk = {user: walk for walk, user in rf_ptw}
    mapping: dict[str, tuple[str, str]] = {}
    origin: dict[str, Optional[str]] = {}
    in_progress: set[str] = set()

    def resolve(walk_eid: str) -> tuple[tuple[str, str], Optional[str]]:
        if walk_eid in mapping:
            return mapping[walk_eid], origin[walk_eid]
        if walk_eid in in_progress:
            raise WellFormednessError(
                f"{walk_eid}: circular PTE value flow (a walk transitively "
                "reads a dirty-bit write that depends on it)"
            )
        in_progress.add(walk_eid)
        walk = program.events[walk_eid]
        assert walk.va is not None
        source_eid = walk_source.get(walk_eid)
        if source_eid is None:
            value = (walk.va, program.initial_pa(walk.va))
            source_origin: Optional[str] = None
        else:
            source = program.events[source_eid]
            if source.kind is EventKind.PTE_WRITE:
                assert source.va is not None and source.pa is not None
                value = (source.va, source.pa)
                source_origin = source_eid
            else:  # DIRTY_BIT_WRITE: forwards its parent's mapping
                parent = program.parent_of(source_eid)
                parent_walk = user_walk.get(parent)
                if parent_walk is None:
                    raise WellFormednessError(
                        f"{source_eid}: dirty-bit write with untranslated parent"
                    )
                value, source_origin = resolve(parent_walk)
        in_progress.discard(walk_eid)
        mapping[walk_eid] = value
        origin[walk_eid] = source_origin
        return value, source_origin

    for eid, event in program.events.items():
        if event.kind is EventKind.PT_WALK:
            resolve(eid)
    return mapping, origin


class Execution:
    """An immutable candidate execution with all Table I relations derived.

    Raises :class:`WellFormednessError` if the witness violates a placement
    rule (bad rf typing, non-total co, unreachable TLB entries, circular
    PTE value flow, ...).
    """

    def __init__(
        self,
        program: Program,
        rf: Iterable[Pair] = (),
        co: Iterable[Pair] = (),
        co_pa: Iterable[Pair] = (),
    ) -> None:
        self.program = program
        self._rf = frozenset((a, b) for a, b in rf)
        self._co_input = frozenset((a, b) for a, b in co)
        self._co_pa_input = frozenset((a, b) for a, b in co_pa)
        self._derive()

    # ------------------------------------------------------------------
    # Derivation pipeline
    # ------------------------------------------------------------------
    def _derive(self) -> None:
        program = self.program
        events = program.events

        for a, b in self._rf | self._co_input | self._co_pa_input:
            if a not in events or b not in events:
                raise WellFormednessError(f"witness edge ({a},{b}) names unknown events")

        self.rf_ptw = self._derive_rf_ptw()
        self._walk_source = self._split_pte_rf()
        self.mapping_of_walk, self.origin_of_walk = self._resolve_walk_values()
        self.pa_of = self._derive_pas()
        self.locations = {
            eid: location_of(event, self.pa_of) for eid, event in events.items()
        }
        self._writers_cache = self._writers_by_location()
        self.co = self._close_and_validate_co()
        self.co_pa = self._close_and_validate_co_pa()
        self._validate_rf()
        self.relations = self._build_relations()

    # -- rf_ptw ---------------------------------------------------------
    def _derive_rf_ptw(self) -> frozenset[Pair]:
        return derive_rf_ptw(self.program)

    def _walk_of_user(self, eid: str) -> str:
        for walk, user in self.rf_ptw:
            if user == eid:
                return walk
        raise WellFormednessError(f"{eid}: no sourcing PT walk")

    # -- PTE value flow --------------------------------------------------
    def _split_pte_rf(self) -> dict[str, str]:
        """Map each PT walk to its rf source (a PTE-location writer)."""
        program = self.program
        sources: dict[str, str] = {}
        for src, dst in self._rf:
            dst_event = program.events[dst]
            if dst_event.kind is not EventKind.PT_WALK:
                continue
            src_event = program.events[src]
            if src_event.kind not in (
                EventKind.PTE_WRITE,
                EventKind.DIRTY_BIT_WRITE,
            ):
                raise WellFormednessError(
                    f"rf ({src},{dst}): a PT walk reads a PTE location; its "
                    "source must be a PTE write or dirty-bit write"
                )
            if src_event.va != dst_event.va:
                raise WellFormednessError(
                    f"rf ({src},{dst}): different PTE locations "
                    f"({src_event.va} vs {dst_event.va})"
                )
            if dst in sources:
                raise WellFormednessError(f"{dst}: walk with two rf sources")
            sources[dst] = src
        return sources

    def _resolve_walk_values(
        self,
    ) -> tuple[dict[str, tuple[str, str]], dict[str, Optional[str]]]:
        """For each walk: the (va, pa) mapping it loads and the PTE_WRITE it
        (transitively) originates from (None = initial mapping)."""
        return resolve_pte_values(self.program, self._walk_source, self.rf_ptw)

    def _derive_pas(self) -> dict[str, str]:
        """Effective PA accessed by each user-facing memory event."""
        pas: dict[str, str] = {}
        if self.program.mcm_mode:
            for eid, event in self.program.events.items():
                if event.is_user and event.is_memory_event:
                    assert event.va is not None
                    pas[eid] = self.program.initial_pa(event.va)
            return pas
        for walk, user in self.rf_ptw:
            pas[user] = self.mapping_of_walk[walk][1]
        return pas

    # -- coherence orders -------------------------------------------------
    def _writers_by_location(self) -> dict[Location, list[str]]:
        out: dict[Location, list[str]] = {}
        for eid, event in self.program.events.items():
            if not event.is_write_like:
                continue
            loc = self.locations[eid]
            assert loc is not None
            out.setdefault(loc, []).append(eid)
        return out

    def _close_and_validate_co(self) -> frozenset[Pair]:
        program = self.program
        for a, b in self._co_input:
            ea, eb = program.events[a], program.events[b]
            if not (ea.is_write_like and eb.is_write_like):
                raise WellFormednessError(f"co ({a},{b}): both ends must be writes")
            if self.locations[a] != self.locations[b]:
                raise WellFormednessError(
                    f"co ({a},{b}): coherence order relates same-location "
                    f"writes, got {self.locations[a]} vs {self.locations[b]}"
                )
        closed = TupleSet.pairs(self._co_input).plus()
        if not closed.is_irreflexive():
            raise WellFormednessError("co contains a cycle")
        for loc, writers in self._writers_cache.items():
            for i, a in enumerate(writers):
                for b in writers[i + 1 :]:
                    if (a, b) not in closed and (b, a) not in closed:
                        raise WellFormednessError(
                            f"co is not total at {loc}: {a} and {b} unordered"
                        )
        return frozenset(closed.tuples)

    def _close_and_validate_co_pa(self) -> frozenset[Pair]:
        program = self.program
        by_target: dict[str, list[str]] = {}
        for eid, event in program.events.items():
            if event.kind is EventKind.PTE_WRITE:
                assert event.pa is not None
                by_target.setdefault(event.pa, []).append(eid)
        for a, b in self._co_pa_input:
            ea, eb = program.events[a], program.events[b]
            if ea.kind is not EventKind.PTE_WRITE or eb.kind is not EventKind.PTE_WRITE:
                raise WellFormednessError(
                    f"co_pa ({a},{b}): both ends must be PTE writes"
                )
            if ea.pa != eb.pa:
                raise WellFormednessError(
                    f"co_pa ({a},{b}): alias-creation order relates remaps to "
                    f"the same PA, got {ea.pa} vs {eb.pa}"
                )
        closed = TupleSet.pairs(self._co_pa_input).plus()
        if not closed.is_irreflexive():
            raise WellFormednessError("co_pa contains a cycle")
        for pa, writers in by_target.items():
            for i, a in enumerate(writers):
                for b in writers[i + 1 :]:
                    if (a, b) not in closed and (b, a) not in closed:
                        raise WellFormednessError(
                            f"co_pa is not total for PA {pa}: {a}, {b} unordered"
                        )
        # Consistency with co where both apply (same PTE location).
        for a, b in closed:
            if self.locations[a] == self.locations[b] and (b, a) in self.co:
                raise WellFormednessError(
                    f"co_pa ({a},{b}) contradicts co at {self.locations[a]}"
                )
        return frozenset(closed.tuples)

    # -- rf validation -----------------------------------------------------
    def _validate_rf(self) -> None:
        program = self.program
        seen_readers: set[str] = set()
        for src, dst in self._rf:
            src_event = program.events[src]
            dst_event = program.events[dst]
            if dst_event.kind is EventKind.PT_WALK:
                continue  # validated in _split_pte_rf
            if dst_event.kind is not EventKind.READ:
                raise WellFormednessError(
                    f"rf ({src},{dst}): target must be a Read or PT walk"
                )
            if src_event.kind is not EventKind.WRITE:
                raise WellFormednessError(
                    f"rf ({src},{dst}): a data Read reads from a user-facing "
                    "Write"
                )
            if self.locations[src] != self.locations[dst]:
                raise WellFormednessError(
                    f"rf ({src},{dst}): source and target access different "
                    f"locations ({self.locations[src]} vs {self.locations[dst]})"
                )
            if dst in seen_readers:
                raise WellFormednessError(f"{dst}: read with two rf sources")
            seen_readers.add(dst)

    # ------------------------------------------------------------------
    # Relation construction (Table I + derived helpers)
    # ------------------------------------------------------------------
    def _build_relations(self) -> dict[str, TupleSet]:
        program = self.program
        events = program.events

        # Grouping by location beats the quadratic all-pairs scan.
        sloc_pairs: set[Pair] = set()
        by_location: dict[Location, list[str]] = {}
        for eid, loc in self.locations.items():
            if loc is not None:
                by_location.setdefault(loc, []).append(eid)
        for members in by_location.values():
            for a in members:
                for b in members:
                    if a != b:
                        sloc_pairs.add((a, b))

        raw = TupleSet._raw
        rf = raw(2, frozenset(self._rf))
        co = raw(2, frozenset(self.co))
        fr = raw(2, frozenset(self._derive_fr()))
        sloc = raw(2, frozenset(sloc_pairs))

        relations: dict[str, TupleSet] = dict(program.static_relations())
        apo = relations[names.APO]
        relations[names.SLOC] = sloc
        relations[names.PO_LOC] = apo & sloc
        relations[names.RF] = rf
        relations[names.CO] = co
        relations[names.FR] = fr
        relations[names.COM] = rf + co + fr
        relations[names.RFE] = raw(
            2,
            frozenset(
                (a, b)
                for a, b in self._rf
                if events[a].core != events[b].core
            ),
        )
        relations[names.RF_PTW] = raw(2, frozenset(self.rf_ptw))
        relations[names.PTW_SOURCE] = raw(
            2, frozenset(self._derive_ptw_source())
        )
        relations[names.RF_PA] = raw(2, frozenset(self._derive_rf_pa()))
        relations[names.CO_PA] = raw(2, frozenset(self.co_pa))
        relations[names.FR_PA] = raw(2, frozenset(self._derive_fr_pa()))
        relations[names.FR_VA] = raw(2, frozenset(self._derive_fr_va()))
        return relations

    def _derive_fr(self) -> set[Pair]:
        """Read -> co-successors of the write it read from; reads of the
        initial value precede every same-location write (applies at data
        locations and, for walks, at PTE locations)."""
        program = self.program
        writers = self._writers_cache
        rf_source: dict[str, str] = {}
        for src, dst in self._rf:
            rf_source[dst] = src
        out: set[Pair] = set()
        for eid, event in program.events.items():
            if not event.is_read_like:
                continue
            loc = self.locations[eid]
            assert loc is not None
            source = rf_source.get(eid)
            for writer in writers.get(loc, ()):
                if writer == eid:
                    continue
                if source is None:
                    out.add((eid, writer))
                elif (source, writer) in self.co:
                    out.add((eid, writer))
        return out

    def _derive_ptw_source(self) -> set[Pair]:
        """Walk invoker -> every other user of the same TLB entry (§V-A2)."""
        program = self.program
        out: set[Pair] = set()
        for walk, user in self.rf_ptw:
            invoker = program.walk_invoker(walk)
            if user != invoker:
                out.add((invoker, user))
        return out

    def _derive_rf_pa(self) -> set[Pair]:
        """PTE write -> user-facing events that access the mapping it wrote
        (transitively, through dirty-bit forwarding)."""
        out: set[Pair] = set()
        for walk, user in self.rf_ptw:
            origin = self.origin_of_walk[walk]
            if origin is not None:
                out.add((origin, user))
        return out

    def _derive_fr_va(self) -> set[Pair]:
        """User-facing event -> PTE writes that remap its VA after the PTE
        value it read (Table I; initial-mapping readers precede every remap
        of their VA)."""
        program = self.program
        pte_writes_by_va: dict[str, list[str]] = {}
        for eid, event in program.events.items():
            if event.kind is EventKind.PTE_WRITE:
                assert event.va is not None
                pte_writes_by_va.setdefault(event.va, []).append(eid)
        out: set[Pair] = set()
        for walk, user in self.rf_ptw:
            source = self._walk_source.get(walk)
            va = program.events[user].va
            assert va is not None
            for pte_eid in pte_writes_by_va.get(va, ()):
                if source is None:
                    out.add((user, pte_eid))
                elif (source, pte_eid) in self.co:
                    out.add((user, pte_eid))
        return out

    def _derive_fr_pa(self) -> set[Pair]:
        """User-facing event accessing PA p -> co_pa-successors of the remap
        it read its mapping from (initial readers precede every alias
        creation for their PA)."""
        program = self.program
        pte_writes_by_target: dict[str, list[str]] = {}
        for eid, event in program.events.items():
            if event.kind is EventKind.PTE_WRITE:
                assert event.pa is not None
                pte_writes_by_target.setdefault(event.pa, []).append(eid)
        out: set[Pair] = set()
        for walk, user in self.rf_ptw:
            origin = self.origin_of_walk[walk]
            pa = self.pa_of[user]
            for pte_eid in pte_writes_by_target.get(pa, ()):
                if origin is None:
                    out.add((user, pte_eid))
                elif (origin, pte_eid) in self.co_pa:
                    out.add((user, pte_eid))
        return out

    # ------------------------------------------------------------------
    # Views and export
    # ------------------------------------------------------------------
    def relation(self, name: str) -> TupleSet:
        try:
            return self.relations[name]
        except KeyError as exc:
            raise WellFormednessError(f"unknown relation {name!r}") from exc

    def to_instance(self) -> Instance:
        """Export as a relational :class:`Instance` (atoms = event ids) for
        the evaluator / SAT backend."""
        return Instance(self.program.eids, self.relations)

    def __repr__(self) -> str:
        return (
            f"Execution(events={len(self.program.events)}, "
            f"rf={sorted(self._rf)}, co={sorted(self.co)})"
        )

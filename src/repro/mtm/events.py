"""Event taxonomy of the MTM vocabulary (paper §II-A, §III, Table I).

Events come in three layers:

* **user-facing** instructions, fetched and issued by the program itself:
  ``READ`` and ``WRITE`` (a read-modify-write is a READ/WRITE pair linked by
  the ``rmw`` dependency), plus ``FENCE`` (MFENCE — consistency-only, kept
  for the x86-TSO ``fence`` axiom term);
* **support** instructions issued by the OS on the program's behalf
  (§III-B): ``PTE_WRITE`` (a VA-to-PA remap via system call) and ``INVLPG``
  (a TLB invalidation, delivered by IPI to every core for a remap, or
  issued spuriously);
* **ghost** instructions executed by hardware on behalf of a user-facing
  instruction (§III-A): ``PT_WALK`` (a page-table walk — a *read* of a PTE)
  and ``DIRTY_BIT_WRITE`` (a *write* of a PTE's dirty bit).

Ghost instructions are never related by ``po``; they attach to their
invoking instruction through the ``ghost`` relation and inherit its program
position for same-location ordering (DESIGN.md decision 2).

Locations are two-tiered: user-facing READ/WRITE events name a *virtual
address* but dynamically access the *physical address* their translation
maps to; PTE accessors (PT_WALK, DIRTY_BIT_WRITE, PTE_WRITE) access the
page-table entry ``pte(va)`` of the VA they translate/remap.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..errors import VocabularyError


class EventKind(Enum):
    READ = "R"
    WRITE = "W"
    PTE_WRITE = "WPTE"
    INVLPG = "INVLPG"
    PT_WALK = "Rptw"
    DIRTY_BIT_WRITE = "Wdb"
    FENCE = "MFENCE"
    #: Whole-TLB flush — the "additional IPI types" extension the paper
    #: defers to future work (§III-B2).  Spurious only: remaps still fan
    #: out targeted INVLPGs.
    TLB_FLUSH = "TLBFLUSH"

    def __str__(self) -> str:
        return self.value


USER_KINDS = frozenset({EventKind.READ, EventKind.WRITE})
SUPPORT_KINDS = frozenset(
    {
        EventKind.PTE_WRITE,
        EventKind.INVLPG,
        EventKind.FENCE,
        EventKind.TLB_FLUSH,
    }
)
GHOST_KINDS = frozenset({EventKind.PT_WALK, EventKind.DIRTY_BIT_WRITE})

#: Kinds that take no address operand.
ADDRESSLESS_KINDS = frozenset({EventKind.FENCE, EventKind.TLB_FLUSH})

#: Kinds that access shared memory (INVLPG and FENCE do not).
MEMORY_KINDS = frozenset(
    {
        EventKind.READ,
        EventKind.WRITE,
        EventKind.PTE_WRITE,
        EventKind.PT_WALK,
        EventKind.DIRTY_BIT_WRITE,
    }
)

WRITE_KINDS = frozenset(
    {EventKind.WRITE, EventKind.PTE_WRITE, EventKind.DIRTY_BIT_WRITE}
)
READ_KINDS = frozenset({EventKind.READ, EventKind.PT_WALK})

#: Kinds that access a PTE location rather than a data location.
PTE_ACCESS_KINDS = frozenset(
    {EventKind.PTE_WRITE, EventKind.PT_WALK, EventKind.DIRTY_BIT_WRITE}
)


@dataclass(frozen=True)
class Event:
    """One micro-op of an ELT.

    ``eid``
        Unique identifier within a program; doubles as the atom name in
        relational instances.
    ``kind``
        The :class:`EventKind`.
    ``core``
        Core index (each ELT thread runs on its own core — paper §III-C.1).
    ``va``
        The virtual address the event names: the accessed VA for
        READ/WRITE/INVLPG, and the *translated* VA for PTE_WRITE / PT_WALK /
        DIRTY_BIT_WRITE (i.e. these access location ``pte(va)``).
        None for FENCE.
    ``pa``
        Only for PTE_WRITE: the new physical address the remap points
        ``va`` at.
    """

    eid: str
    kind: EventKind
    core: int
    va: Optional[str] = None
    pa: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind in ADDRESSLESS_KINDS:
            if self.va is not None:
                raise VocabularyError(
                    f"{self.eid}: {self.kind} takes no address"
                )
        elif self.va is None:
            raise VocabularyError(f"{self.eid}: {self.kind} requires a VA")
        if self.kind is EventKind.PTE_WRITE:
            if self.pa is None:
                raise VocabularyError(f"{self.eid}: PTE_WRITE requires a target PA")
        elif self.pa is not None:
            raise VocabularyError(f"{self.eid}: only PTE_WRITE carries a target PA")
        if self.core < 0:
            raise VocabularyError(f"{self.eid}: negative core index")
        # Precomputed classification flags: these predicates sit in the
        # synthesis engine's innermost loops, where repeated enum-set
        # membership hashing showed up in profiles.
        object.__setattr__(self, "is_user", self.kind in USER_KINDS)
        object.__setattr__(self, "is_support", self.kind in SUPPORT_KINDS)
        object.__setattr__(self, "is_ghost", self.kind in GHOST_KINDS)
        object.__setattr__(
            self, "is_memory_event", self.kind in MEMORY_KINDS
        )
        object.__setattr__(self, "is_write_like", self.kind in WRITE_KINDS)
        object.__setattr__(self, "is_read_like", self.kind in READ_KINDS)
        object.__setattr__(
            self, "accesses_pte", self.kind in PTE_ACCESS_KINDS
        )

    def __str__(self) -> str:
        suffix = f" {self.va}" if self.va is not None else ""
        target = f"->{self.pa}" if self.pa is not None else ""
        return f"{self.kind}{suffix}{target}@C{self.core}"

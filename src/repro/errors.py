"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch library failures with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CnfError(ReproError):
    """Malformed CNF input (bad literal, empty variable range, ...)."""


class DimacsError(ReproError):
    """Malformed DIMACS file contents."""


class RelationalError(ReproError):
    """Errors in relational specifications (arity mismatch, unknown relation,
    unbound variable, bad bounds)."""


class ArityError(RelationalError):
    """A relational expression was combined with an incompatible arity."""


class VocabularyError(ReproError):
    """An ELT/event structure violates the MTM vocabulary's typing rules
    (e.g. a ghost instruction with a program-order edge)."""


class WellFormednessError(ReproError):
    """A program or candidate execution violates a structural placement rule
    (distinct from being *forbidden*, which is a model-predicate question)."""


class SynthesisError(ReproError):
    """Errors in synthesis configuration (bad bound, unknown axiom name)."""


class LitmusFormatError(ReproError):
    """Malformed textual litmus/ELT representation."""

"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch library failures with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CnfError(ReproError):
    """Malformed CNF input (bad literal, empty variable range, ...)."""


class DimacsError(ReproError):
    """Malformed DIMACS file contents."""


class RelationalError(ReproError):
    """Errors in relational specifications (arity mismatch, unknown relation,
    unbound variable, bad bounds)."""


class ArityError(RelationalError):
    """A relational expression was combined with an incompatible arity."""


class VocabularyError(ReproError):
    """An ELT/event structure violates the MTM vocabulary's typing rules
    (e.g. a ghost instruction with a program-order edge)."""


class WellFormednessError(ReproError):
    """A program or candidate execution violates a structural placement rule
    (distinct from being *forbidden*, which is a model-predicate question)."""


class SynthesisError(ReproError):
    """Errors in synthesis configuration (bad bound, unknown axiom name)."""


class AccelUnavailableError(ReproError):
    """The ``accel`` solver core was requested but the native extension
    (:mod:`repro.sat._accel`) is not built in this environment.

    The message carries the build hint (``python -m repro.sat.build_accel``);
    the pure-Python ``array`` and ``object`` cores are always available.
    """


class SolverInterrupted(ReproError):
    """A SAT query was cut short by a cooperative deadline.

    Raised from inside :class:`repro.sat.CdclSolver`'s search loops when
    the deadline installed by :func:`repro.resilience.deadline_scope`
    expires; the solver backtracks to level 0 first, so it stays usable.
    The synthesis pipelines catch this and mark the run ``timed_out``.
    """


class ShardFailure(ReproError):
    """A shard exhausted its retry budget.

    Carries the shard spec label and the attempt count so the final
    error names which shard died; the original exception rides along as
    ``__cause__`` when raised via ``raise ... from``.
    """

    def __init__(self, label: str, attempts: int, kind: str = "exception"):
        self.label = label
        self.attempts = attempts
        self.kind = kind
        super().__init__(
            f"shard {label} failed after {attempts} attempt(s) ({kind})"
        )


class LitmusFormatError(ReproError):
    """Malformed textual litmus/ELT representation."""

"""Persistent, content-addressed suite store.

The store makes synthesis runs *resumable* and *skippable*: every
completed shard and every completed merged suite is written under a key
derived from the full synthesis configuration (plus the shard spec for
shard entries), so re-running the same command — after an interruption,
or verbatim — loads finished work instead of recomputing it.

Layout (documented alongside the suite text format in
:mod:`repro.litmus.suitefile`)::

    <cache_dir>/
      entries/
        <key>.json   # metadata: kind, config fingerprint inputs, stats
        <key>.pkl    # payload: pickled ShardResult or SuiteResult

``<key>`` is the first 32 hex digits of the SHA-256 of a canonical JSON
rendering of the entry identity.  Identity covers every knob that can
change the synthesized artifact — model name and axiom list, bound,
target axiom, thread/VA caps, feature toggles, ablations, the time
budget, a schema version (bumped whenever engine output semantics
change), and for shard entries the shard stride — so a stale or
mismatched cache can never masquerade as a hit.

Writes are atomic (tempfile + ``os.replace``) so an interrupted run never
leaves a half-written entry; timed-out results are **never** stored
(their partial suites must not satisfy a later complete run).  The store
keeps ``hits`` / ``misses`` / ``stores`` counters that the resume tests
and the CLI surface.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Any, Optional, Union

from ..obs import current_registry, current_tracer
from ..synth import SynthesisConfig
from .shards import ShardSpec

#: Bump when engine output semantics change: cached entries from older
#: schemas silently become misses.  2: order-free representative
#: selection (identity-ranked class winners, (canonical key, witness
#: sort key)-minimal witnesses) and the symmetry-aware pipeline fields.
#: 3: shard results grew observability payload fields (span batches and
#: metrics registries) — older pickles lack them, so they must miss.
SCHEMA_VERSION = 3

KIND_SHARD = "shard"
KIND_SUITE = "suite"
# Differential-conformance entries (payloads produced by
# repro.conformance: DiffShardResult and ConformanceCell).  Their
# identity dicts additionally carry the subject model; see
# repro.conformance.runner.diff_identity.
KIND_DIFF_SHARD = "diff-shard"
KIND_DIFF_CELL = "diff-cell"


def config_identity(config: SynthesisConfig) -> dict[str, Any]:
    """The JSON-safe identity of a synthesis configuration.

    The model contributes its name and ordered axiom names (axiom
    *predicates* are code; the schema version stands in for code
    revisions).  All other dataclass fields participate directly.
    """
    identity: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "model": config.model.name,
        "axioms": list(config.model.axiom_names),
    }
    for name, value in asdict(config).items():
        if name == "model":
            continue
        if name in ("incremental", "symmetry"):
            # Output-invariant execution strategies (like --jobs): the
            # incremental-session path is contractually byte-identical
            # to the fresh-solver path, and the symmetry-pruned path to
            # the --no-symmetry oracle, so each pair shares cache
            # entries.
            continue
        identity[name] = value
    return identity


def identity_key(identity: dict[str, Any]) -> str:
    """Content-address an arbitrary JSON-safe identity dict (the raw
    primitive behind :func:`entry_key`; conformance entries build their
    own identity dicts and hash them through this)."""
    rendered = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()[:32]


def entry_key(
    config: SynthesisConfig,
    kind: str,
    spec: Optional[ShardSpec] = None,
) -> str:
    identity = config_identity(config)
    identity["kind"] = kind
    if spec is not None:
        identity["shard"] = asdict(spec)
    return identity_key(identity)


@dataclass
class StoreCounters:
    hits: int = 0
    misses: int = 0
    stores: int = 0


class SuiteStore:
    """On-disk cache of completed shard and suite results."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.entries_dir = self.root / "entries"
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        self.counters = StoreCounters()

    # -- paths ---------------------------------------------------------
    def _payload_path(self, key: str) -> Path:
        return self.entries_dir / f"{key}.pkl"

    def _meta_path(self, key: str) -> Path:
        return self.entries_dir / f"{key}.json"

    # -- primitives ----------------------------------------------------
    def has(self, key: str) -> bool:
        return self._payload_path(key).exists()

    def get(self, key: str) -> Optional[Any]:
        path = self._payload_path(key)
        with current_tracer().span("store.get", category="store", key=key) as span:
            try:
                with open(path, "rb") as handle:
                    payload = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError):
                self.counters.misses += 1
                current_registry().inc("store.misses", informational=True)
                if span is not None:
                    span.args["hit"] = False
                return None
            self.counters.hits += 1
            current_registry().inc("store.hits", informational=True)
            if span is not None:
                span.args["hit"] = True
            return payload

    def put(self, key: str, payload: Any, meta: dict[str, Any]) -> None:
        with current_tracer().span("store.put", category="store", key=key):
            self._atomic_write(
                self._meta_path(key),
                json.dumps(meta, sort_keys=True, indent=2).encode("utf-8"),
            )
            self._atomic_write(
                self._payload_path(key), pickle.dumps(payload, protocol=4)
            )
        self.counters.stores += 1
        current_registry().inc("store.stores", informational=True)

    def _atomic_write(self, path: Path, data: bytes) -> None:
        descriptor, tmp_name = tempfile.mkstemp(
            dir=self.entries_dir, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- typed helpers -------------------------------------------------
    def load_shard(self, config: SynthesisConfig, spec: ShardSpec):
        return self.get(entry_key(config, KIND_SHARD, spec))

    def save_shard(self, config: SynthesisConfig, spec: ShardSpec, shard_result) -> None:
        if shard_result.stats.timed_out:
            return  # partial work must not satisfy a later complete run
        # Span batches describe one concrete run and must not replay from
        # cache; the metrics registry *is* stored — its histograms follow
        # the snapshot-replay convention, so cache hits re-report them.
        if getattr(shard_result, "spans", None) is not None:
            shard_result = replace(shard_result, spans=None)
        self.put(
            entry_key(config, KIND_SHARD, spec),
            shard_result,
            {
                "kind": KIND_SHARD,
                "identity": config_identity(config),
                "shard": asdict(spec),
                "unique_programs": shard_result.stats.unique_programs,
                "runtime_s": shard_result.runtime_s,
            },
        )

    def load_suite(self, config: SynthesisConfig):
        return self.get(entry_key(config, KIND_SUITE))

    def save_suite(self, config: SynthesisConfig, result) -> None:
        if result.stats.timed_out:
            return
        self.put(
            entry_key(config, KIND_SUITE),
            result,
            {
                "kind": KIND_SUITE,
                "identity": config_identity(config),
                "unique_programs": result.stats.unique_programs,
                "runtime_s": result.stats.runtime_s,
            },
        )

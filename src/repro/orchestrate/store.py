"""Persistent, content-addressed suite store.

The store makes synthesis runs *resumable* and *skippable*: every
completed shard and every completed merged suite is written under a key
derived from the full synthesis configuration (plus the shard spec for
shard entries), so re-running the same command — after an interruption,
or verbatim — loads finished work instead of recomputing it.

Layout (documented alongside the suite text format in
:mod:`repro.litmus.suitefile`)::

    <cache_dir>/
      entries/
        <key>.json   # metadata: kind, config fingerprint inputs, stats,
                     # and the payload's blake2b digest
        <key>.pkl    # payload: pickled ShardResult or SuiteResult
      quarantine/    # corrupt/torn entries moved aside by verify-on-read
      .write.lock    # cross-process writer lock (best-effort)

``<key>`` is the first 32 hex digits of the SHA-256 of a canonical JSON
rendering of the entry identity.  Identity covers every knob that can
change the synthesized artifact — model name and axiom list, bound,
target axiom, thread/VA caps, feature toggles, ablations, the time
budget, a schema version (bumped whenever engine output semantics
change), and for shard entries the shard stride — so a stale or
mismatched cache can never masquerade as a hit.

Integrity: every payload's blake2b digest is recorded in the entry meta
and **verified on read** before unpickling.  A corrupt, torn, or
undigested entry is never unpickled — it is moved into ``quarantine/``,
counted under ``counters.corrupt`` (distinct from ``counters.misses``:
a true absence), logged with its key, and served as a cache miss so the
caller recomputes (and heals) it.  Writers additionally take a
best-effort cross-process :class:`~repro.resilience.FileLock` around
the meta+payload pair.  :meth:`SuiteStore.verify` scans the whole store
offline (the ``repro store verify`` / ``--repair`` CLI).

Writes are atomic (tempfile + ``os.replace``) so an interrupted run never
leaves a half-written entry; timed-out or degraded results are **never**
stored (their partial suites must not satisfy a later complete run).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Optional, Union

from ..obs import current_registry, current_tracer
from ..resilience import FaultPlan, FileLock, flip_bit
from ..synth import SynthesisConfig
from .shards import ShardSpec

logger = logging.getLogger(__name__)

#: Bump when engine output semantics change: cached entries from older
#: schemas silently become misses.  2: order-free representative
#: selection (identity-ranked class winners, (canonical key, witness
#: sort key)-minimal witnesses) and the symmetry-aware pipeline fields.
#: 3: shard results grew observability payload fields (span batches and
#: metrics registries) — older pickles lack them, so they must miss.
#: 4: integrity-checked entries (payload digests required in meta) and
#: resilience fields on tasks/stats — undigested entries must miss.
SCHEMA_VERSION = 4

KIND_SHARD = "shard"
KIND_SUITE = "suite"
# Differential-conformance entries (payloads produced by
# repro.conformance: DiffShardResult and ConformanceCell).  Their
# identity dicts additionally carry the subject model; see
# repro.conformance.runner.diff_identity.
KIND_DIFF_SHARD = "diff-shard"
KIND_DIFF_CELL = "diff-cell"
# Coverage-guided fuzzing entries (payloads produced by repro.fuzz:
# FuzzShardResult per (round, shard), FuzzRunResult per run).  Their
# identity dicts come from repro.fuzz.config.fuzz_identity — seed,
# bound, pair, and round/attempt schedule; see repro.fuzz.runner.
KIND_FUZZ_SHARD = "fuzz-shard"
KIND_FUZZ_RUN = "fuzz-run"


def config_identity(config: SynthesisConfig) -> dict[str, Any]:
    """The JSON-safe identity of a synthesis configuration.

    The model contributes its name and ordered axiom names (axiom
    *predicates* are code; the schema version stands in for code
    revisions).  All other dataclass fields participate directly.
    """
    identity: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "model": config.model.name,
        "axioms": list(config.model.axiom_names),
    }
    for name, value in asdict(config).items():
        if name == "model":
            continue
        if name in ("incremental", "symmetry", "solver_core", "inprocessing"):
            # Output-invariant execution strategies (like --jobs): the
            # incremental-session path is contractually byte-identical
            # to the fresh-solver path, the symmetry-pruned path to the
            # --no-symmetry oracle, and the array solver core and
            # inprocessing passes to the plain object-core search, so
            # each variant shares cache entries.
            continue
        identity[name] = value
    return identity


def identity_key(identity: dict[str, Any]) -> str:
    """Content-address an arbitrary JSON-safe identity dict (the raw
    primitive behind :func:`entry_key`; conformance entries build their
    own identity dicts and hash them through this)."""
    rendered = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()[:32]


def entry_key(
    config: SynthesisConfig,
    kind: str,
    spec: Optional[ShardSpec] = None,
) -> str:
    identity = config_identity(config)
    identity["kind"] = kind
    if spec is not None:
        identity["shard"] = asdict(spec)
    return identity_key(identity)


def payload_digest(data: bytes) -> str:
    """The store's payload digest: blake2b-256 hex."""
    return hashlib.blake2b(data, digest_size=32).hexdigest()


@dataclass
class StoreCounters:
    hits: int = 0
    #: True absences: no payload on disk for the key.
    misses: int = 0
    #: Corrupt/torn/undigested entries quarantined on read — distinct
    #: from ``misses`` so resume reporting can tell "never computed"
    #: from "computed but damaged".
    corrupt: int = 0
    stores: int = 0


@dataclass
class VerifyReport:
    """Outcome of one offline :meth:`SuiteStore.verify` scan."""

    scanned: int = 0
    ok: int = 0
    #: Keys whose payload digest/meta failed verification.
    corrupt: list[str] = field(default_factory=list)
    #: Keys with a payload but no meta, or meta but no payload.
    orphaned: list[str] = field(default_factory=list)
    #: True when --repair moved the bad entries into quarantine/.
    repaired: bool = False

    @property
    def clean(self) -> bool:
        return not self.corrupt and not self.orphaned

    def to_json(self) -> dict[str, Any]:
        return {
            "scanned": self.scanned,
            "ok": self.ok,
            "corrupt": sorted(self.corrupt),
            "orphaned": sorted(self.orphaned),
            "repaired": self.repaired,
            "clean": self.clean,
        }


class SuiteStore:
    """On-disk cache of completed shard and suite results.

    ``faults`` is the chaos hook: a seeded
    :class:`~repro.resilience.FaultPlan` may flip one bit in a payload
    as it is written (first write per key only), exercising exactly the
    verify-on-read/quarantine/recompute path a torn write would.
    """

    def __init__(
        self, root: Union[str, Path], faults: Optional[FaultPlan] = None
    ) -> None:
        self.root = Path(root)
        self.entries_dir = self.root / "entries"
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir = self.root / "quarantine"
        self.counters = StoreCounters()
        self.faults = faults
        self._lock = FileLock(self.root / ".write.lock")

    # -- paths ---------------------------------------------------------
    def _payload_path(self, key: str) -> Path:
        return self.entries_dir / f"{key}.pkl"

    def _meta_path(self, key: str) -> Path:
        return self.entries_dir / f"{key}.json"

    # -- primitives ----------------------------------------------------
    def has(self, key: str) -> bool:
        return self._payload_path(key).exists()

    def _read_meta(self, key: str) -> Optional[dict[str, Any]]:
        try:
            with open(self._meta_path(key), "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return meta if isinstance(meta, dict) else None

    def _quarantine(self, key: str, reason: str) -> None:
        """Move a damaged entry aside so the caller recomputes it."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        for path in (self._payload_path(key), self._meta_path(key)):
            if path.exists():
                try:
                    os.replace(path, self.quarantine_dir / path.name)
                except OSError:
                    pass
        self.counters.corrupt += 1
        current_registry().inc("store.corrupt", informational=True)
        logger.warning(
            "quarantined corrupt store entry %s (%s) under %s",
            key,
            reason,
            self.quarantine_dir,
        )

    def get(self, key: str) -> Optional[Any]:
        path = self._payload_path(key)
        with current_tracer().span("store.get", category="store", key=key) as span:
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except FileNotFoundError:
                self.counters.misses += 1
                current_registry().inc("store.misses", informational=True)
                if span is not None:
                    span.args["hit"] = False
                return None
            except OSError:
                data = None
            reason = None
            payload = None
            if data is None:
                reason = "unreadable payload"
            else:
                meta = self._read_meta(key)
                expected = (meta or {}).get("payload_blake2b")
                if expected is None:
                    reason = "missing or undigested meta"
                elif payload_digest(data) != expected:
                    reason = "payload digest mismatch"
                else:
                    try:
                        payload = pickle.loads(data)
                    except Exception:
                        reason = "unpicklable payload"
            if reason is not None:
                self._quarantine(key, reason)
                if span is not None:
                    span.args["hit"] = False
                    span.args["corrupt"] = True
                return None
            self.counters.hits += 1
            current_registry().inc("store.hits", informational=True)
            if span is not None:
                span.args["hit"] = True
            return payload

    def put(self, key: str, payload: Any, meta: dict[str, Any]) -> None:
        data = pickle.dumps(payload, protocol=4)
        meta = dict(meta)
        meta["payload_blake2b"] = payload_digest(data)
        meta["payload_bytes"] = len(data)
        # Fault injection models the storage medium corrupting bytes
        # *after* the digest was taken — flipping before digesting would
        # make the digest vouch for the corrupted payload, hiding every
        # flip that still unpickles.
        if self.faults is not None and self.faults.take_store_corruption(key):
            data = flip_bit(data, self.faults.corrupt_offset(key, len(data)))
        with current_tracer().span("store.put", category="store", key=key):
            with self._lock:
                self._atomic_write(
                    self._meta_path(key),
                    json.dumps(meta, sort_keys=True, indent=2).encode("utf-8"),
                )
                self._atomic_write(self._payload_path(key), data)
        self.counters.stores += 1
        current_registry().inc("store.stores", informational=True)

    def _atomic_write(self, path: Path, data: bytes) -> None:
        descriptor, tmp_name = tempfile.mkstemp(
            dir=self.entries_dir, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- offline integrity ---------------------------------------------
    def verify(self, repair: bool = False) -> VerifyReport:
        """Digest-check every entry; with ``repair``, quarantine the
        damaged ones (the ``repro store verify [--repair]`` backend).

        Unpaired files (payload without meta or meta without payload —
        a write torn between the two) count as ``orphaned``.
        """
        report = VerifyReport()
        keys = sorted(
            {path.stem for path in self.entries_dir.glob("*.pkl")}
            | {path.stem for path in self.entries_dir.glob("*.json")}
        )
        bad: list[str] = []
        for key in keys:
            report.scanned += 1
            payload_path = self._payload_path(key)
            meta = self._read_meta(key)
            if not payload_path.exists() or meta is None:
                report.orphaned.append(key)
                bad.append(key)
                continue
            expected = meta.get("payload_blake2b")
            try:
                data = payload_path.read_bytes()
            except OSError:
                data = None
            if (
                data is None
                or expected is None
                or payload_digest(data) != expected
            ):
                report.corrupt.append(key)
                bad.append(key)
                continue
            report.ok += 1
        if repair and bad:
            with self._lock:
                for key in bad:
                    self._quarantine(key, "verify --repair")
            report.repaired = True
        return report

    # -- typed helpers -------------------------------------------------
    def load_shard(self, config: SynthesisConfig, spec: ShardSpec):
        return self.get(entry_key(config, KIND_SHARD, spec))

    def save_shard(self, config: SynthesisConfig, spec: ShardSpec, shard_result) -> None:
        if shard_result.stats.timed_out:
            return  # partial work must not satisfy a later complete run
        # Span batches describe one concrete run and must not replay from
        # cache; the metrics registry *is* stored — its histograms follow
        # the snapshot-replay convention, so cache hits re-report them.
        if getattr(shard_result, "spans", None) is not None:
            shard_result = replace(shard_result, spans=None)
        self.put(
            entry_key(config, KIND_SHARD, spec),
            shard_result,
            {
                "kind": KIND_SHARD,
                "identity": config_identity(config),
                "shard": asdict(spec),
                "unique_programs": shard_result.stats.unique_programs,
                "runtime_s": shard_result.runtime_s,
            },
        )

    def load_suite(self, config: SynthesisConfig):
        return self.get(entry_key(config, KIND_SUITE))

    def save_suite(self, config: SynthesisConfig, result) -> None:
        if result.stats.timed_out or result.stats.degraded:
            return  # partial/degraded work must not satisfy a complete run
        self.put(
            entry_key(config, KIND_SUITE),
            result,
            {
                "kind": KIND_SUITE,
                "identity": config_identity(config),
                "unique_programs": result.stats.unique_programs,
                "runtime_s": result.stats.runtime_s,
            },
        )

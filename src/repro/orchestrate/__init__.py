"""Sharded parallel synthesis orchestration (scaling the Fig 7 pipeline).

The synthesis search is embarrassingly parallel: the skeleton/program
enumeration partitions into independent work units, each shard runs the
identical pipeline, and canonical-form merging reconstructs the exact
serial result.  This package provides:

* :class:`ShardSpec` / :func:`plan_shards` / :func:`shard_programs` —
  deterministic partitioning of the enumeration space;
* :func:`run_shard` — the spawn-safe worker entry point;
* :func:`merge_shards` — serial-equivalent cross-shard deduplication;
* :class:`SuiteStore` — the persistent content-addressed result cache;
* :func:`run_sharded` / :func:`run_sweep_sharded` — the orchestrator.
"""

from .merge import MergeReport, merge_shards
from .runner import OrchestratedResult, run_sharded, run_sweep_sharded
from .shards import (
    DEFAULT_OVERSUBSCRIPTION,
    ShardSpec,
    plan_pair_shards,
    plan_shards,
    shard_programs,
)
from .store import (
    KIND_DIFF_CELL,
    KIND_DIFF_SHARD,
    KIND_FUZZ_RUN,
    KIND_FUZZ_SHARD,
    KIND_SHARD,
    KIND_SUITE,
    SCHEMA_VERSION,
    SuiteStore,
    config_identity,
    entry_key,
    identity_key,
)
from .worker import ShardElt, ShardResult, ShardTask, run_shard

__all__ = [
    "DEFAULT_OVERSUBSCRIPTION",
    "KIND_DIFF_CELL",
    "KIND_DIFF_SHARD",
    "KIND_FUZZ_RUN",
    "KIND_FUZZ_SHARD",
    "KIND_SHARD",
    "KIND_SUITE",
    "MergeReport",
    "OrchestratedResult",
    "SCHEMA_VERSION",
    "ShardElt",
    "ShardResult",
    "ShardSpec",
    "ShardTask",
    "SuiteStore",
    "config_identity",
    "entry_key",
    "identity_key",
    "merge_shards",
    "plan_pair_shards",
    "plan_shards",
    "run_shard",
    "run_sharded",
    "run_sweep_sharded",
    "shard_programs",
]

"""Cross-shard deduplication and serial-equivalent merging.

Why the merged result is *provably* identical to a serial run
-------------------------------------------------------------

The serial engine deduplicates on two levels: canonical execution keys
(skip duplicate witnesses) and canonical program keys (one
:class:`SynthesizedElt` per program class, first program wins, its first
minimal forbidden witness becomes the representative execution).

Both keys are canonical — invariant under thread permutation and VA/PA/
event-id renaming — so two programs with the same canonical key have
*isomorphic* execution sets, and an execution's key determines its
program's key.  Consequences:

1. **ELT membership is shard-invariant.**  A program class yields an ELT
   iff any one of its member programs does; each member yields the same
   canonical execution-key set regardless of which shard it lands in.
2. **Representative choice is order-free.**  The pipeline selects, per
   class, the member program with the smallest identity rank
   (``SynthesizedElt.rep_rank``) and, within it, the minimal forbidden
   witness minimizing *(canonical execution key, witness sort key)*.
   Both ranks are properties of the entry, not of enumeration order, so
   the cross-shard minimum over ``(rep_rank, order)`` reproduces the
   serial entry byte-for-byte — whichever shard the class members landed
   in, and whether or not symmetry pruning thinned their witness
   streams (pruned witnesses are never rank-minimal).
3. **Outcome counts are shard-invariant.**  ``outcome_count`` counts the
   distinct canonical minimal forbidden execution keys of class K, a
   quantity every member program reproduces in full; duplicated class
   members across shards therefore report the *same* count, and the merge
   takes the winner's (equal) value rather than summing.

Aggregate counters (programs/executions enumerated, interesting, minimal)
are summed; they can legitimately exceed the serial numbers when duplicate
program classes straddle shards (serial skips what a shard cannot know was
seen elsewhere).  The ELT list itself — the artifact — is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..resilience import FailureRecord
from ..synth import SuiteResult, SuiteStats, SynthesisConfig
from .worker import ShardElt, ShardResult


@dataclass
class MergeReport:
    """Bookkeeping from one merge: how much cross-shard overlap existed."""

    shard_count: int = 0
    shard_elts: int = 0
    cross_shard_duplicates: int = 0
    per_shard: list[ShardResult] = field(default_factory=list)
    #: Labels of quarantined shards missing from the merge (the suite is
    #: degraded when this is non-empty).
    failed_shards: list[str] = field(default_factory=list)


def merge_shards(
    config: SynthesisConfig,
    shard_results: Iterable[ShardResult],
    runtime_s: float = 0.0,
    failures: Iterable[FailureRecord] = (),
) -> tuple[SuiteResult, MergeReport]:
    """Fuse shard results into one serial-equivalent :class:`SuiteResult`.

    ``failures`` (quarantined shards from the resilient scheduler) mark
    the merged suite ``degraded``: every completed shard is still fused,
    but the artifact is explicitly partial and will not be cached.
    """
    report = MergeReport()
    stats = SuiteStats()
    best: dict = {}  # ProgramKey -> ShardElt with minimal order
    for shard in shard_results:
        report.shard_count += 1
        report.per_shard.append(shard)
        stats.absorb(shard.stats)
        for shard_elt in shard.elts:
            report.shard_elts += 1
            current = best.get(shard_elt.elt.key)
            if current is None:
                best[shard_elt.elt.key] = shard_elt
            else:
                report.cross_shard_duplicates += 1
                if (shard_elt.elt.rep_rank, shard_elt.order) < (
                    current.elt.rep_rank,
                    current.order,
                ):
                    best[shard_elt.elt.key] = shard_elt

    for failure in failures:
        report.failed_shards.append(failure.label)
        stats.degraded = True

    result = SuiteResult(config.bound, config.target_axiom, stats=stats)
    result.elts = sorted(
        (shard_elt.elt for shard_elt in best.values()), key=lambda e: e.key
    )
    stats.unique_programs = len(result.elts)
    stats.runtime_s = runtime_s
    return result, report

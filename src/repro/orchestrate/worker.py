"""Spawn-safe shard execution.

A worker process receives a pickled :class:`ShardTask` (config + shard
spec + wall-clock deadline), runs the shared Fig 7 pipeline
(:func:`repro.synth.run_pipeline`) over the shard's slice of the program
stream, and returns a :class:`ShardResult` carrying every surviving ELT
*with its enumeration order key* so the merge layer can reconstruct the
serial representative choice.

Everything here is a module-level function/dataclass so it pickles under
the ``spawn`` start method (the only start method that is safe on every
platform and under threads); no closures or fork-inherited state are
involved.  Deadlines travel as wall-clock (``time.time``) timestamps,
which are comparable across processes, and are converted to each worker's
own monotonic clock on arrival.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..synth import SuiteStats, SynthesisConfig, run_pipeline
from ..synth.engine import OrderKey, SynthesizedElt
from .shards import ShardSpec, shard_programs


@dataclass(frozen=True)
class ShardTask:
    """One unit of work shipped to a worker process."""

    config: SynthesisConfig
    spec: ShardSpec
    #: Absolute wall-clock deadline (``time.time()``), or None.
    wall_deadline: Optional[float] = None


@dataclass
class ShardElt:
    """A shard-local ELT plus the global enumeration order key of the
    program that produced it."""

    order: OrderKey
    elt: SynthesizedElt


@dataclass
class ShardResult:
    spec: ShardSpec
    elts: list[ShardElt] = field(default_factory=list)
    stats: SuiteStats = field(default_factory=SuiteStats)
    runtime_s: float = 0.0

    @property
    def timed_out(self) -> bool:
        return self.stats.timed_out


def run_shard(task: ShardTask) -> ShardResult:
    """Execute one shard (in-process or in a worker process)."""
    started = time.monotonic()
    deadline = None
    if task.wall_deadline is not None:
        deadline = started + max(0.0, task.wall_deadline - time.time())
    outcome = run_pipeline(
        task.config, shard_programs(task.config, task.spec), deadline=deadline
    )
    elts = [
        ShardElt(order=outcome.order[key], elt=elt)
        for key, elt in outcome.by_key.items()
    ]
    elts.sort(key=lambda shard_elt: shard_elt.order)
    result = ShardResult(spec=task.spec, elts=elts, stats=outcome.stats)
    result.stats.unique_programs = len(elts)
    result.runtime_s = time.monotonic() - started
    result.stats.runtime_s = result.runtime_s
    return result

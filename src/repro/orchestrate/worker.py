"""Spawn-safe shard execution.

A worker process receives a pickled :class:`ShardTask` (config + shard
spec + wall-clock deadline), runs the shared Fig 7 pipeline
(:func:`repro.synth.run_pipeline`) over the shard's slice of the program
stream, and returns a :class:`ShardResult` carrying every surviving ELT
*with its enumeration order key* so the merge layer can reconstruct the
serial representative choice.

Everything here is a module-level function/dataclass so it pickles under
the ``spawn`` start method (the only start method that is safe on every
platform and under threads); no closures or fork-inherited state are
involved.  Deadlines travel as wall-clock (``time.time``) timestamps,
which are comparable across processes, and are converted to each worker's
own monotonic clock on arrival.

Observability rides the same path: when ``task.observe`` is set the
shard runs under its own :class:`~repro.obs.Tracer` and
:class:`~repro.obs.MetricsRegistry` (labeled after the shard spec, so
``--jobs 1`` and ``--jobs 4`` produce identically-labeled lanes), and
the finished span batch + registry travel back on the result for the
coordinator to adopt in deterministic shard-plan order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..obs import (
    MetricsRegistry,
    SpanBatch,
    Tracer,
    install_registry,
    install_tracer,
)
from ..resilience import FaultPlan
from ..synth import SuiteStats, SynthesisConfig, run_pipeline
from ..synth.engine import OrderKey, SynthesizedElt
from .shards import ShardSpec, shard_programs


@dataclass(frozen=True)
class ShardTask:
    """One unit of work shipped to a worker process."""

    config: SynthesisConfig
    spec: ShardSpec
    #: Absolute wall-clock deadline (``time.time()``), or None.
    wall_deadline: Optional[float] = None
    #: Collect spans/metrics in the worker and ship them on the result.
    observe: bool = False
    #: Which (re)submission this is — the scheduler stamps 1, 2, ... so
    #: workers and fault plans can behave per-attempt.
    attempt: int = 1
    #: Seeded chaos harness; when set the worker consults it on entry.
    faults: Optional[FaultPlan] = None


@dataclass
class ShardElt:
    """A shard-local ELT plus the global enumeration order key of the
    program that produced it."""

    order: OrderKey
    elt: SynthesizedElt


@dataclass
class ShardResult:
    spec: ShardSpec
    elts: list[ShardElt] = field(default_factory=list)
    stats: SuiteStats = field(default_factory=SuiteStats)
    runtime_s: float = 0.0
    #: The worker's finished span batch (``task.observe`` only; stripped
    #: before store writes — spans describe one concrete run).
    spans: Optional[SpanBatch] = None
    #: The worker's metrics registry (``task.observe`` only; persisted
    #: with the shard so cache hits replay deterministic histograms).
    metrics: Optional[MetricsRegistry] = None

    @property
    def timed_out(self) -> bool:
        return self.stats.timed_out


def run_shard(task: ShardTask) -> ShardResult:
    """Execute one shard (in-process or in a worker process)."""
    if task.faults is not None:
        task.faults.apply_worker_fault(task.spec.label, task.attempt)
    started = time.monotonic()
    deadline = None
    if task.wall_deadline is not None:
        deadline = started + max(0.0, task.wall_deadline - time.time())
    tracer = registry = None
    prev_tracer = prev_registry = None
    if task.observe:
        # A fresh tracer/registry per shard — also when running inline
        # under the coordinator's own tracer — so every shard occupies
        # its own lane regardless of --jobs.
        tracer = Tracer(label=task.spec.label)
        registry = MetricsRegistry()
        prev_tracer = install_tracer(tracer)
        prev_registry = install_registry(registry)
    try:
        span = tracer.begin("shard", category="orchestrate") if tracer else None
        try:
            outcome = run_pipeline(
                task.config,
                shard_programs(task.config, task.spec),
                deadline=deadline,
            )
        finally:
            if tracer:
                tracer.end(span)
    finally:
        if task.observe:
            install_tracer(prev_tracer)
            install_registry(prev_registry)
    elts = [
        ShardElt(order=outcome.order[key], elt=elt)
        for key, elt in outcome.by_key.items()
    ]
    elts.sort(key=lambda shard_elt: shard_elt.order)
    result = ShardResult(spec=task.spec, elts=elts, stats=outcome.stats)
    result.stats.unique_programs = len(elts)
    result.runtime_s = time.monotonic() - started
    result.stats.runtime_s = result.runtime_s
    if tracer is not None:
        result.spans = tracer.batch()
        result.metrics = registry
    return result

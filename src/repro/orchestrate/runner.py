"""The orchestrator: sharded parallel synthesis runs and resumable sweeps.

``run_sharded`` scales one (axiom, bound) synthesis across cores:

1. plan deterministic shards (:mod:`.shards`);
2. load any shard already completed by a previous interrupted run from
   the :class:`~repro.orchestrate.store.SuiteStore`;
3. execute the remaining shards through the retrying scheduler
   (:func:`repro.resilience.run_resilient_tasks`) on a rebuildable
   spawn pool (or inline when ``jobs == 1``) — worker crashes, pool
   collapses, and stuck shards are retried under the run's
   :class:`~repro.resilience.RetryPolicy`;
4. merge (:mod:`.merge`) into a suite provably identical to the serial
   engine's, and persist both the shards and the merged suite.

A shard that exhausts its retries is *quarantined*: the run still
merges every completed shard but the result is marked ``degraded``
(``result.stats.degraded``) and the failed specs are listed on
``OrchestratedResult.failures`` — a week-long sweep loses one point,
not the run.  Degraded suites are never cached.

``run_sweep_sharded`` lifts this over the Fig 9 per-axiom bound sweep,
reusing one rebuildable worker pool across all points and skipping any
(axiom, bound) point whose merged suite is already in the store — which
is what makes an interrupted ``sweep --cache-dir …`` resumable by
rerunning the same command.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Union

from ..errors import SynthesisError
from ..obs import ProgressReporter, current_registry, current_tracer
from ..resilience import (
    FailureRecord,
    FaultPlan,
    PoolManager,
    ResilienceStats,
    RetryPolicy,
    run_resilient_tasks,
)
from ..synth import SuiteResult, SweepPoint, SweepResult, SynthesisConfig
from .merge import MergeReport, merge_shards
from .shards import ShardSpec, plan_shards
from .store import SuiteStore
from .worker import ShardResult, ShardTask, run_shard


@dataclass
class OrchestratedResult:
    """A merged suite plus per-shard, cache, and resilience bookkeeping."""

    result: SuiteResult
    report: MergeReport
    jobs: int
    shard_specs: list[ShardSpec] = field(default_factory=list)
    suite_cache_hit: bool = False
    shard_cache_hits: int = 0
    shard_cache_misses: int = 0
    #: Shards quarantined after exhausting retries (empty on clean runs).
    failures: list[FailureRecord] = field(default_factory=list)
    #: What the scheduler had to do (retries/rebuilds/timeouts) to finish.
    resilience: ResilienceStats = field(default_factory=ResilienceStats)

    @property
    def shard_results(self) -> list[ShardResult]:
        return self.report.per_shard

    @property
    def degraded(self) -> bool:
        return bool(self.failures)


def _as_pool(
    jobs: int, executor: Optional[Union[Executor, PoolManager]]
) -> Optional[PoolManager]:
    """Adapt the public ``executor=`` parameter (legacy Executor or a
    shared PoolManager) to the scheduler's PoolManager interface."""
    if executor is None:
        return None
    if isinstance(executor, PoolManager):
        return executor
    return PoolManager(jobs, executor=executor)


def run_sharded(
    config: SynthesisConfig,
    jobs: int = 1,
    shard_count: Optional[int] = None,
    fanout_split: int = 1,
    store: Optional[SuiteStore] = None,
    executor: Optional[Union[Executor, PoolManager]] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
) -> OrchestratedResult:
    """Run one synthesis config across ``jobs`` workers.

    With a ``store``, previously completed shards and suites are reused
    (cache counters on the store record how much); timed-out or degraded
    results are never cached.  Pass an ``executor`` (an Executor or a
    :class:`~repro.resilience.PoolManager`) to share one worker pool
    across several calls (the sweep does); otherwise a spawn pool is
    created on demand and torn down before returning.  ``retry``
    configures the failure envelope (defaults to
    :data:`~repro.resilience.DEFAULT_RETRY_POLICY`); ``faults`` is the
    seeded ``--chaos`` fault-injection plan shipped to workers.
    """
    if jobs < 1:
        raise SynthesisError(f"jobs must be positive, got {jobs}")
    started = time.monotonic()

    if store is not None:
        cached_suite = store.load_suite(config)
        if cached_suite is not None:
            report = MergeReport(shard_count=0, shard_elts=cached_suite.count)
            return OrchestratedResult(
                result=cached_suite,
                report=report,
                jobs=jobs,
                suite_cache_hit=True,
            )

    specs = plan_shards(jobs, shard_count=shard_count, fanout_split=fanout_split)
    wall_deadline = (
        None
        if config.time_budget_s is None
        else time.time() + config.time_budget_s
    )
    # Shards carry their own deadline; the config they run under must not
    # double-apply the budget through the serial path.
    shard_config = replace(config, time_budget_s=None)

    # Propagate observation to workers: when the coordinating process is
    # running under a live tracer/registry (a --trace run), each shard
    # collects its own and ships them back on the result.
    observe = bool(current_tracer()) or bool(current_registry())

    shard_results: list[Optional[ShardResult]] = [None] * len(specs)
    pending: list[tuple[int, ShardTask]] = []
    hits = misses = 0
    for index, spec in enumerate(specs):
        cached = store.load_shard(shard_config, spec) if store else None
        if cached is not None:
            shard_results[index] = cached
            hits += 1
        else:
            if store is not None:
                misses += 1
            pending.append(
                (
                    index,
                    ShardTask(
                        shard_config,
                        spec,
                        wall_deadline,
                        observe=observe,
                        faults=faults,
                    ),
                )
            )

    pool = _as_pool(jobs, executor)
    own_pool: Optional[PoolManager] = None
    progress = ProgressReporter("synthesize", len(specs))
    progress.done = len(specs) - len(pending)
    try:
        if pending and jobs > 1 and pool is None:
            pool = own_pool = PoolManager(jobs)
        outcome = run_resilient_tasks(
            pending,
            worker=run_shard,
            jobs=jobs,
            policy=retry,
            pool=pool,
            progress=progress,
        )
        for index, shard in outcome.results.items():
            shard_results[index] = shard
    finally:
        progress.finish()
        if own_pool is not None:
            own_pool.shutdown()

    completed = [shard for shard in shard_results if shard is not None]
    if observe:
        # Reassemble worker observability in deterministic shard-plan
        # order (lane assignment follows adoption order).  Cached shards
        # carry no spans but replay their stored metrics.
        tracer = current_tracer()
        registry = current_registry()
        for shard in shard_results:
            if shard is None:
                continue
            tracer.adopt(getattr(shard, "spans", None))
            registry.absorb(getattr(shard, "metrics", None))
    if store is not None:
        for index, task in pending:
            shard = shard_results[index]
            if shard is not None:
                store.save_shard(shard_config, shard.spec, shard)

    runtime_s = time.monotonic() - started
    result, report = merge_shards(
        config, completed, runtime_s=runtime_s, failures=outcome.failures
    )
    if store is not None:
        store.save_suite(config, result)
    return OrchestratedResult(
        result=result,
        report=report,
        jobs=jobs,
        shard_specs=list(specs),
        shard_cache_hits=hits,
        shard_cache_misses=misses,
        failures=list(outcome.failures),
        resilience=outcome.stats,
    )


def run_sweep_sharded(
    base_config: SynthesisConfig,
    axioms: Optional[list[str]] = None,
    min_bound: int = 4,
    max_bound: Optional[Union[int, Mapping[str, int]]] = None,
    time_budget_per_run_s: Optional[float] = None,
    jobs: int = 1,
    shard_count: Optional[int] = None,
    fanout_split: int = 1,
    store: Optional[SuiteStore] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
) -> tuple[SweepResult, list[OrchestratedResult]]:
    """Sharded, resumable Fig 9 sweep (same semantics as
    :func:`repro.synth.synthesize_sweep`, run point-by-point through
    :func:`run_sharded`).

    Returns the sweep plus the per-point orchestration records (cache
    hits, per-shard runtimes, quarantined shards).  Rerunning an
    interrupted sweep with the same store picks up where it left off:
    finished (axiom, bound) points are suite-level cache hits and are
    not re-synthesized.  A *timed-out* point skips the axiom's later
    bounds (they would only be slower); a *degraded* point does not —
    the failure is shard-local, so the sweep continues.

    ``max_bound`` may be a single cap or a per-axiom mapping (the shape of
    :data:`repro.reporting.DEFAULT_MAX_BOUNDS`).
    """
    model = base_config.model
    if axioms is None:
        axioms = [a.name for a in model.axioms]
    if time_budget_per_run_s is None:
        time_budget_per_run_s = base_config.time_budget_s

    def top_for(axiom: str) -> int:
        if max_bound is None:
            return base_config.bound
        if isinstance(max_bound, Mapping):
            return max_bound.get(axiom, base_config.bound)
        return max_bound

    sweep = SweepResult()
    records: list[OrchestratedResult] = []
    shared_pool: Optional[PoolManager] = None
    try:
        if jobs > 1:
            shared_pool = PoolManager(jobs)
        for axiom in axioms:
            top = top_for(axiom)
            for bound in range(min_bound, top + 1):
                config = replace(
                    base_config,
                    bound=bound,
                    target_axiom=axiom,
                    time_budget_s=time_budget_per_run_s,
                )
                orchestrated = run_sharded(
                    config,
                    jobs=jobs,
                    shard_count=shard_count,
                    fanout_split=fanout_split,
                    store=store,
                    executor=shared_pool,
                    retry=retry,
                    faults=faults,
                )
                records.append(orchestrated)
                sweep.points.append(
                    SweepPoint(axiom, bound, orchestrated.result)
                )
                if orchestrated.result.stats.timed_out:
                    sweep.skipped.extend(
                        (axiom, later) for later in range(bound + 1, top + 1)
                    )
                    break
    finally:
        if shared_pool is not None:
            shared_pool.shutdown()
    return sweep, records
